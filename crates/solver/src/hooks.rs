//! Per-iteration observation and control hooks for the solve loop.
//!
//! The loop reports each iteration's state to a [`SolverHooks`]
//! implementation before taking the step, decoupling instrumentation and
//! custom stopping rules from the solver core — the same decomposition
//! gradient-descent frameworks use to keep callbacks out of the algorithm.
//! A hook can passively record (see [`GradientTrace`]) or stop the solve
//! ([`HookAction::Stop`]), which terminates with the best feasible iterate
//! and [`crate::TerminationReason::HookStopped`] — the same anytime
//! contract as an expired deadline.

use nws_linalg::Vector;

/// A snapshot of the solver state at the top of one iteration, before the
/// search direction is taken.
#[derive(Debug, Clone, Copy)]
pub struct IterationInfo<'a> {
    /// 1-based iteration number (the paper's counting: a new iteration
    /// starts whenever a search direction is computed).
    pub iteration: usize,
    /// Infinity norm of the projected gradient — the loop's convergence
    /// measure.
    pub projected_gradient_norm: f64,
    /// Infinity norm of the raw gradient (the scale the convergence
    /// tolerance is relative to).
    pub gradient_norm: f64,
    /// Number of variables currently free (not clamped at a bound).
    pub free_variables: usize,
    /// The current (feasible) iterate.
    pub p: &'a Vector,
}

/// What the solve loop should do after a hook observed an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HookAction {
    /// Keep iterating.
    #[default]
    Continue,
    /// Stop now and return the current iterate with
    /// [`crate::TerminationReason::HookStopped`].
    Stop,
}

/// Observer/controller of the solve loop, called once per iteration.
///
/// Hooks take `&mut self` so they can accumulate state across iterations
/// (histories, counters, convergence monitors) without interior mutability.
pub trait SolverHooks {
    /// Observes one iteration; returning [`HookAction::Stop`] terminates
    /// the solve with the current iterate.
    fn on_iteration(&mut self, info: &IterationInfo<'_>) -> HookAction {
        let _ = info;
        HookAction::Continue
    }
}

/// The no-op hook used by all plain entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl SolverHooks for NoHooks {}

/// A hook recording the projected-gradient norm of every iteration —
/// the raw material of convergence plots (paper §IV-D measures iteration
/// counts; this records the whole decay curve).
#[derive(Debug, Clone, Default)]
pub struct GradientTrace {
    /// `projected_gradient_norm` per iteration, in order.
    pub projected_norms: Vec<f64>,
    /// `free_variables` per iteration, in order (tracks active-set churn).
    pub free_counts: Vec<usize>,
}

impl SolverHooks for GradientTrace {
    fn on_iteration(&mut self, info: &IterationInfo<'_>) -> HookAction {
        self.projected_norms.push(info.projected_gradient_norm);
        self.free_counts.push(info.free_variables);
        HookAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hook_continues() {
        let p = Vector::zeros(2);
        let info = IterationInfo {
            iteration: 1,
            projected_gradient_norm: 0.5,
            gradient_norm: 1.0,
            free_variables: 2,
            p: &p,
        };
        assert_eq!(NoHooks.on_iteration(&info), HookAction::Continue);
    }

    #[test]
    fn gradient_trace_accumulates() {
        let p = Vector::zeros(1);
        let mut trace = GradientTrace::default();
        for i in 1..=3 {
            let info = IterationInfo {
                iteration: i,
                projected_gradient_norm: 1.0 / i as f64,
                gradient_norm: 1.0,
                free_variables: 1,
                p: &p,
            };
            assert_eq!(trace.on_iteration(&info), HookAction::Continue);
        }
        assert_eq!(trace.projected_norms.len(), 3);
        assert_eq!(trace.free_counts, vec![1, 1, 1]);
        assert!(trace.projected_norms.windows(2).all(|w| w[1] < w[0]));
    }
}
