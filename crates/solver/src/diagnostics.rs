//! Solution and diagnostic reporting.

use nws_linalg::Vector;

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// A KKT point was reached — the global maximum (concave objective over
    /// a convex feasible set).
    KktSatisfied,
    /// The iteration cap was exceeded before certifying optimality. The
    /// returned point is feasible and the best found, but not certified
    /// (paper §IV-D caps at 2000 iterations and reports 98.6 % success).
    IterationLimit,
    /// The wall-clock deadline in [`crate::SolveBudget`] expired before
    /// certifying optimality. As with [`TerminationReason::IterationLimit`],
    /// the returned point is feasible and the best found so far — the
    /// anytime contract a serving daemon relies on.
    DeadlineExceeded,
    /// A [`crate::SolverHooks`] implementation returned
    /// [`crate::HookAction::Stop`]. The returned point is feasible and the
    /// best found so far, same anytime contract as a deadline.
    HookStopped,
}

/// Convergence diagnostics of one solver run — the quantities the paper
/// reports in §IV-D.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// Iterations used (a new iteration starts each time a search direction
    /// is computed, matching the paper's counting).
    pub iterations: usize,
    /// Number of times active constraints with negative multipliers had to
    /// be released (the paper measures on average 1.64 per run).
    pub constraint_releases: usize,
    /// Number of line searches that terminated by hitting a bound.
    pub bounds_hit: usize,
    /// Final projected-gradient infinity norm.
    pub final_projected_gradient: f64,
    /// Final KKT stationarity residual over free variables.
    pub stationarity_residual: f64,
}

/// The result of a solve: optimizer, value, certification and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The final feasible point (sampling rates).
    pub p: Vector,
    /// Objective value at `p`.
    pub value: f64,
    /// The capacity-equality multiplier `λ` at `p` — marginal utility of
    /// sampling budget.
    pub lambda: f64,
    /// True iff the KKT conditions were verified at `p`.
    pub kkt_verified: bool,
    /// Why the solver stopped.
    pub reason: TerminationReason,
    /// Run diagnostics.
    pub diagnostics: Diagnostics,
    /// Objective value per iteration (final point appended), populated only
    /// when [`crate::SolverOptions::record_objective`] is set. Exact line
    /// searches make gradient projection a monotone-ascent method, so this
    /// sequence is nondecreasing up to float noise — an invariant the test
    /// suite asserts.
    pub objective_trajectory: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let d = Diagnostics {
            iterations: 10,
            constraint_releases: 1,
            bounds_hit: 3,
            final_projected_gradient: 1e-12,
            stationarity_residual: 1e-13,
        };
        let s = Solution {
            p: Vector::filled(2, 0.5),
            value: 1.5,
            lambda: 0.1,
            kkt_verified: true,
            reason: TerminationReason::KktSatisfied,
            diagnostics: d.clone(),
            objective_trajectory: Vec::new(),
        };
        assert_eq!(s.diagnostics, d);
        assert_eq!(s.reason, TerminationReason::KktSatisfied);
        assert_ne!(
            TerminationReason::KktSatisfied,
            TerminationReason::IterationLimit
        );
    }
}
