//! Exact one-dimensional maximization along a search direction.

use crate::{Objective, Result, SolverError};
use nws_linalg::Vector;

/// Result of a line search along a direction `s` from `p` over `t ∈ [0, t_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineSearchOutcome {
    /// The 1-D maximizer lies strictly inside the segment at the given step.
    Interior(f64),
    /// The objective is still increasing at `t_max`: step to the boundary
    /// (the caller activates the bound that produced `t_max`).
    ReachedMax,
    /// The direction is not an ascent direction (`φ'(0) ≤ 0`); no step taken.
    NoProgress,
}

/// Newton's method on `φ(t) = f(p + t·s)` with a bisection safeguard.
///
/// The paper chooses Newton for the 1-D search because the utility is C²
/// (§IV-C makes it so by construction); concavity of `f` makes `φ` concave,
/// so `φ'` is decreasing and the root of `φ'` is unique. The safeguard
/// maintains a sign-changing bracket `[lo, hi]` (`φ'(lo) > 0 > φ'(hi)`) and
/// falls back to bisection whenever a Newton step leaves it — guaranteeing
/// convergence even where curvature information is locally poor (e.g. at the
/// utility's quadratic-splice boundary).
#[derive(Debug, Clone, Copy)]
pub struct NewtonLineSearch {
    /// Convergence tolerance on `|φ'(t)|`, relative to `|φ'(0)|`.
    pub grad_tol: f64,
    /// Maximum Newton/bisection iterations before accepting the midpoint.
    pub max_iters: usize,
}

impl Default for NewtonLineSearch {
    fn default() -> Self {
        NewtonLineSearch {
            grad_tol: 1e-12,
            max_iters: 100,
        }
    }
}

impl NewtonLineSearch {
    /// Maximizes `φ(t) = f(p + t·s)` over `[0, t_max]`.
    ///
    /// # Errors
    /// [`SolverError::NonFiniteObjective`] if a derivative evaluates to a
    /// non-finite value along the segment.
    pub fn maximize<O: Objective>(
        &self,
        obj: &O,
        p: &Vector,
        s: &Vector,
        t_max: f64,
    ) -> Result<LineSearchOutcome> {
        assert!(t_max >= 0.0, "t_max must be ≥ 0, got {t_max}");
        // One trial-point buffer serves every φ'/φ'' evaluation of this
        // search. Each Newton probe needs both derivatives at the same `t`,
        // so it calls the fused `derivatives_along` — objectives with a
        // single-pass kernel (e.g. sparse-row evaluation) produce the pair
        // in one data sweep instead of two. The boundary check at `t_max`
        // only needs the sign of φ', so it stays on the cheaper
        // `directional_derivative`.
        let scratch = std::cell::RefCell::new(p.clone());
        let phi_d = |t: f64| -> Result<f64> {
            let mut x = scratch.borrow_mut();
            x.copy_from(p);
            x.axpy(t, s);
            let d = obj.directional_derivative(&x, s);
            if !d.is_finite() {
                return Err(SolverError::NonFiniteObjective(format!(
                    "φ'({t}) is not finite"
                )));
            }
            Ok(d)
        };
        let phi_dc = |t: f64| -> Result<(f64, f64)> {
            let mut x = scratch.borrow_mut();
            x.copy_from(p);
            x.axpy(t, s);
            let (d, c) = obj.derivatives_along(&x, s);
            if !d.is_finite() {
                return Err(SolverError::NonFiniteObjective(format!(
                    "φ'({t}) is not finite"
                )));
            }
            if !c.is_finite() {
                return Err(SolverError::NonFiniteObjective(format!(
                    "φ''({t}) is not finite"
                )));
            }
            Ok((d, c))
        };

        let (d0, c0) = phi_dc(0.0)?;
        if d0 <= 0.0 {
            return Ok(LineSearchOutcome::NoProgress);
        }
        if t_max == 0.0 {
            return Ok(LineSearchOutcome::NoProgress);
        }
        let d_end = phi_d(t_max)?;
        if d_end >= 0.0 {
            return Ok(LineSearchOutcome::ReachedMax);
        }

        // Bracketed Newton: φ'(lo) > 0 > φ'(hi).
        let tol = self.grad_tol * d0.max(1e-300);
        let (mut lo, mut hi) = (0.0_f64, t_max);
        // First iterate from the quadratic model at 0.
        let mut t = if c0 < 0.0 {
            (-d0 / c0).clamp(t_max * 1e-12, t_max * (1.0 - 1e-12))
        } else {
            0.5 * t_max
        };
        for _ in 0..self.max_iters {
            let (d, c) = phi_dc(t)?;
            if d.abs() <= tol {
                return Ok(LineSearchOutcome::Interior(t));
            }
            if d > 0.0 {
                lo = t;
            } else {
                hi = t;
            }
            let newton = if c < 0.0 { t - d / c } else { f64::NAN };
            t = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if hi - lo <= f64::EPSILON * t_max {
                break;
            }
        }
        Ok(LineSearchOutcome::Interior(0.5 * (lo + hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(p) = −Σ w_i (p_i − c_i)²; separable strictly concave quadratic.
    struct Quad {
        w: Vec<f64>,
        c: Vec<f64>,
    }
    impl Objective for Quad {
        fn value(&self, p: &Vector) -> f64 {
            -(0..p.len())
                .map(|i| self.w[i] * (p[i] - self.c[i]) * (p[i] - self.c[i]))
                .sum::<f64>()
        }
        fn gradient(&self, p: &Vector) -> Vector {
            (0..p.len())
                .map(|i| -2.0 * self.w[i] * (p[i] - self.c[i]))
                .collect()
        }
        fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
            -(0..s.len())
                .map(|i| 2.0 * self.w[i] * s[i] * s[i])
                .sum::<f64>()
        }
    }

    #[test]
    fn quadratic_interior_maximum_one_newton_step() {
        // φ(t) along s from 0 towards c: max at t* = 1 for p=0, s=c.
        let obj = Quad {
            w: vec![1.0, 2.0],
            c: vec![1.0, 0.5],
        };
        let p = Vector::zeros(2);
        let s = Vector::from(vec![1.0, 0.5]);
        let out = NewtonLineSearch::default()
            .maximize(&obj, &p, &s, 10.0)
            .unwrap();
        match out {
            LineSearchOutcome::Interior(t) => assert!((t - 1.0).abs() < 1e-9, "t = {t}"),
            other => panic!("expected interior, got {other:?}"),
        }
    }

    #[test]
    fn boundary_hit_when_max_outside() {
        let obj = Quad {
            w: vec![1.0],
            c: vec![5.0],
        };
        let p = Vector::zeros(1);
        let s = Vector::from(vec![1.0]);
        // Max at t=5 but t_max = 2: still increasing at the boundary.
        let out = NewtonLineSearch::default()
            .maximize(&obj, &p, &s, 2.0)
            .unwrap();
        assert_eq!(out, LineSearchOutcome::ReachedMax);
    }

    #[test]
    fn descent_direction_no_progress() {
        let obj = Quad {
            w: vec![1.0],
            c: vec![-1.0],
        };
        let p = Vector::zeros(1);
        let s = Vector::from(vec![1.0]); // moving away from the max
        let out = NewtonLineSearch::default()
            .maximize(&obj, &p, &s, 1.0)
            .unwrap();
        assert_eq!(out, LineSearchOutcome::NoProgress);
    }

    #[test]
    fn zero_t_max_no_progress() {
        let obj = Quad {
            w: vec![1.0],
            c: vec![1.0],
        };
        let out = NewtonLineSearch::default()
            .maximize(&obj, &Vector::zeros(1), &Vector::from(vec![1.0]), 0.0)
            .unwrap();
        assert_eq!(out, LineSearchOutcome::NoProgress);
    }

    /// Non-quadratic concave objective: f(p) = Σ ln(1 + p_i).
    struct Log;
    impl Objective for Log {
        fn value(&self, p: &Vector) -> f64 {
            p.iter().map(|x| (1.0 + x).ln()).sum()
        }
        fn gradient(&self, p: &Vector) -> Vector {
            p.iter().map(|x| 1.0 / (1.0 + x)).collect()
        }
        fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
            -(0..s.len())
                .map(|i| s[i] * s[i] / ((1.0 + p[i]) * (1.0 + p[i])))
                .sum::<f64>()
        }
    }

    #[test]
    fn mixed_sign_direction_on_log_objective() {
        // φ(t) = ln(1+2t) + ln(1 − t): φ'(t) = 2/(1+2t) − 1/(1−t);
        // root: 2(1−t) = 1+2t → t = 1/4.
        let p = Vector::zeros(2);
        let s = Vector::from(vec![2.0, -1.0]);
        let out = NewtonLineSearch::default()
            .maximize(&Log, &p, &s, 0.9)
            .unwrap();
        match out {
            LineSearchOutcome::Interior(t) => assert!((t - 0.25).abs() < 1e-9, "t = {t}"),
            other => panic!("expected interior, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_gradient_reported() {
        struct Bad;
        impl Objective for Bad {
            fn value(&self, _p: &Vector) -> f64 {
                0.0
            }
            fn gradient(&self, _p: &Vector) -> Vector {
                Vector::from(vec![f64::NAN])
            }
            fn curvature_along(&self, _p: &Vector, _s: &Vector) -> f64 {
                -1.0
            }
        }
        let err = NewtonLineSearch::default()
            .maximize(&Bad, &Vector::zeros(1), &Vector::from(vec![1.0]), 1.0)
            .unwrap_err();
        assert!(matches!(err, SolverError::NonFiniteObjective(_)));
    }
}
