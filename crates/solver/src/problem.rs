//! Problem definition: objective trait and the box-plus-equality polytope.

use crate::{Result, SolverError};
use nws_linalg::Vector;

/// A twice continuously differentiable concave objective to *maximize*.
///
/// The solver needs values, gradients, and — for the Newton line search —
/// the second directional derivative `d²/dt² f(p + t·s)` at `t = 0`, which
/// for the separable-per-OD utilities of the paper is cheap to evaluate
/// directly (`Σ_k M_k''(ρ_k)·(r_k·s)²`) without forming a Hessian.
pub trait Objective {
    /// Objective value at `p`.
    fn value(&self, p: &Vector) -> f64;

    /// Gradient at `p`.
    fn gradient(&self, p: &Vector) -> Vector;

    /// Second directional derivative along `s` evaluated at `p`:
    /// `sᵀ·∇²f(p)·s`. Must be ≤ 0 for a concave objective.
    fn curvature_along(&self, p: &Vector, s: &Vector) -> f64;

    /// Writes the gradient at `p` into `out`, resizing it if needed.
    ///
    /// The solver loop calls this once per iteration with a reused buffer;
    /// objectives with an allocation-free evaluation path (e.g. sparse-row
    /// accumulation into a caller buffer) should override it. The default
    /// delegates to [`Objective::gradient`].
    fn gradient_into(&self, p: &Vector, out: &mut Vector) {
        *out = self.gradient(p);
    }

    /// First directional derivative along `s` at `p`: `∇f(p)·s`.
    ///
    /// The Newton line search evaluates this several times per step; the
    /// default materializes the full gradient, while separable objectives
    /// can compute the contraction directly without forming it. Overrides
    /// must agree with `gradient(p).dot(s)` up to float rounding.
    fn directional_derivative(&self, p: &Vector, s: &Vector) -> f64 {
        self.gradient(p).dot(s)
    }

    /// Both directional derivatives along `s` at `p`:
    /// `(∇f(p)·s, sᵀ·∇²f(p)·s)`.
    ///
    /// A Newton line-search probe needs exactly this pair; objectives with a
    /// fused evaluation kernel (one sweep producing both) should override
    /// it, halving the per-probe data traffic. The default delegates to the
    /// two separate methods and must stay consistent with them.
    fn derivatives_along(&self, p: &Vector, s: &Vector) -> (f64, f64) {
        (
            self.directional_derivative(p, s),
            self.curvature_along(p, s),
        )
    }

    /// Writes the gradient at `p` into `out` (resizing if needed) and
    /// returns the objective value at `p`.
    ///
    /// The solve loop needs both once per iteration when it records the
    /// objective trajectory; fused-kernel objectives should override this to
    /// produce the pair in one sweep. The default performs two evaluations.
    fn value_and_gradient_into(&self, p: &Vector, out: &mut Vector) -> f64 {
        self.gradient_into(p, out);
        self.value(p)
    }
}

/// The feasible polytope of the placement problem (paper eqs. (3)–(5), with
/// (5) tightened to an equality per §IV-B eq. (8)):
///
/// ```text
/// 0 ≤ p_i ≤ upper_i        (bounds: α_i)
/// Σ_i a_i·p_i = rhs        (capacity: a_i = U_i link loads, rhs = θ)
/// ```
#[derive(Debug, Clone)]
pub struct BoxLinearProblem {
    upper: Vector,
    eq_normal: Vector,
    eq_rhs: f64,
}

impl BoxLinearProblem {
    /// Creates and validates a problem.
    ///
    /// # Errors
    /// [`SolverError::InvalidProblem`] when dimensions mismatch, a bound is
    /// non-positive, an equality coefficient is non-positive (a link with no
    /// load cannot consume capacity and must be excluded by the caller), or
    /// anything is non-finite. [`SolverError::Infeasible`] when
    /// `rhs > Σ a_i·upper_i` (not enough headroom) or `rhs < 0`.
    pub fn new(upper: Vector, eq_normal: Vector, eq_rhs: f64) -> Result<Self> {
        if upper.len() != eq_normal.len() {
            return Err(SolverError::InvalidProblem(format!(
                "upper bounds ({}) and equality normal ({}) lengths differ",
                upper.len(),
                eq_normal.len()
            )));
        }
        if upper.is_empty() {
            return Err(SolverError::InvalidProblem(
                "zero-dimensional problem".into(),
            ));
        }
        if !upper.is_finite() || !eq_normal.is_finite() || !eq_rhs.is_finite() {
            return Err(SolverError::InvalidProblem("non-finite parameter".into()));
        }
        if let Some(i) = upper.iter().position(|&u| u <= 0.0) {
            return Err(SolverError::InvalidProblem(format!(
                "upper bound at index {i} must be positive"
            )));
        }
        if let Some(i) = eq_normal.iter().position(|&a| a <= 0.0) {
            return Err(SolverError::InvalidProblem(format!(
                "equality coefficient at index {i} must be positive \
                 (exclude zero-load links before building the problem)"
            )));
        }
        if eq_rhs < 0.0 {
            return Err(SolverError::InvalidProblem(
                "equality rhs must be ≥ 0".into(),
            ));
        }
        let max_achievable = upper.hadamard(&eq_normal).sum();
        if eq_rhs > max_achievable {
            return Err(SolverError::Infeasible {
                rhs: eq_rhs,
                max_achievable,
            });
        }
        Ok(BoxLinearProblem {
            upper,
            eq_normal,
            eq_rhs,
        })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.upper.len()
    }

    /// Upper bounds (the `α_i`).
    pub fn upper(&self) -> &Vector {
        &self.upper
    }

    /// Equality-constraint normal (the link loads `U_i`).
    pub fn eq_normal(&self) -> &Vector {
        &self.eq_normal
    }

    /// Equality right-hand side (the capacity `θ`).
    pub fn eq_rhs(&self) -> f64 {
        self.eq_rhs
    }

    /// A strictly feasible starting point: the uniform scaling `c·upper`
    /// with `c = rhs / Σ a_i·upper_i ∈ [0, 1]`, which satisfies the equality
    /// exactly and sits inside the box (on its boundary only when the
    /// problem admits a single point).
    pub fn feasible_start(&self) -> Vector {
        let max_achievable = self.upper.hadamard(&self.eq_normal).sum();
        let c = self.eq_rhs / max_achievable;
        self.upper.scaled(c)
    }

    /// Euclidean projection of `p` onto the feasible set
    /// `{x : 0 ≤ x ≤ upper, a·x = rhs}`.
    ///
    /// The projection is `x_i(μ) = clamp(p_i − μ·a_i, 0, upper_i)` for the
    /// unique multiplier `μ` with `a·x(μ) = rhs`; `a·x(μ)` is continuous and
    /// nonincreasing in `μ`, spanning `[0, Σ a_i·upper_i] ∋ rhs`, so monotone
    /// bisection converges unconditionally. Non-finite coordinates of `p`
    /// are treated as 0 before projecting, so a corrupted warm-start vector
    /// degrades gracefully instead of poisoning the solve.
    ///
    /// This is the warm-start re-projection hook: after an event changes
    /// `rhs` (a `set_theta`) or the bounds/dimension (a link failure), the
    /// previous solution generally violates the budget equality or the caps;
    /// projecting recovers the *nearest* feasible point, which preserves the
    /// active-set structure far better than rescaling.
    ///
    /// # Panics
    /// Panics if `p`'s length differs from the problem dimension.
    pub fn project_onto(&self, p: &Vector) -> Vector {
        assert_eq!(p.len(), self.dim(), "projection input length mismatch");
        let sanitized: Vector = p
            .iter()
            .map(|&v| if v.is_finite() { v } else { 0.0 })
            .collect();
        let consumed = |mu: f64| -> f64 {
            (0..self.dim())
                .map(|i| {
                    self.eq_normal[i]
                        * (sanitized[i] - mu * self.eq_normal[i]).clamp(0.0, self.upper[i])
                })
                .sum()
        };
        // Bracket the multiplier by doubling outwards from [-1, 1].
        let (mut lo, mut hi) = (-1.0_f64, 1.0_f64);
        while consumed(lo) < self.eq_rhs {
            lo *= 2.0;
            if lo < -1e30 {
                break;
            }
        }
        while consumed(hi) > self.eq_rhs {
            hi *= 2.0;
            if hi > 1e30 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if consumed(mid) > self.eq_rhs {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mu = 0.5 * (lo + hi);
        (0..self.dim())
            .map(|i| (sanitized[i] - mu * self.eq_normal[i]).clamp(0.0, self.upper[i]))
            .collect()
    }

    /// True iff `p` satisfies all constraints to within `tol` (bounds
    /// absolutely, equality relative to `rhs`).
    pub fn is_feasible(&self, p: &Vector, tol: f64) -> bool {
        if p.len() != self.dim() {
            return false;
        }
        for i in 0..p.len() {
            if p[i] < -tol || p[i] > self.upper[i] + tol {
                return false;
            }
        }
        let eq = self.eq_normal.dot(p);
        (eq - self.eq_rhs).abs() <= tol * self.eq_rhs.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(p) = −½‖p‖²; gradient −p.
    struct NegHalfNormSq;
    impl Objective for NegHalfNormSq {
        fn value(&self, p: &Vector) -> f64 {
            -0.5 * p.dot(p)
        }
        fn gradient(&self, p: &Vector) -> Vector {
            p.scaled(-1.0)
        }
        fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
            -s.dot(s)
        }
    }

    #[test]
    fn provided_methods_match_gradient() {
        let obj = NegHalfNormSq;
        let p = Vector::from(vec![1.0, -2.0, 3.0]);
        let s = Vector::from(vec![0.5, 0.25, -1.0]);
        let mut out = Vector::zeros(1); // wrong size on purpose; must be replaced
        obj.gradient_into(&p, &mut out);
        assert_eq!(out, obj.gradient(&p));
        assert_eq!(obj.directional_derivative(&p, &s), obj.gradient(&p).dot(&s));
        let (d, c) = obj.derivatives_along(&p, &s);
        assert_eq!(d, obj.directional_derivative(&p, &s));
        assert_eq!(c, obj.curvature_along(&p, &s));
        let mut g = Vector::zeros(1);
        let v = obj.value_and_gradient_into(&p, &mut g);
        assert_eq!(v, obj.value(&p));
        assert_eq!(g, obj.gradient(&p));
    }

    fn simple() -> BoxLinearProblem {
        BoxLinearProblem::new(
            Vector::from(vec![1.0, 1.0, 1.0]),
            Vector::from(vec![10.0, 20.0, 30.0]),
            12.0,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let p = simple();
        assert_eq!(p.dim(), 3);
        assert_eq!(p.eq_rhs(), 12.0);
        assert_eq!(p.upper().as_slice(), &[1.0, 1.0, 1.0]);
        assert_eq!(p.eq_normal().as_slice(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn feasible_start_is_feasible() {
        let p = simple();
        let x0 = p.feasible_start();
        assert!(p.is_feasible(&x0, 1e-12));
        // c = 12/60 = 0.2
        assert!(x0.approx_eq(&Vector::filled(3, 0.2), 1e-12));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::filled(3, 1.0), 1.0).unwrap_err();
        assert!(matches!(err, SolverError::InvalidProblem(_)));
    }

    #[test]
    fn empty_rejected() {
        let err = BoxLinearProblem::new(Vector::zeros(0), Vector::zeros(0), 0.0).unwrap_err();
        assert!(matches!(err, SolverError::InvalidProblem(_)));
    }

    #[test]
    fn zero_load_coefficient_rejected() {
        let err = BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::from(vec![10.0, 0.0]), 1.0)
            .unwrap_err();
        assert!(matches!(err, SolverError::InvalidProblem(_)));
    }

    #[test]
    fn negative_bound_rejected() {
        let err = BoxLinearProblem::new(Vector::from(vec![1.0, -0.5]), Vector::filled(2, 1.0), 0.5)
            .unwrap_err();
        assert!(matches!(err, SolverError::InvalidProblem(_)));
    }

    #[test]
    fn infeasible_detected() {
        let err =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::from(vec![10.0, 20.0]), 31.0)
                .unwrap_err();
        assert_eq!(
            err,
            SolverError::Infeasible {
                rhs: 31.0,
                max_achievable: 30.0
            }
        );
    }

    #[test]
    fn boundary_rhs_feasible() {
        // rhs exactly at the maximum: single feasible point = upper.
        let p = BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::from(vec![10.0, 20.0]), 30.0)
            .unwrap();
        let x0 = p.feasible_start();
        assert!(x0.approx_eq(&Vector::filled(2, 1.0), 1e-12));
        assert!(p.is_feasible(&x0, 1e-9));
    }

    #[test]
    fn projection_lands_on_feasible_set() {
        let p = simple();
        for point in [
            Vector::from(vec![0.9, 0.9, 0.9]),  // over budget
            Vector::from(vec![0.0, 0.0, 0.01]), // under budget
            Vector::from(vec![5.0, -3.0, 0.5]), // outside the box
            Vector::zeros(3),                   // degenerate
        ] {
            let x = p.project_onto(&point);
            assert!(p.is_feasible(&x, 1e-9), "projection of {point:?} -> {x:?}");
        }
    }

    #[test]
    fn projection_fixes_feasible_points() {
        let p = simple();
        let x0 = p.feasible_start();
        let x = p.project_onto(&x0);
        assert!(x.approx_eq(&x0, 1e-9), "{x:?} != {x0:?}");
    }

    #[test]
    fn projection_is_nearest_among_probes() {
        // The Euclidean projection must be at least as close as any other
        // feasible probe point.
        let p = simple();
        let point = Vector::from(vec![1.5, 0.0, 0.0]);
        let dist = |a: &Vector, b: &Vector| -> f64 {
            let mut d = a.clone();
            d.axpy(-1.0, b);
            d.norm2()
        };
        let x = p.project_onto(&point);
        let d_proj = dist(&x, &point);
        for probe in [
            p.feasible_start(),
            p.project_onto(&Vector::from(vec![0.0, 1.5, 0.0])),
            p.project_onto(&Vector::from(vec![0.0, 0.0, 1.5])),
        ] {
            assert!(p.is_feasible(&probe, 1e-9));
            let d = dist(&probe, &point);
            assert!(d_proj <= d + 1e-9, "{d_proj} > {d} for {probe:?}");
        }
    }

    #[test]
    fn projection_sanitizes_non_finite_input() {
        let p = simple();
        let x = p.project_onto(&Vector::from(vec![f64::NAN, f64::INFINITY, 0.2]));
        assert!(x.is_finite());
        assert!(p.is_feasible(&x, 1e-9));
    }

    #[test]
    fn projection_handles_boundary_budget() {
        // rhs at the ceiling: the only feasible point is `upper`.
        let p = BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::from(vec![10.0, 20.0]), 30.0)
            .unwrap();
        let x = p.project_onto(&Vector::from(vec![0.1, 0.0]));
        assert!(x.approx_eq(&Vector::filled(2, 1.0), 1e-7), "{x:?}");
    }

    #[test]
    #[should_panic(expected = "projection input length mismatch")]
    fn projection_length_checked() {
        simple().project_onto(&Vector::zeros(2));
    }

    #[test]
    fn is_feasible_rejects_violations() {
        let p = simple();
        assert!(!p.is_feasible(&Vector::from(vec![2.0, 0.0, 0.0]), 1e-9)); // above upper
        assert!(!p.is_feasible(&Vector::from(vec![-0.1, 0.3, 0.3]), 1e-9)); // below zero
        assert!(!p.is_feasible(&Vector::filled(3, 0.5), 1e-9)); // equality off
        assert!(!p.is_feasible(&Vector::filled(2, 0.2), 1e-9)); // wrong dim
    }
}
