//! Active-set bookkeeping for the bound constraints.

use crate::BoxLinearProblem;
use nws_linalg::Vector;

/// State of one variable with respect to its bound constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// Strictly between its bounds; participates in the search subspace.
    Free,
    /// Clamped at 0 — in placement terms, the monitor is *switched off*.
    AtLower,
    /// Clamped at its upper bound `α_i` — the monitor is saturated.
    AtUpper,
}

/// Tracks which bound constraints are active. The capacity equality is
/// always active and is handled by the projection itself, not recorded here.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSet {
    states: Vec<VarState>,
}

impl ActiveSet {
    /// Classifies `p` against the problem's bounds with absolute snap
    /// tolerance `tol`: entries within `tol` of a bound are considered
    /// clamped there.
    pub fn classify(p: &Vector, problem: &BoxLinearProblem, tol: f64) -> ActiveSet {
        let states = (0..p.len())
            .map(|i| {
                if p[i] <= tol {
                    VarState::AtLower
                } else if p[i] >= problem.upper()[i] - tol {
                    VarState::AtUpper
                } else {
                    VarState::Free
                }
            })
            .collect();
        ActiveSet { states }
    }

    /// An all-free active set of dimension `n`.
    pub fn all_free(n: usize) -> ActiveSet {
        ActiveSet {
            states: vec![VarState::Free; n],
        }
    }

    /// Dimension.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the set is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of variable `i`.
    pub fn state(&self, i: usize) -> VarState {
        self.states[i]
    }

    /// Marks variable `i` with the given state.
    pub fn set(&mut self, i: usize, s: VarState) {
        self.states[i] = s;
    }

    /// True if variable `i` is free.
    pub fn is_free(&self, i: usize) -> bool {
        self.states[i] == VarState::Free
    }

    /// Number of free variables.
    pub fn num_free(&self) -> usize {
        self.states.iter().filter(|&&s| s == VarState::Free).count()
    }

    /// Indices of free variables.
    pub fn free_indices(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| self.is_free(i))
            .collect()
    }

    /// Indices of variables clamped at either bound.
    pub fn clamped_indices(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| !self.is_free(i))
            .collect()
    }

    /// Snaps `p` exactly onto the bounds its active set says it is on
    /// (removes the `≤ tol` fuzz introduced by arithmetic).
    pub fn snap(&self, p: &mut Vector, problem: &BoxLinearProblem) {
        for i in 0..self.states.len() {
            match self.states[i] {
                VarState::AtLower => p[i] = 0.0,
                VarState::AtUpper => p[i] = problem.upper()[i],
                VarState::Free => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> BoxLinearProblem {
        BoxLinearProblem::new(
            Vector::from(vec![1.0, 0.5, 2.0]),
            Vector::from(vec![1.0, 1.0, 1.0]),
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn classify_states() {
        let pb = problem();
        let p = Vector::from(vec![0.0, 0.25, 2.0]);
        let a = ActiveSet::classify(&p, &pb, 1e-12);
        assert_eq!(a.state(0), VarState::AtLower);
        assert_eq!(a.state(1), VarState::Free);
        assert_eq!(a.state(2), VarState::AtUpper);
        assert_eq!(a.num_free(), 1);
        assert_eq!(a.free_indices(), vec![1]);
        assert_eq!(a.clamped_indices(), vec![0, 2]);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn tolerance_snaps_nearby_values() {
        let pb = problem();
        let p = Vector::from(vec![1e-13, 0.4999999999999, 1.0]);
        let a = ActiveSet::classify(&p, &pb, 1e-9);
        assert_eq!(a.state(0), VarState::AtLower);
        assert_eq!(a.state(1), VarState::AtUpper); // within tol of 0.5
        assert_eq!(a.state(2), VarState::Free);
    }

    #[test]
    fn snap_rounds_exactly() {
        let pb = problem();
        let mut p = Vector::from(vec![1e-13, 0.3, 1.9999999999]);
        let mut a = ActiveSet::classify(&p, &pb, 1e-9);
        a.set(2, VarState::AtUpper);
        a.snap(&mut p, &pb);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[1], 0.3);
        assert_eq!(p[2], 2.0);
    }

    #[test]
    fn all_free_constructor() {
        let a = ActiveSet::all_free(4);
        assert_eq!(a.num_free(), 4);
        assert!(a.clamped_indices().is_empty());
    }
}
