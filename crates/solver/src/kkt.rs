//! Lagrange multipliers and KKT verification.

use crate::{ActiveSet, BoxLinearProblem, VarState};
use nws_linalg::Vector;

/// The Lagrange multipliers of the placement problem at a candidate point
/// (paper eq. (6)): `λ` for the capacity equality, `μ_i ≥ 0` for active
/// upper bounds, `ν_i ≥ 0` for active lower bounds. Multipliers of inactive
/// constraints are zero by complementary slackness.
#[derive(Debug, Clone, PartialEq)]
pub struct Multipliers {
    /// Capacity-equality multiplier `λ` — the marginal utility of one more
    /// unit of sampling budget `θ`.
    pub lambda: f64,
    /// Per-variable bound multiplier: `ν_i` for variables at the lower
    /// bound, `μ_i` for variables at the upper bound, `0.0` for free ones.
    pub bound: Vec<f64>,
}

/// Outcome of checking the KKT conditions at a projected-stationary point.
#[derive(Debug, Clone, PartialEq)]
pub struct KktReport {
    /// The computed multipliers.
    pub multipliers: Multipliers,
    /// Indices of active bounds whose multiplier is negative — these must be
    /// released (made inactive) for the search to continue (paper §IV-D).
    pub negative: Vec<usize>,
    /// Largest stationarity residual `|g_i − λ·a_i|` over *free* variables;
    /// near zero at a true stationary point of the projected gradient.
    pub stationarity_residual: f64,
}

impl KktReport {
    /// True when the KKT conditions hold to within `tol` (all active-bound
    /// multipliers ≥ −tol). Combined with projected-gradient stationarity,
    /// this certifies the *global* maximum (concave objective over a convex
    /// set — paper §IV-A).
    pub fn satisfied(&self, tol: f64) -> bool {
        self.negative.is_empty()
            || self
                .multipliers
                .bound
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.negative.contains(&i))
                .all(|(_, &m)| m >= -tol)
    }
}

/// Computes multipliers at point `p` with gradient `g` under `active`.
///
/// Stationarity of the Lagrangian `L = f − λ(a·p − θ) − Σ μ_i(p_i − α_i) +
/// Σ ν_i p_i` gives `g_i = λ·a_i + μ_i − ν_i`. With free variables
/// satisfying `g_i = λ·a_i`, `λ` is estimated by least squares over the free
/// set (`λ = a_F·g_F / ‖a_F‖²`, exact at stationary points); when every
/// variable is clamped, the same least-squares fit over all variables is the
/// natural estimate.
///
/// Then for each active bound:
/// * at lower (`p_i = 0`):    `ν_i = λ·a_i − g_i`  (must be ≥ 0),
/// * at upper (`p_i = α_i`):  `μ_i = g_i − λ·a_i`  (must be ≥ 0).
pub fn compute_multipliers(
    g: &Vector,
    active: &ActiveSet,
    problem: &BoxLinearProblem,
    tol: f64,
) -> KktReport {
    let n = g.len();
    assert_eq!(n, active.len(), "dimension mismatch");
    let a = problem.eq_normal();

    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        if active.is_free(i) {
            num += a[i] * g[i];
            den += a[i] * a[i];
        }
    }
    if den == 0.0 {
        // Fully clamped: fit λ over every coordinate instead.
        for i in 0..n {
            num += a[i] * g[i];
            den += a[i] * a[i];
        }
    }
    let lambda = num / den;

    let mut bound = vec![0.0; n];
    let mut negative = Vec::new();
    let mut resid: f64 = 0.0;
    for i in 0..n {
        match active.state(i) {
            VarState::Free => {
                resid = resid.max((g[i] - lambda * a[i]).abs());
            }
            VarState::AtLower => {
                let nu = lambda * a[i] - g[i];
                bound[i] = nu;
                if nu < -tol {
                    negative.push(i);
                }
            }
            VarState::AtUpper => {
                let mu = g[i] - lambda * a[i];
                bound[i] = mu;
                if mu < -tol {
                    negative.push(i);
                }
            }
        }
    }
    KktReport {
        multipliers: Multipliers { lambda, bound },
        negative,
        stationarity_residual: resid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(a: &[f64]) -> BoxLinearProblem {
        BoxLinearProblem::new(Vector::filled(a.len(), 1.0), Vector::from(a), 0.5).unwrap()
    }

    #[test]
    fn lambda_exact_on_stationary_free_gradient() {
        // g = 2·a on the free set → λ = 2, residual 0.
        let pb = problem(&[1.0, 2.0, 3.0]);
        let active = ActiveSet::all_free(3);
        let g = Vector::from(vec![2.0, 4.0, 6.0]);
        let rep = compute_multipliers(&g, &active, &pb, 1e-12);
        assert!((rep.multipliers.lambda - 2.0).abs() < 1e-12);
        assert!(rep.stationarity_residual < 1e-12);
        assert!(rep.negative.is_empty());
        assert!(rep.satisfied(1e-9));
    }

    #[test]
    fn negative_lower_multiplier_detected() {
        // Variable 0 clamped at 0 but its gradient exceeds λ·a_0: turning the
        // monitor on would improve the objective → ν_0 < 0 → release.
        let pb = problem(&[1.0, 1.0]);
        let mut active = ActiveSet::all_free(2);
        active.set(0, VarState::AtLower);
        // Free var 1: λ = g_1/a_1 = 1. Clamped var 0: g_0 = 5 → ν = 1 − 5 = −4.
        let g = Vector::from(vec![5.0, 1.0]);
        let rep = compute_multipliers(&g, &active, &pb, 1e-12);
        assert_eq!(rep.negative, vec![0]);
        assert!((rep.multipliers.bound[0] + 4.0).abs() < 1e-12);
        assert!(!rep.satisfied(1e-9));
    }

    #[test]
    fn positive_multipliers_satisfy() {
        let pb = problem(&[1.0, 1.0]);
        let mut active = ActiveSet::all_free(2);
        active.set(0, VarState::AtLower);
        // g_0 = 0.2 < λ = 1 → ν = 0.8 ≥ 0: keeping the monitor off is optimal.
        let g = Vector::from(vec![0.2, 1.0]);
        let rep = compute_multipliers(&g, &active, &pb, 1e-12);
        assert!(rep.negative.is_empty());
        assert!(rep.satisfied(0.0));
        assert!((rep.multipliers.bound[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_multiplier_sign() {
        let pb = problem(&[1.0, 1.0]);
        let mut active = ActiveSet::all_free(2);
        active.set(0, VarState::AtUpper);
        // λ = 1 from var 1. μ_0 = g_0 − λ: negative when g_0 < 1 (saturating
        // the monitor was wrong), positive when g_0 > 1.
        let rep_bad = compute_multipliers(&Vector::from(vec![0.5, 1.0]), &active, &pb, 1e-12);
        assert_eq!(rep_bad.negative, vec![0]);
        let rep_ok = compute_multipliers(&Vector::from(vec![3.0, 1.0]), &active, &pb, 1e-12);
        assert!(rep_ok.negative.is_empty());
        assert!((rep_ok.multipliers.bound[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fully_clamped_fallback() {
        let pb = problem(&[1.0, 2.0]);
        let mut active = ActiveSet::all_free(2);
        active.set(0, VarState::AtLower);
        active.set(1, VarState::AtUpper);
        let g = Vector::from(vec![1.0, 2.0]);
        // Least squares over all: λ = (1 + 4)/5 = 1.
        let rep = compute_multipliers(&g, &active, &pb, 1e-12);
        assert!((rep.multipliers.lambda - 1.0).abs() < 1e-12);
        // ν_0 = 1·1 − 1 = 0; μ_1 = 2 − 2 = 0 → satisfied.
        assert!(rep.satisfied(1e-12));
    }

    #[test]
    fn free_variables_have_zero_bound_multiplier() {
        let pb = problem(&[1.0, 1.0, 1.0]);
        let mut active = ActiveSet::all_free(3);
        active.set(2, VarState::AtLower);
        let g = Vector::from(vec![1.0, 1.0, 0.0]);
        let rep = compute_multipliers(&g, &active, &pb, 1e-12);
        assert_eq!(rep.multipliers.bound[0], 0.0);
        assert_eq!(rep.multipliers.bound[1], 0.0);
    }
}
