//! Gradient projection onto the active-constraint subspace.

use crate::{ActiveSet, BoxLinearProblem};
use nws_linalg::Vector;

/// Projects the gradient `g` onto the subspace spanned by the active
/// constraints: clamped coordinates are zeroed, and the component along the
/// capacity-equality normal (restricted to the free coordinates) is removed.
///
/// For this problem's constraint structure — axis-aligned bounds plus a
/// single dense equality — the general projector `I − Aᵀ(AAᵀ)⁻¹A` collapses
/// to the closed form implemented here (the `nws-linalg` projector is used
/// by the tests as the oracle):
///
/// ```text
/// d_i = 0                                  if i clamped
/// d_F = g_F − (a_F·g_F / ‖a_F‖²)·a_F        on the free coordinates
/// ```
///
/// Moving along the returned direction keeps `a·p` constant and leaves
/// clamped coordinates untouched. A zero vector is returned when no
/// variables are free.
pub fn project_gradient(g: &Vector, active: &ActiveSet, problem: &BoxLinearProblem) -> Vector {
    let n = g.len();
    assert_eq!(n, active.len(), "gradient/active-set dimension mismatch");
    let a = problem.eq_normal();
    let mut af_dot_g = 0.0;
    let mut af_norm2 = 0.0;
    for i in 0..n {
        if active.is_free(i) {
            af_dot_g += a[i] * g[i];
            af_norm2 += a[i] * a[i];
        }
    }
    let mut d = Vector::zeros(n);
    if af_norm2 == 0.0 {
        return d; // no free coordinates: the subspace is {0}
    }
    let lambda = af_dot_g / af_norm2;
    for i in 0..n {
        if active.is_free(i) {
            d[i] = g[i] - lambda * a[i];
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarState;
    use nws_linalg::Matrix;

    fn problem(n: usize, a: &[f64]) -> BoxLinearProblem {
        BoxLinearProblem::new(Vector::filled(n, 1.0), Vector::from(a), 0.5).unwrap()
    }

    #[test]
    fn projection_orthogonal_to_equality() {
        let pb = problem(3, &[10.0, 20.0, 30.0]);
        let active = ActiveSet::all_free(3);
        let g = Vector::from(vec![1.0, -2.0, 0.5]);
        let d = project_gradient(&g, &active, &pb);
        assert!(pb.eq_normal().dot(&d).abs() < 1e-9);
    }

    #[test]
    fn clamped_coordinates_zeroed() {
        let pb = problem(3, &[1.0, 1.0, 1.0]);
        let mut active = ActiveSet::all_free(3);
        active.set(0, VarState::AtLower);
        let g = Vector::from(vec![5.0, 1.0, -1.0]);
        let d = project_gradient(&g, &active, &pb);
        assert_eq!(d[0], 0.0);
        // Free part: g_F − mean(g_F) for unit normal; a·d = 0 on free coords.
        assert!((d[1] + d[2]).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_general_projector_oracle() {
        // Build the equivalent constraint matrix (equality row + one row per
        // clamped coordinate) and compare with nws-linalg's projector.
        let a_coefs = [3.0, 7.0, 2.0, 5.0];
        let pb = problem(4, &a_coefs);
        let mut active = ActiveSet::all_free(4);
        active.set(2, VarState::AtUpper);

        let g = Vector::from(vec![1.0, -1.0, 2.0, 0.3]);
        let fast = project_gradient(&g, &active, &pb);

        let rows: Vec<Vec<f64>> = vec![
            a_coefs.to_vec(),
            vec![0.0, 0.0, 1.0, 0.0], // clamped coordinate normal e_2
        ];
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a_mat = Matrix::from_rows(&row_refs);
        let oracle = nws_linalg::project_out(&a_mat, &g).unwrap();
        assert!(
            fast.approx_eq(&oracle, 1e-10),
            "fast {fast} vs oracle {oracle}"
        );
    }

    #[test]
    fn all_clamped_gives_zero() {
        let pb = problem(2, &[1.0, 2.0]);
        let mut active = ActiveSet::all_free(2);
        active.set(0, VarState::AtLower);
        active.set(1, VarState::AtUpper);
        let d = project_gradient(&Vector::from(vec![4.0, -4.0]), &active, &pb);
        assert_eq!(d.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn gradient_already_in_subspace_unchanged() {
        let pb = problem(2, &[1.0, 1.0]);
        let active = ActiveSet::all_free(2);
        let g = Vector::from(vec![1.0, -1.0]); // a·g = 0 already
        let d = project_gradient(&g, &active, &pb);
        assert!(d.approx_eq(&g, 1e-12));
    }

    #[test]
    fn projection_is_ascent_direction() {
        // d is the projection of g, so g·d = ‖d‖² ≥ 0.
        let pb = problem(4, &[2.0, 3.0, 4.0, 5.0]);
        let active = ActiveSet::all_free(4);
        let g = Vector::from(vec![0.4, -1.2, 3.3, 0.01]);
        let d = project_gradient(&g, &active, &pb);
        assert!((g.dot(&d) - d.dot(&d)).abs() < 1e-9);
        assert!(g.dot(&d) >= 0.0);
    }
}
