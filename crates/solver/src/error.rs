//! Solver error type.

use std::fmt;

/// Errors reported by problem construction and the solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// A problem parameter was invalid (described in the message).
    InvalidProblem(String),
    /// The feasible set is empty: the equality target cannot be met within
    /// the box bounds.
    Infeasible {
        /// Requested equality right-hand side.
        rhs: f64,
        /// Maximum achievable value of `a·p` within the box.
        max_achievable: f64,
    },
    /// The objective returned a non-finite value or gradient at a feasible
    /// point; the message locates the failure.
    NonFiniteObjective(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::InvalidProblem(m) => write!(f, "invalid problem: {m}"),
            SolverError::Infeasible {
                rhs,
                max_achievable,
            } => write!(
                f,
                "infeasible: equality rhs {rhs} exceeds maximum achievable {max_achievable}"
            ),
            SolverError::NonFiniteObjective(m) => {
                write!(f, "objective is non-finite: {m}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SolverError::InvalidProblem("bad".into()).to_string(),
            "invalid problem: bad"
        );
        assert!(SolverError::Infeasible {
            rhs: 2.0,
            max_achievable: 1.0
        }
        .to_string()
        .contains("exceeds maximum achievable"));
        assert!(SolverError::NonFiniteObjective("at start".into())
            .to_string()
            .contains("non-finite"));
    }
}
