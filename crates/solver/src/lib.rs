//! # nws-solver — gradient projection with active sets and KKT verification
//!
//! The optimization engine behind the monitor-placement method of Cantieni
//! et al. (CoNEXT 2006, §IV): maximize a smooth strictly concave objective
//! over the polytope
//!
//! ```text
//! Ω = { p │ 0 ≤ p_i ≤ upper_i,  Σ_i a_i·p_i = b }
//! ```
//!
//! using the **gradient projection method**:
//!
//! 1. project the gradient onto the subspace spanned by the *active*
//!    constraints (clamped bounds + the capacity equality);
//! 2. mix successive search directions with the **Polak–Ribière** rule;
//! 3. run an exact 1-D **Newton line search** along the direction, stopping
//!    early when an inactive bound is hit (which then joins the active set);
//! 4. at interior stationary points, compute **Lagrange multipliers** and
//!    check the **KKT conditions**; bounds with negative multipliers are
//!    released and the search continues;
//! 5. stop at a KKT point — by concavity + convexity of `Ω`, the *global*
//!    maximizer — or when the iteration cap is exceeded.
//!
//! The solver is generic over the objective (the [`Objective`] trait), so
//! the same engine drives the paper's utility, the max–min extension, and
//! the test suite's analytic objectives.
//!
//! ```
//! use nws_linalg::Vector;
//! use nws_solver::{BoxLinearProblem, Objective, Solver};
//!
//! /// maximize −Σ (p_i − 1)² over p_1 + p_2 = 1, 0 ≤ p ≤ 1.
//! struct Quad;
//! impl Objective for Quad {
//!     fn value(&self, p: &Vector) -> f64 {
//!         -p.iter().map(|x| (x - 1.0) * (x - 1.0)).sum::<f64>()
//!     }
//!     fn gradient(&self, p: &Vector) -> Vector {
//!         p.iter().map(|x| -2.0 * (x - 1.0)).collect()
//!     }
//!     fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
//!         -2.0 * s.dot(s)
//!     }
//! }
//!
//! let problem = BoxLinearProblem::new(
//!     Vector::filled(2, 1.0),           // upper bounds
//!     Vector::filled(2, 1.0),           // equality normal
//!     1.0,                              // equality rhs
//! ).unwrap();
//! let sol = Solver::default().maximize(&Quad, &problem).unwrap();
//! assert!(sol.kkt_verified);
//! // Symmetric problem: optimum splits the budget evenly.
//! assert!((sol.p[0] - 0.5).abs() < 1e-8);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod active_set;
mod diagnostics;
mod error;
mod hooks;
mod kkt;
mod line_search;
mod problem;
mod projection;
mod solve;
mod stepsize;

pub use active_set::{ActiveSet, VarState};
pub use diagnostics::{Diagnostics, Solution, TerminationReason};
pub use error::SolverError;
pub use hooks::{GradientTrace, HookAction, IterationInfo, NoHooks, SolverHooks};
pub use kkt::{compute_multipliers, KktReport, Multipliers};
pub use line_search::{LineSearchOutcome, NewtonLineSearch};
pub use problem::{BoxLinearProblem, Objective};
pub use projection::project_gradient;
pub use solve::{SolveBudget, Solver, SolverOptions};
pub use stepsize::{BacktrackingStep, StepSize};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, SolverError>;
