//! Pluggable step-size rules for the solve loop.
//!
//! The solver's 1-D subproblem — pick `t ∈ [0, t_max]` along a search
//! direction — is decoupled from the loop behind the [`StepSize`] trait, in
//! the spirit of gradient-descent frameworks that treat the step-size rule
//! as an interchangeable component. The paper's exact Newton search
//! ([`NewtonLineSearch`]) is the default and what every production path
//! uses; [`BacktrackingStep`] is the classical inexact Armijo rule, useful
//! for ablations and for objectives whose curvature is unreliable.

use crate::{LineSearchOutcome, NewtonLineSearch, Objective, Result};
use nws_linalg::Vector;

/// A rule producing the step length along a search direction.
///
/// Implementations maximize (exactly or approximately) `φ(t) = f(p + t·s)`
/// over `[0, t_max]` and report the outcome in the solver's vocabulary:
/// an interior step, "still ascending at the boundary", or "no progress".
/// The solve loop is generic over this trait ([`crate::Solver::maximize_with`]),
/// so swapping the rule requires no changes to the active-set machinery.
pub trait StepSize {
    /// Picks a step along `s` from `p` over `t ∈ [0, t_max]`.
    ///
    /// # Errors
    /// [`crate::SolverError::NonFiniteObjective`] when the objective or its
    /// derivatives are non-finite along the segment.
    fn maximize<O: Objective>(
        &self,
        obj: &O,
        p: &Vector,
        s: &Vector,
        t_max: f64,
    ) -> Result<LineSearchOutcome>;
}

/// The exact Newton search is the canonical step-size rule.
impl StepSize for NewtonLineSearch {
    fn maximize<O: Objective>(
        &self,
        obj: &O,
        p: &Vector,
        s: &Vector,
        t_max: f64,
    ) -> Result<LineSearchOutcome> {
        NewtonLineSearch::maximize(self, obj, p, s, t_max)
    }
}

/// Inexact Armijo backtracking: start at `t_max` and shrink geometrically
/// until the sufficient-increase condition
/// `φ(t) ≥ φ(0) + c₁·t·φ'(0)` holds.
///
/// One value evaluation per trial, no curvature required — cheaper per probe
/// than the Newton search but typically needing more solver iterations,
/// since accepted steps are not 1-D maximizers (the conjugate Polak–Ribière
/// mixing in the loop partially compensates). Accepting the very first
/// trial (`t = t_max`) reports [`LineSearchOutcome::ReachedMax`] so the
/// caller activates the bound that produced `t_max`, exactly as with the
/// exact search.
#[derive(Debug, Clone, Copy)]
pub struct BacktrackingStep {
    /// Sufficient-increase coefficient `c₁ ∈ (0, 1)` (Armijo).
    pub armijo: f64,
    /// Geometric shrink factor per rejected trial, in `(0, 1)`.
    pub shrink: f64,
    /// Maximum trials before giving up ([`LineSearchOutcome::NoProgress`]).
    pub max_trials: usize,
}

impl Default for BacktrackingStep {
    fn default() -> Self {
        BacktrackingStep {
            armijo: 1e-4,
            shrink: 0.5,
            max_trials: 40,
        }
    }
}

impl StepSize for BacktrackingStep {
    fn maximize<O: Objective>(
        &self,
        obj: &O,
        p: &Vector,
        s: &Vector,
        t_max: f64,
    ) -> Result<LineSearchOutcome> {
        assert!(t_max >= 0.0, "t_max must be ≥ 0, got {t_max}");
        let d0 = obj.directional_derivative(p, s);
        if !d0.is_finite() {
            return Err(crate::SolverError::NonFiniteObjective(
                "φ'(0) is not finite".into(),
            ));
        }
        if d0 <= 0.0 || t_max == 0.0 {
            return Ok(LineSearchOutcome::NoProgress);
        }
        let f0 = obj.value(p);
        let mut x = p.clone();
        let mut t = t_max;
        for trial in 0..self.max_trials {
            x.copy_from(p);
            x.axpy(t, s);
            let f = obj.value(&x);
            if !f.is_finite() {
                return Err(crate::SolverError::NonFiniteObjective(format!(
                    "φ({t}) is not finite"
                )));
            }
            if f >= f0 + self.armijo * t * d0 {
                return Ok(if trial == 0 {
                    LineSearchOutcome::ReachedMax
                } else {
                    LineSearchOutcome::Interior(t)
                });
            }
            t *= self.shrink;
        }
        Ok(LineSearchOutcome::NoProgress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(p) = −Σ (p_i − c_i)².
    struct Quad {
        c: Vec<f64>,
    }
    impl Objective for Quad {
        fn value(&self, p: &Vector) -> f64 {
            -(0..p.len())
                .map(|i| (p[i] - self.c[i]) * (p[i] - self.c[i]))
                .sum::<f64>()
        }
        fn gradient(&self, p: &Vector) -> Vector {
            (0..p.len()).map(|i| -2.0 * (p[i] - self.c[i])).collect()
        }
        fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
            -2.0 * s.dot(s)
        }
    }

    #[test]
    fn newton_search_implements_the_trait() {
        let obj = Quad { c: vec![1.0] };
        let out = StepSize::maximize(
            &NewtonLineSearch::default(),
            &obj,
            &Vector::zeros(1),
            &Vector::from(vec![1.0]),
            10.0,
        )
        .unwrap();
        match out {
            LineSearchOutcome::Interior(t) => assert!((t - 1.0).abs() < 1e-9),
            other => panic!("expected interior, got {other:?}"),
        }
    }

    #[test]
    fn backtracking_accepts_boundary_when_still_ascending() {
        // Max at t = 5, segment capped at 2: the first trial satisfies
        // Armijo and is the boundary.
        let obj = Quad { c: vec![5.0] };
        let out = BacktrackingStep::default()
            .maximize(&obj, &Vector::zeros(1), &Vector::from(vec![1.0]), 2.0)
            .unwrap();
        assert_eq!(out, LineSearchOutcome::ReachedMax);
    }

    #[test]
    fn backtracking_shrinks_past_the_maximizer() {
        // Max at t = 1, segment up to 16: t = 16 overshoots so badly the
        // objective decreases; backtracking must shrink into (0, 2) where
        // Armijo holds, and report an interior step.
        let obj = Quad { c: vec![1.0] };
        let out = BacktrackingStep::default()
            .maximize(&obj, &Vector::zeros(1), &Vector::from(vec![1.0]), 16.0)
            .unwrap();
        match out {
            LineSearchOutcome::Interior(t) => {
                assert!(t > 0.0 && t < 2.0, "t = {t}");
                assert!(obj.value(&Vector::from(vec![t])) > obj.value(&Vector::zeros(1)));
            }
            other => panic!("expected interior, got {other:?}"),
        }
    }

    #[test]
    fn backtracking_rejects_descent_directions() {
        let obj = Quad { c: vec![-1.0] };
        let out = BacktrackingStep::default()
            .maximize(&obj, &Vector::zeros(1), &Vector::from(vec![1.0]), 1.0)
            .unwrap();
        assert_eq!(out, LineSearchOutcome::NoProgress);
        let out = BacktrackingStep::default()
            .maximize(&obj, &Vector::zeros(1), &Vector::from(vec![-1.0]), 0.0)
            .unwrap();
        assert_eq!(out, LineSearchOutcome::NoProgress);
    }
}
