//! The gradient-projection solver loop.

use crate::{
    compute_multipliers, project_gradient, ActiveSet, BoxLinearProblem, Diagnostics, HookAction,
    IterationInfo, LineSearchOutcome, NewtonLineSearch, NoHooks, Objective, Result, Solution,
    SolverError, SolverHooks, StepSize, TerminationReason, VarState,
};
use nws_linalg::Vector;
use nws_obs::Recorder;
use std::time::Instant;

/// A resource budget for one solve, independent of the convergence-quality
/// knobs in [`SolverOptions`]: the solver stops early when either limit is
/// reached and returns the best *feasible* iterate found so far, marked
/// with [`TerminationReason::IterationLimit`] /
/// [`TerminationReason::DeadlineExceeded`] instead of erroring. The
/// default budget is unlimited (only [`SolverOptions::max_iterations`]
/// applies).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Extra iteration cap on top of [`SolverOptions::max_iterations`]
    /// (the effective cap is the minimum of the two).
    pub max_iters: Option<usize>,
    /// Wall-clock deadline; checked once per iteration, so the overrun is
    /// bounded by one iteration's work.
    pub deadline: Option<Instant>,
}

impl SolveBudget {
    /// A budget expiring `ms` milliseconds from now.
    pub fn with_deadline_ms(ms: u64) -> Self {
        SolveBudget {
            max_iters: None,
            deadline: Some(Instant::now() + std::time::Duration::from_millis(ms)),
        }
    }
}

/// Tunable parameters of the solver.
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Iteration cap — a new iteration starts whenever a new search
    /// direction is computed (the paper's counting; its cap is 2000, §IV-D).
    pub max_iterations: usize,
    /// Projected-gradient convergence tolerance, relative to the gradient's
    /// infinity norm. A candidate point passing this test must additionally
    /// survive the KKT multiplier check *and* a value-based verification
    /// line search before the solver declares convergence, so the tolerance
    /// controls when certification is *attempted*, not its soundness; on
    /// stiff problems (utility curvature `∝ 1/ρ³`) an overly tight value
    /// wastes iterations fighting the gradient's float-noise floor.
    pub grad_tol: f64,
    /// Absolute tolerance for classifying a coordinate as sitting on a bound.
    pub bound_snap_tol: f64,
    /// Tolerance below which a bound multiplier counts as negative.
    pub multiplier_tol: f64,
    /// Whether to mix successive directions with the Polak–Ribière rule.
    pub polak_ribiere: bool,
    /// Record the objective value at every iteration into
    /// [`crate::Solution::objective_trajectory`]. Off by default (one extra
    /// objective evaluation per iteration); used by convergence studies and
    /// by tests asserting the method's monotone-ascent property.
    pub record_objective: bool,
    /// The 1-D line-search engine.
    pub line_search: NewtonLineSearch,
    /// Per-solve resource budget (iterations / wall clock); unlimited by
    /// default. See [`SolveBudget`].
    pub budget: SolveBudget,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_iterations: 2000,
            grad_tol: 1e-6,
            bound_snap_tol: 1e-12,
            multiplier_tol: 1e-9,
            polak_ribiere: true,
            record_objective: false,
            line_search: NewtonLineSearch::default(),
            budget: SolveBudget::default(),
        }
    }
}

/// A verification-step outcome: the improved point plus, when the step ran
/// to the segment end, the bound it hit as `(variable, at_upper)`.
type VerificationStep = (Vector, Option<(usize, bool)>);

/// Gradient-projection active-set maximizer for [`BoxLinearProblem`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct Solver {
    /// Solver parameters.
    pub options: SolverOptions,
}

impl Solver {
    /// Creates a solver with the given options.
    pub fn new(options: SolverOptions) -> Self {
        Solver { options }
    }

    /// Maximizes `obj` over `problem` from the canonical feasible start
    /// ([`BoxLinearProblem::feasible_start`]).
    ///
    /// # Errors
    /// Propagates problem/objective errors; see [`Solver::maximize_from`].
    pub fn maximize<O: Objective>(&self, obj: &O, problem: &BoxLinearProblem) -> Result<Solution> {
        self.maximize_from(obj, problem, problem.feasible_start())
    }

    /// [`Solver::maximize`] with phase timings and iteration counters
    /// recorded into `rec` (see [`Solver::maximize_from_observed`]).
    ///
    /// # Errors
    /// As for [`Solver::maximize`].
    pub fn maximize_observed<O: Objective>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        rec: &Recorder,
    ) -> Result<Solution> {
        self.maximize_from_observed(obj, problem, problem.feasible_start(), rec)
    }

    /// Maximizes `obj` over `problem` starting from `start`.
    ///
    /// # Errors
    /// [`SolverError::InvalidProblem`] if `start` is not feasible;
    /// [`SolverError::NonFiniteObjective`] if the objective or gradient is
    /// non-finite anywhere the solver evaluates it.
    pub fn maximize_from<O: Objective>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        start: Vector,
    ) -> Result<Solution> {
        self.maximize_from_observed(obj, problem, start, &Recorder::disabled())
    }

    /// [`Solver::maximize_from`] with observability: wraps the whole run in
    /// a `solve` span with child spans per phase (`direction`, `projection`,
    /// `kkt_check`, `line_search`) and bumps the
    /// `solver_iterations_total` / `solver_releases_total` counters on
    /// success. With a disabled recorder this costs one branch per phase.
    ///
    /// # Errors
    /// As for [`Solver::maximize_from`].
    pub fn maximize_from_observed<O: Objective>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        start: Vector,
        rec: &Recorder,
    ) -> Result<Solution> {
        let step = self.options.line_search;
        self.maximize_with(obj, problem, start, rec, &step, &mut NoHooks)
    }

    /// The fully general entry point: [`Solver::maximize_from_observed`]
    /// with an explicit step-size rule and per-iteration hooks.
    ///
    /// The solve loop itself is generic over both: `step` picks the 1-D
    /// step along each search direction (the configured
    /// [`NewtonLineSearch`] for every plain entry point; see
    /// [`crate::BacktrackingStep`] for the inexact alternative) and `hooks`
    /// observes each iteration and may stop the solve early
    /// ([`TerminationReason::HookStopped`]). Pass [`NoHooks`] when only the
    /// step rule matters.
    ///
    /// # Errors
    /// As for [`Solver::maximize_from`].
    pub fn maximize_with<O: Objective, S: StepSize, H: SolverHooks>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        start: Vector,
        rec: &Recorder,
        step: &S,
        hooks: &mut H,
    ) -> Result<Solution> {
        let sol = {
            let _solve = rec.span("solve");
            self.run_loop(obj, problem, start, rec, step, hooks)?
        };
        rec.counter_add("solver_iterations_total", sol.diagnostics.iterations as u64);
        rec.counter_add(
            "solver_releases_total",
            sol.diagnostics.constraint_releases as u64,
        );
        Ok(sol)
    }

    fn run_loop<O: Objective, S: StepSize, H: SolverHooks>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        start: Vector,
        rec: &Recorder,
        step: &S,
        hooks: &mut H,
    ) -> Result<Solution> {
        let o = &self.options;
        if !problem.is_feasible(&start, 1e-9) {
            return Err(SolverError::InvalidProblem(
                "starting point is not feasible".into(),
            ));
        }
        let mut p = start;
        let mut active = ActiveSet::classify(&p, problem, o.bound_snap_tol);
        active.snap(&mut p, problem);
        restore_equality(&mut p, &active, problem);

        // Conjugate-direction memory; cleared whenever the active set changes.
        let mut prev_dir: Option<Vector> = None;
        let mut prev_proj: Option<Vector> = None;

        let mut releases = 0usize;
        let mut bounds_hit = 0usize;
        let mut iterations = 0usize;
        let mut last_proj_norm = f64::INFINITY;
        // Written in the stationary branches, read by the finish() call inside them.
        #[allow(unused_assignments)]
        let mut last_resid = f64::INFINITY;

        let trace = std::env::var_os("NWS_SOLVER_TRACE").is_some();
        let mut trajectory: Vec<f64> = Vec::new();
        // Gradient buffer reused across iterations (objectives with a
        // `gradient_into` override fill it without allocating).
        let mut g = Vector::zeros(problem.dim());
        let iter_cap = o
            .budget
            .max_iters
            .map_or(o.max_iterations, |m| m.min(o.max_iterations));
        let mut overrun_reason = TerminationReason::IterationLimit;
        while iterations < iter_cap {
            if let Some(deadline) = o.budget.deadline {
                if Instant::now() >= deadline {
                    overrun_reason = TerminationReason::DeadlineExceeded;
                    break;
                }
            }
            iterations += 1;
            if trace {
                let eq_err = problem.eq_normal().dot(&p) - problem.eq_rhs();
                eprintln!(
                    "TRACE iter {iterations}: eq_err={eq_err:.6e} free={} p={p}",
                    active.num_free()
                );
            }
            {
                let _phase = rec.span("direction");
                // When the trajectory is recorded, the fused kernel produces
                // value + gradient in one data sweep instead of two.
                if o.record_objective {
                    trajectory.push(obj.value_and_gradient_into(&p, &mut g));
                } else {
                    obj.gradient_into(&p, &mut g);
                }
            }
            if !g.is_finite() {
                return Err(SolverError::NonFiniteObjective(format!(
                    "gradient at iteration {iterations}"
                )));
            }
            let d = {
                let _phase = rec.span("projection");
                project_gradient(&g, &active, problem)
            };
            last_proj_norm = d.norm_inf();
            let scale = g.norm_inf().max(1.0);

            if hooks.on_iteration(&IterationInfo {
                iteration: iterations,
                projected_gradient_norm: last_proj_norm,
                gradient_norm: g.norm_inf(),
                free_variables: active.num_free(),
                p: &p,
            }) == HookAction::Stop
            {
                overrun_reason = TerminationReason::HookStopped;
                break;
            }

            let stationary = last_proj_norm <= o.grad_tol * scale;
            if stationary {
                let _phase = rec.span("kkt_check");
                let rep = compute_multipliers(&g, &active, problem, o.multiplier_tol);
                last_resid = rep.stationarity_residual;
                if rep.negative.is_empty() {
                    // A small projected gradient is necessary but — on stiff
                    // valley floors, where conjugate iterates pass through
                    // near-stationary points — not sufficient. Verify with
                    // one exact line search along the projection: at a true
                    // constrained maximum it cannot improve the objective.
                    if let Some(verified) =
                        self.verification_step(obj, step, &p, &d, scale, problem, &active)?
                    {
                        let (cand, hit) = verified;
                        p = cand;
                        if let Some((hit_var, hit_upper)) = hit {
                            active.set(
                                hit_var,
                                if hit_upper {
                                    VarState::AtUpper
                                } else {
                                    VarState::AtLower
                                },
                            );
                            bounds_hit += 1;
                            active.snap(&mut p, problem);
                        }
                        prev_dir = None;
                        prev_proj = None;
                        continue;
                    }
                    return Ok(self.finish_with_trajectory(
                        obj,
                        problem,
                        p,
                        rep.multipliers.lambda,
                        true,
                        TerminationReason::KktSatisfied,
                        iterations,
                        releases,
                        bounds_hit,
                        last_proj_norm,
                        last_resid,
                        trajectory,
                    ));
                }
                // Release the bounds that certify non-optimality and retry
                // with the enlarged subspace (the paper's §IV-D strategy of
                // releasing the whole negative-multiplier subset). The
                // multiplier estimate λ changes once the free set grows, so
                // a released variable can turn out to be blocked at its
                // bound under the new λ — the NoProgress arm below re-clamps
                // such variables instead of stalling.
                for &i in &rep.negative {
                    active.set(i, VarState::Free);
                }
                releases += 1;
                prev_dir = None;
                prev_proj = None;
                continue;
            }

            // Polak–Ribière conjugate mixing of the projected gradient.
            let mut s = d.clone();
            if o.polak_ribiere {
                if let (Some(pd), Some(pg)) = (&prev_dir, &prev_proj) {
                    let denom = pg.dot(pg);
                    if denom > 0.0 {
                        let beta = (d.dot(&(&d - pg)) / denom).max(0.0);
                        s.axpy(beta, pd);
                        // Safeguards: the mixed direction must stay an ascent
                        // direction; otherwise restart from the projection.
                        if g.dot(&s) <= 0.0 {
                            s = d.clone();
                        }
                    }
                }
            }

            let Some((t_max, hit_var, hit_upper)) = max_step(&p, &s, problem, &active) else {
                // Numerically null direction — treat as stationary and let
                // the multiplier logic decide next iteration.
                prev_dir = None;
                prev_proj = None;
                continue;
            };

            let outcome = {
                let _phase = rec.span("line_search");
                step.maximize(obj, &p, &s, t_max)?
            };
            match outcome {
                LineSearchOutcome::Interior(t) => {
                    p.axpy(t, &s);
                    // Float drift off the constraint surface accumulates at
                    // machine-epsilon scale per step; repair it only when it
                    // becomes measurable — unconditional repair perturbs the
                    // iterate enough to destroy slow conjugate progress
                    // along stiff valley floors.
                    maybe_repair_feasibility(&mut p, &active, problem);
                    prev_dir = Some(s);
                    prev_proj = Some(d);
                    // The interior step may still have drifted a coordinate
                    // onto a bound; classify so the projection stays honest.
                    let new_active = ActiveSet::classify(&p, problem, o.bound_snap_tol);
                    if new_active != active {
                        active = new_active;
                        active.snap(&mut p, problem);
                        maybe_repair_feasibility(&mut p, &active, problem);
                        prev_dir = None;
                        prev_proj = None;
                    }
                }
                LineSearchOutcome::ReachedMax => {
                    p.axpy(t_max, &s);
                    active.set(
                        hit_var,
                        if hit_upper {
                            VarState::AtUpper
                        } else {
                            VarState::AtLower
                        },
                    );
                    bounds_hit += 1;
                    active.snap(&mut p, problem);
                    maybe_repair_feasibility(&mut p, &active, problem);
                    prev_dir = None;
                    prev_proj = None;
                }
                LineSearchOutcome::NoProgress => {
                    if prev_dir.is_some() {
                        // The conjugate direction stalled; retry from the pure
                        // projection next iteration.
                        prev_dir = None;
                        prev_proj = None;
                        continue;
                    }
                    if t_max == 0.0 {
                        // A free variable sits exactly on a bound with the
                        // projection pointing outward (typically a variable
                        // released under a multiplier estimate that the
                        // enlarged free set no longer supports). Re-clamp it
                        // and recompute.
                        active.set(
                            hit_var,
                            if hit_upper {
                                VarState::AtUpper
                            } else {
                                VarState::AtLower
                            },
                        );
                        bounds_hit += 1;
                        active.snap(&mut p, problem);
                        prev_dir = None;
                        prev_proj = None;
                        continue;
                    }
                    // The pure projection made no numerical progress away
                    // from bounds: only treat as stationary when it really
                    // is small; a large-gradient stall otherwise burns one
                    // iteration and retries (bounded by the iteration cap).
                    if last_proj_norm <= o.grad_tol * scale {
                        let _phase = rec.span("kkt_check");
                        let rep = compute_multipliers(&g, &active, problem, o.multiplier_tol);
                        last_resid = rep.stationarity_residual;
                        if rep.negative.is_empty() {
                            return Ok(self.finish_with_trajectory(
                                obj,
                                problem,
                                p,
                                rep.multipliers.lambda,
                                true,
                                TerminationReason::KktSatisfied,
                                iterations,
                                releases,
                                bounds_hit,
                                last_proj_norm,
                                last_resid,
                                trajectory,
                            ));
                        }
                        let &worst = rep
                            .negative
                            .iter()
                            .min_by(|&&i, &&j| {
                                rep.multipliers.bound[i]
                                    .partial_cmp(&rep.multipliers.bound[j])
                                    .expect("finite multipliers")
                            })
                            .expect("non-empty negative set");
                        active.set(worst, VarState::Free);
                        releases += 1;
                    }
                    prev_dir = None;
                    prev_proj = None;
                }
            }
        }

        obj.gradient_into(&p, &mut g);
        let rep = compute_multipliers(&g, &active, problem, self.options.multiplier_tol);
        Ok(self.finish_with_trajectory(
            obj,
            problem,
            p,
            rep.multipliers.lambda,
            false,
            overrun_reason,
            iterations,
            releases,
            bounds_hit,
            last_proj_norm,
            rep.stationarity_residual,
            trajectory,
        ))
    }

    /// Attempts one exact line search along the projected gradient `d` from
    /// `p`. Returns `Some((new_point, bound_hit))` when the step improves
    /// the objective beyond float noise — proof that `p` was a stiff valley
    /// floor rather than the constrained maximum — and `None` when no
    /// meaningful improvement exists (true convergence).
    #[allow(clippy::too_many_arguments)] // internal helper; the args are the solver's loop state
    fn verification_step<O: Objective, S: StepSize>(
        &self,
        obj: &O,
        step: &S,
        p: &Vector,
        d: &Vector,
        gradient_scale: f64,
        problem: &BoxLinearProblem,
        active: &ActiveSet,
    ) -> Result<Option<VerificationStep>> {
        // Near stationarity the projection is computed by catastrophic
        // cancellation, so once ‖d‖ falls to rounding noise relative to the
        // gradient, its *direction* is meaningless — stepping far along it
        // would walk off the equality hyperplane. Treat it as zero.
        if d.norm_inf() <= 1e-12 * gradient_scale {
            return Ok(None);
        }
        let Some((t_max, hit_var, hit_upper)) = max_step(p, d, problem, active) else {
            return Ok(None);
        };
        let before = obj.value(p);
        let improvement_floor = 1e-12 * (1.0 + before.abs());
        let accept = |mut cand: Vector, hit: Option<(usize, bool)>| {
            // Repair the (tiny) drift the step introduced and insist on
            // feasibility: a verification step must never trade constraint
            // violation for objective improvement.
            restore_equality(&mut cand, active, problem);
            for i in 0..cand.len() {
                cand[i] = cand[i].clamp(0.0, problem.upper()[i]);
            }
            if !problem.is_feasible(&cand, 1e-9) {
                return None;
            }
            let after = obj.value(&cand);
            if after > before + improvement_floor {
                Some((cand, hit))
            } else {
                None
            }
        };
        match step.maximize(obj, p, d, t_max)? {
            LineSearchOutcome::Interior(t) => {
                let mut cand = p.clone();
                cand.axpy(t, d);
                Ok(accept(cand, None))
            }
            LineSearchOutcome::ReachedMax => {
                let mut cand = p.clone();
                cand.axpy(t_max, d);
                Ok(accept(cand, Some((hit_var, hit_upper))))
            }
            LineSearchOutcome::NoProgress => Ok(None),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn finish_with_trajectory<O: Objective>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        p: Vector,
        lambda: f64,
        kkt_verified: bool,
        reason: TerminationReason,
        iterations: usize,
        constraint_releases: usize,
        bounds_hit: usize,
        final_projected_gradient: f64,
        stationarity_residual: f64,
        mut trajectory: Vec<f64>,
    ) -> Solution {
        let mut sol = self.finish(
            obj,
            problem,
            p,
            lambda,
            kkt_verified,
            reason,
            iterations,
            constraint_releases,
            bounds_hit,
            final_projected_gradient,
            stationarity_residual,
        );
        if self.options.record_objective {
            trajectory.push(sol.value);
            sol.objective_trajectory = trajectory;
        }
        sol
    }

    #[allow(clippy::too_many_arguments)]
    fn finish<O: Objective>(
        &self,
        obj: &O,
        problem: &BoxLinearProblem,
        mut p: Vector,
        lambda: f64,
        kkt_verified: bool,
        reason: TerminationReason,
        iterations: usize,
        constraint_releases: usize,
        bounds_hit: usize,
        final_projected_gradient: f64,
        stationarity_residual: f64,
    ) -> Solution {
        // The conditional feasibility repair tolerates sub-1e-10 float drift
        // during the search; the *returned* point must sit exactly in the box.
        for i in 0..p.len() {
            p[i] = p[i].clamp(0.0, problem.upper()[i]);
        }
        let value = obj.value(&p);
        Solution {
            value,
            lambda,
            kkt_verified,
            reason,
            diagnostics: Diagnostics {
                iterations,
                constraint_releases,
                bounds_hit,
                final_projected_gradient,
                stationarity_residual,
            },
            objective_trajectory: Vec::new(),
            p,
        }
    }
}

/// The largest step along `s` before some *free* coordinate leaves the box,
/// with the index of the limiting coordinate and whether it hits the upper
/// bound. `None` when the direction is numerically null on the free set.
fn max_step(
    p: &Vector,
    s: &Vector,
    problem: &BoxLinearProblem,
    active: &ActiveSet,
) -> Option<(f64, usize, bool)> {
    let mut best: Option<(f64, usize, bool)> = None;
    for i in 0..p.len() {
        if !active.is_free(i) {
            continue;
        }
        let si = s[i];
        let (t, upper) = if si > f64::EPSILON {
            ((problem.upper()[i] - p[i]) / si, true)
        } else if si < -f64::EPSILON {
            (p[i] / -si, false)
        } else {
            continue;
        };
        let t = t.max(0.0);
        if best.is_none_or(|(bt, _, _)| t < bt) {
            best = Some((t, i, upper));
        }
    }
    best
}

/// Repairs box and equality feasibility only when the drift is measurable
/// (relative error above `1e-10`). Small-scale repairs are deliberately
/// skipped: perturbing the iterate at machine-epsilon scale each step is
/// enough to destroy slow conjugate-gradient progress on ill-conditioned
/// instances, while the drift itself stays far below any reporting
/// tolerance.
fn maybe_repair_feasibility(p: &mut Vector, active: &ActiveSet, problem: &BoxLinearProblem) {
    let mut box_violation: f64 = 0.0;
    for i in 0..p.len() {
        let u = problem.upper()[i];
        box_violation = box_violation.max((-p[i]).max(p[i] - u));
    }
    let eq_err = (problem.eq_normal().dot(p) - problem.eq_rhs()).abs();
    let eq_scale = problem.eq_rhs().abs().max(1.0);
    if box_violation > 1e-10 || eq_err > 1e-10 * eq_scale {
        for i in 0..p.len() {
            p[i] = p[i].clamp(0.0, problem.upper()[i]);
        }
        restore_equality(p, active, problem);
    }
}

/// Restores `a·p = rhs` exactly by distributing the (tiny) residual along
/// the equality normal restricted to free coordinates.
fn restore_equality(p: &mut Vector, active: &ActiveSet, problem: &BoxLinearProblem) {
    let a = problem.eq_normal();
    let err = a.dot(p) - problem.eq_rhs();
    if err == 0.0 {
        return;
    }
    let mut norm2 = 0.0;
    for i in 0..p.len() {
        if active.is_free(i) {
            norm2 += a[i] * a[i];
        }
    }
    if norm2 == 0.0 {
        return; // fully clamped; nothing to adjust against
    }
    let corr = err / norm2;
    for i in 0..p.len() {
        if active.is_free(i) {
            p[i] = (p[i] - corr * a[i]).clamp(0.0, problem.upper()[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Separable concave quadratic: f(p) = −Σ w_i·(p_i − c_i)².
    struct Quad {
        w: Vec<f64>,
        c: Vec<f64>,
    }
    impl Objective for Quad {
        fn value(&self, p: &Vector) -> f64 {
            -(0..p.len())
                .map(|i| self.w[i] * (p[i] - self.c[i]) * (p[i] - self.c[i]))
                .sum::<f64>()
        }
        fn gradient(&self, p: &Vector) -> Vector {
            (0..p.len())
                .map(|i| -2.0 * self.w[i] * (p[i] - self.c[i]))
                .collect()
        }
        fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
            -(0..s.len())
                .map(|i| 2.0 * self.w[i] * s[i] * s[i])
                .sum::<f64>()
        }
    }

    /// Σ log(ε + p_i): strictly concave with steep gradients near zero —
    /// a water-filling-style stress test.
    struct LogUtil {
        eps: f64,
    }
    impl Objective for LogUtil {
        fn value(&self, p: &Vector) -> f64 {
            p.iter().map(|x| (self.eps + x).ln()).sum()
        }
        fn gradient(&self, p: &Vector) -> Vector {
            p.iter().map(|x| 1.0 / (self.eps + x)).collect()
        }
        fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
            -(0..s.len())
                .map(|i| s[i] * s[i] / ((self.eps + p[i]) * (self.eps + p[i])))
                .sum::<f64>()
        }
    }

    #[test]
    fn symmetric_quadratic_splits_budget() {
        let obj = Quad {
            w: vec![1.0, 1.0],
            c: vec![1.0, 1.0],
        };
        let pb =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::filled(2, 1.0), 1.0).unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(sol.kkt_verified);
        assert!(sol.p.approx_eq(&Vector::filled(2, 0.5), 1e-8), "{}", sol.p);
    }

    #[test]
    fn asymmetric_quadratic_known_optimum() {
        // max −(p1−1)² − 4(p2−1)² s.t. p1 + p2 = 1, 0 ≤ p ≤ 1.
        // Lagrange: −2(p1−1) = λ, −8(p2−1) = λ; p1+p2=1 →
        // p1−1 = 4(p2−1) → p1 = 4p2 − 3; p1 + p2 = 1 → 5p2 = 4 → p2 = 0.8.
        let obj = Quad {
            w: vec![1.0, 4.0],
            c: vec![1.0, 1.0],
        };
        let pb =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::filled(2, 1.0), 1.0).unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(sol.kkt_verified);
        assert!(
            sol.p.approx_eq(&Vector::from(vec![0.2, 0.8]), 1e-8),
            "got {}",
            sol.p
        );
        // λ = −2(0.2 − 1)/1 = 1.6 against a = (1,1).
        assert!((sol.lambda - 1.6).abs() < 1e-6, "lambda {}", sol.lambda);
    }

    #[test]
    fn optimum_on_a_bound() {
        // max −(p1−2)² − (p2−0)² s.t. p1 + p2 = 1: unconstrained optimum
        // (2, 0) infeasible for the box [0,1]² → p1 clamps at 1, p2 = 0.
        let obj = Quad {
            w: vec![1.0, 1.0],
            c: vec![2.0, 0.0],
        };
        let pb =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::filled(2, 1.0), 1.0).unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(sol.kkt_verified);
        assert!(
            sol.p.approx_eq(&Vector::from(vec![1.0, 0.0]), 1e-8),
            "got {}",
            sol.p
        );
    }

    #[test]
    fn monitors_switched_off_at_optimum() {
        // Heavily-weighted coordinate with a far target hogs the budget; the
        // "cheap" coordinate is driven to zero — the placement analogue of
        // not activating a monitor.
        let obj = Quad {
            w: vec![10.0, 0.01],
            c: vec![0.5, -5.0],
        };
        let pb = BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::from(vec![1.0, 1.0]), 0.5)
            .unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(sol.kkt_verified);
        assert!((sol.p[0] - 0.5).abs() < 1e-7, "got {}", sol.p);
        assert!(sol.p[1].abs() < 1e-9, "got {}", sol.p);
    }

    #[test]
    fn water_filling_log_utility() {
        // max Σ ln(ε+p_i) s.t. Σ a_i p_i = θ: optimum has a_i(ε + p_i) equal
        // across free coordinates (water filling).
        let obj = LogUtil { eps: 1e-3 };
        let a = vec![1.0, 2.0, 4.0];
        let pb =
            BoxLinearProblem::new(Vector::filled(3, 10.0), Vector::from(a.clone()), 2.0).unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(sol.kkt_verified, "diag: {:?}", sol.diagnostics);
        for (i, &ai) in a.iter().enumerate() {
            let marginal = 1.0 / (1e-3 + sol.p[i]) / ai;
            assert!(
                (marginal - sol.lambda).abs() < 1e-5 * sol.lambda,
                "marginal {i}: {marginal} vs λ {}",
                sol.lambda
            );
        }
        // Budget exactly consumed.
        let spent: f64 = (0..3).map(|i| a[i] * sol.p[i]).sum();
        assert!((spent - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_problem() {
        // rhs at its maximum: only feasible point is `upper`.
        let obj = Quad {
            w: vec![1.0, 1.0],
            c: vec![0.0, 0.0],
        };
        let pb = BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::from(vec![1.0, 3.0]), 4.0)
            .unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(sol.p.approx_eq(&Vector::filled(2, 1.0), 1e-9));
        assert!(sol.kkt_verified);
    }

    #[test]
    fn infeasible_start_rejected() {
        let obj = Quad {
            w: vec![1.0],
            c: vec![0.0],
        };
        let pb =
            BoxLinearProblem::new(Vector::filled(1, 1.0), Vector::filled(1, 1.0), 0.5).unwrap();
        let err = Solver::default()
            .maximize_from(&obj, &pb, Vector::from(vec![0.9]))
            .unwrap_err();
        assert!(matches!(err, SolverError::InvalidProblem(_)));
    }

    #[test]
    fn start_on_wrong_bound_is_released() {
        // Start with all mass on coordinate 0 although the optimum wants it
        // on coordinate 1: requires activating then releasing bounds.
        let obj = Quad {
            w: vec![1.0, 1.0],
            c: vec![0.0, 1.0],
        };
        let pb =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::filled(2, 1.0), 1.0).unwrap();
        let sol = Solver::default()
            .maximize_from(&obj, &pb, Vector::from(vec![1.0, 0.0]))
            .unwrap();
        assert!(sol.kkt_verified);
        assert!(
            sol.p.approx_eq(&Vector::from(vec![0.0, 1.0]), 1e-8),
            "got {}",
            sol.p
        );
        assert!(sol.diagnostics.constraint_releases >= 1);
    }

    #[test]
    fn iteration_limit_reported() {
        let obj = LogUtil { eps: 1e-6 };
        let pb = BoxLinearProblem::new(
            Vector::filled(4, 1.0),
            Vector::from(vec![1.0, 2.0, 3.0, 4.0]),
            1.0,
        )
        .unwrap();
        let solver = Solver::new(SolverOptions {
            max_iterations: 1,
            ..SolverOptions::default()
        });
        let sol = solver.maximize(&obj, &pb).unwrap();
        assert_eq!(sol.reason, TerminationReason::IterationLimit);
        assert!(!sol.kkt_verified);
        // Still feasible.
        assert!(pb.is_feasible(&sol.p, 1e-6));
    }

    #[test]
    fn budget_iteration_cap_tightens_max_iterations() {
        let obj = LogUtil { eps: 1e-6 };
        let pb = BoxLinearProblem::new(
            Vector::filled(4, 1.0),
            Vector::from(vec![1.0, 2.0, 3.0, 4.0]),
            1.0,
        )
        .unwrap();
        let solver = Solver::new(SolverOptions {
            budget: SolveBudget {
                max_iters: Some(1),
                deadline: None,
            },
            ..SolverOptions::default()
        });
        let sol = solver.maximize(&obj, &pb).unwrap();
        assert_eq!(sol.reason, TerminationReason::IterationLimit);
        assert_eq!(sol.diagnostics.iterations, 1);
        assert!(!sol.kkt_verified);
        assert!(pb.is_feasible(&sol.p, 1e-6));
    }

    #[test]
    fn expired_deadline_returns_feasible_point_not_error() {
        let obj = LogUtil { eps: 1e-6 };
        let pb = BoxLinearProblem::new(
            Vector::filled(4, 1.0),
            Vector::from(vec![1.0, 2.0, 3.0, 4.0]),
            1.0,
        )
        .unwrap();
        // A deadline already in the past: the loop must exit before the
        // first iteration and still return the (feasible) starting point.
        let solver = Solver::new(SolverOptions {
            budget: SolveBudget {
                max_iters: None,
                deadline: Some(Instant::now()),
            },
            ..SolverOptions::default()
        });
        let sol = solver.maximize(&obj, &pb).unwrap();
        assert_eq!(sol.reason, TerminationReason::DeadlineExceeded);
        assert!(!sol.kkt_verified);
        assert_eq!(sol.diagnostics.iterations, 0);
        assert!(pb.is_feasible(&sol.p, 1e-6));
    }

    #[test]
    fn generous_deadline_does_not_change_the_answer() {
        let obj = LogUtil { eps: 1e-6 };
        let pb = BoxLinearProblem::new(
            Vector::filled(4, 1.0),
            Vector::from(vec![1.0, 2.0, 3.0, 4.0]),
            1.0,
        )
        .unwrap();
        let unbudgeted = Solver::default().maximize(&obj, &pb).unwrap();
        let budgeted = Solver::new(SolverOptions {
            budget: SolveBudget::with_deadline_ms(600_000),
            ..SolverOptions::default()
        })
        .maximize(&obj, &pb)
        .unwrap();
        assert!(budgeted.kkt_verified);
        assert_eq!(budgeted.reason, TerminationReason::KktSatisfied);
        assert!(budgeted.p.approx_eq(&unbudgeted.p, 1e-9));
    }

    #[test]
    fn polak_ribiere_agrees_with_plain_projection() {
        let obj = Quad {
            w: vec![1.0, 2.0, 3.0],
            c: vec![0.9, 0.4, 0.2],
        };
        let pb = BoxLinearProblem::new(
            Vector::filled(3, 1.0),
            Vector::from(vec![2.0, 1.0, 1.5]),
            1.0,
        )
        .unwrap();
        let pr = Solver::default().maximize(&obj, &pb).unwrap();
        let plain = Solver::new(SolverOptions {
            polak_ribiere: false,
            ..SolverOptions::default()
        })
        .maximize(&obj, &pb)
        .unwrap();
        assert!(pr.kkt_verified && plain.kkt_verified);
        assert!(pr.p.approx_eq(&plain.p, 1e-6), "{} vs {}", pr.p, plain.p);
        assert!((pr.value - plain.value).abs() < 1e-9);
    }

    #[test]
    fn observed_solve_records_phase_spans_and_counters() {
        let obj = LogUtil { eps: 1e-3 };
        let pb = BoxLinearProblem::new(
            Vector::filled(3, 10.0),
            Vector::from(vec![1.0, 2.0, 4.0]),
            2.0,
        )
        .unwrap();
        let rec = Recorder::enabled();
        let sol = Solver::default()
            .maximize_observed(&obj, &pb, &rec)
            .unwrap();
        assert!(sol.kkt_verified);
        let snap = rec.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(
            counter("solver_iterations_total"),
            Some(sol.diagnostics.iterations as u64)
        );
        assert_eq!(
            counter("solver_releases_total"),
            Some(sol.diagnostics.constraint_releases as u64)
        );
        let span = |name: &str| snap.spans.iter().find(|s| s.name == name);
        let solve = span("solve").expect("root span present");
        assert_eq!(solve.depth, 0);
        assert_eq!(solve.count, 1);
        for phase in ["direction", "projection", "line_search", "kkt_check"] {
            let s = span(phase).unwrap_or_else(|| panic!("{phase} span recorded"));
            assert_eq!(s.depth, 1, "{phase} nests under solve");
            assert!(s.count >= 1);
        }
        // The unobserved entry point leaves the recorder untouched.
        let silent = Recorder::enabled();
        Solver::default().maximize(&obj, &pb).unwrap();
        assert!(silent.snapshot().spans.is_empty());
    }

    #[test]
    fn hook_stop_terminates_with_feasible_point() {
        use crate::{HookAction, IterationInfo, SolverHooks};
        struct StopAfter(usize);
        impl SolverHooks for StopAfter {
            fn on_iteration(&mut self, info: &IterationInfo<'_>) -> HookAction {
                if info.iteration >= self.0 {
                    HookAction::Stop
                } else {
                    HookAction::Continue
                }
            }
        }
        let obj = LogUtil { eps: 1e-6 };
        let pb = BoxLinearProblem::new(
            Vector::filled(4, 1.0),
            Vector::from(vec![1.0, 2.0, 3.0, 4.0]),
            1.0,
        )
        .unwrap();
        let solver = Solver::default();
        let step = solver.options.line_search;
        let sol = solver
            .maximize_with(
                &obj,
                &pb,
                pb.feasible_start(),
                &Recorder::disabled(),
                &step,
                &mut StopAfter(2),
            )
            .unwrap();
        assert_eq!(sol.reason, TerminationReason::HookStopped);
        assert!(!sol.kkt_verified);
        assert_eq!(sol.diagnostics.iterations, 2);
        assert!(pb.is_feasible(&sol.p, 1e-6));
    }

    #[test]
    fn gradient_trace_hook_records_every_iteration() {
        let obj = LogUtil { eps: 1e-3 };
        let pb = BoxLinearProblem::new(
            Vector::filled(3, 10.0),
            Vector::from(vec![1.0, 2.0, 4.0]),
            2.0,
        )
        .unwrap();
        let solver = Solver::default();
        let step = solver.options.line_search;
        let mut trace = crate::GradientTrace::default();
        let sol = solver
            .maximize_with(
                &obj,
                &pb,
                pb.feasible_start(),
                &Recorder::disabled(),
                &step,
                &mut trace,
            )
            .unwrap();
        assert!(sol.kkt_verified);
        assert_eq!(trace.projected_norms.len(), sol.diagnostics.iterations);
        assert_eq!(trace.free_counts.len(), sol.diagnostics.iterations);
        assert!(trace.projected_norms.iter().all(|n| n.is_finite()));
    }

    #[test]
    fn backtracking_step_reaches_the_same_optimum() {
        let obj = Quad {
            w: vec![1.0, 4.0],
            c: vec![1.0, 1.0],
        };
        let pb =
            BoxLinearProblem::new(Vector::filled(2, 1.0), Vector::filled(2, 1.0), 1.0).unwrap();
        let exact = Solver::default().maximize(&obj, &pb).unwrap();
        let inexact = Solver::default()
            .maximize_with(
                &obj,
                &pb,
                pb.feasible_start(),
                &Recorder::disabled(),
                &crate::BacktrackingStep::default(),
                &mut crate::NoHooks,
            )
            .unwrap();
        assert!(
            inexact.p.approx_eq(&exact.p, 1e-5),
            "{} vs {}",
            inexact.p,
            exact.p
        );
    }

    #[test]
    fn solution_feasible_and_diagnostics_sane() {
        let obj = LogUtil { eps: 1e-4 };
        let pb = BoxLinearProblem::new(
            Vector::from(vec![0.01, 1.0, 0.5, 0.2, 1.0]),
            Vector::from(vec![1e5, 2e4, 3e3, 7e2, 9e6]),
            500.0,
        )
        .unwrap();
        let sol = Solver::default().maximize(&obj, &pb).unwrap();
        assert!(pb.is_feasible(&sol.p, 1e-6), "p = {}", sol.p);
        assert!(sol.kkt_verified, "diag {:?}", sol.diagnostics);
        assert!(sol.diagnostics.iterations >= 1);
        assert!(sol.diagnostics.final_projected_gradient.is_finite());
        assert!(sol.value.is_finite());
    }
}
