//! Regression tests: solver instances that exposed real bugs during
//! development. Each carries the exact failing data and the invariant that
//! was violated.

use nws_linalg::Vector;
use nws_solver::{BoxLinearProblem, Objective, Solver, SolverOptions};

struct Quad {
    w: Vec<f64>,
    c: Vec<f64>,
}

impl Objective for Quad {
    fn value(&self, p: &Vector) -> f64 {
        -(0..p.len())
            .map(|i| self.w[i] * (p[i] - self.c[i]) * (p[i] - self.c[i]))
            .sum::<f64>()
    }
    fn gradient(&self, p: &Vector) -> Vector {
        (0..p.len())
            .map(|i| -2.0 * self.w[i] * (p[i] - self.c[i]))
            .collect()
    }
    fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
        -(0..s.len())
            .map(|i| 2.0 * self.w[i] * s[i] * s[i])
            .sum::<f64>()
    }
}

/// Bug: near stationarity the projected gradient is pure cancellation noise
/// (`‖d‖ ~ ε‖g‖`) whose direction is *not* orthogonal to the capacity
/// constraint. The verification line search once stepped `t_max ≈ 2·10¹⁵`
/// along such a direction, walking the "certified optimum" 0.8 % off the
/// equality hyperplane. The solver must (a) never return an infeasible
/// point, and (b) still certify the true optimum of this instance.
#[test]
fn verification_step_must_not_leave_feasible_set() {
    let q = Quad {
        w: vec![
            1.2323497585477483,
            9.373037574034138,
            9.542942657854269,
            6.252135075940012,
            8.399249080116041,
            6.192176520121759,
            7.719544584848155,
            4.724929006891208,
        ],
        c: vec![
            0.0,
            1.6991171432384078,
            -0.7962335427748701,
            1.6419510576283303,
            -0.6162007087443979,
            1.9251100981619118,
            1.1072992568495148,
            1.8704495598264432,
        ],
    };
    let a = vec![
        14.472312750288983,
        19.49507230461373,
        14.263110237356747,
        10.021037855499177,
        7.746296209088847,
        12.727493899195993,
        17.26044940434073,
        15.014287180323194,
    ];
    let upper = vec![
        0.6440494648294747,
        0.5467695886508444,
        0.9865234905147419,
        0.8869453936642994,
        0.9371408776349472,
        0.886115049737946,
        0.560811401588149,
        0.4038739418591965,
    ];
    let theta = 46.20085737000041;

    let problem = BoxLinearProblem::new(
        Vector::from(upper.as_slice()),
        Vector::from(a.as_slice()),
        theta,
    )
    .unwrap();
    let sol = Solver::default().maximize(&q, &problem).unwrap();

    assert!(
        problem.is_feasible(&sol.p, 1e-7),
        "infeasible answer: {}",
        sol.p
    );
    assert!(sol.kkt_verified, "diag: {:?}", sol.diagnostics);
    // The buggy trajectory ended at the all-clamped point with coordinate 6
    // at its upper bound; the true optimum keeps it interior at the value
    // the equality pins it to.
    let pinned =
        (theta - a[1] * upper[1] - a[3] * upper[3] - a[5] * upper[5] - a[7] * upper[7]) / a[6];
    assert!(
        (sol.p[6] - pinned).abs() < 1e-6,
        "coordinate 6: {} vs pinned {pinned}",
        sol.p[6]
    );
}

/// Bug: with a tight relative gradient tolerance the solver declared "KKT
/// satisfied" on a stiff valley floor of the GEANT-like utility where the
/// objective was still 0.36 below... or so it seemed — the "better" point
/// found by an unguarded trajectory was in fact infeasible, and the valley
/// floor *is* the optimum. The invariant that distinguishes the two: a
/// value-based verification search from the certified point must find no
/// feasible improvement. This test re-checks certification with a tighter
/// tolerance than default, which used to flip the outcome.
#[test]
fn certification_stable_across_gradient_tolerances() {
    let q = Quad {
        w: vec![3.0, 0.2, 7.0, 1.0, 0.5],
        c: vec![0.9, 2.0, 0.1, -0.5, 1.4],
    };
    let a = vec![5.0, 11.0, 3.0, 8.0, 6.0];
    let upper = vec![1.0, 0.8, 0.9, 0.7, 1.0];
    let ceiling: f64 = a.iter().zip(&upper).map(|(x, u)| x * u).sum();
    for frac in [0.2, 0.5, 0.8] {
        let problem = BoxLinearProblem::new(
            Vector::from(upper.as_slice()),
            Vector::from(a.as_slice()),
            ceiling * frac,
        )
        .unwrap();
        let loose = Solver::default().maximize(&q, &problem).unwrap();
        let tight = Solver::new(SolverOptions {
            grad_tol: 1e-9,
            max_iterations: 20_000,
            ..SolverOptions::default()
        })
        .maximize(&q, &problem)
        .unwrap();
        assert!(loose.kkt_verified);
        assert!(
            (loose.value - tight.value).abs() <= 1e-7 * (1.0 + tight.value.abs()),
            "frac {frac}: loose {} vs tight {}",
            loose.value,
            tight.value
        );
    }
}

/// Bug: the final answer carried sub-1e-10 negative coordinates (box drift
/// tolerated during the search for conjugacy's sake). The public contract
/// is `p ∈ [0, upper]` exactly.
#[test]
fn returned_point_exactly_in_box() {
    // The failing shape from the core property test: big ODs, tiny budget.
    let q = Quad {
        w: vec![1e-7, 2e-7, 1.5e-7, 1.2e-7],
        c: vec![5.3e6, 8.9e6, 7.9e6, 5.5e6],
    };
    let a = vec![5.3e6, 8.9e6, 7.9e6, 5.5e6];
    let upper = vec![1.0; 4];
    let theta = 27_727.0;
    let problem = BoxLinearProblem::new(
        Vector::from(upper.as_slice()),
        Vector::from(a.as_slice()),
        theta,
    )
    .unwrap();
    let sol = Solver::default().maximize(&q, &problem).unwrap();
    for i in 0..4 {
        assert!(
            (0.0..=1.0).contains(&sol.p[i]),
            "coordinate {i} outside the box: {}",
            sol.p[i]
        );
    }
}

/// Bug: releasing *all* negative-multiplier bounds at once freed variables
/// whose multiplier was positive under the updated λ; they blocked the line
/// search at their bound (`t_max = 0` → NoProgress), and the NoProgress
/// path certified "KKT satisfied" with a projected gradient of ~1.6 —
/// returning a feasible but suboptimal point (−20.048 vs the analytic
/// −19.957). Fixed by single-constraint release plus re-clamping blocked
/// variables; certification now requires genuine gradient smallness.
#[test]
fn batched_release_must_not_certify_suboptimal_point() {
    let q = Quad {
        w: vec![
            8.748017903140827,
            1.2720386070136287,
            7.080526070142832,
            2.173511815958373,
            8.613929872535364,
            5.028681154551625,
        ],
        c: vec![
            1.8422335324518262,
            0.0,
            1.2911772882873789,
            -0.47668221824003965,
            0.0,
            1.5948645517454194,
        ],
    };
    let a = vec![
        16.372700680800065,
        0.5,
        3.38281416929439,
        5.182772284430853,
        10.311346577921615,
        15.765347588356839,
    ];
    let upper = vec![
        0.7657373880350714,
        0.5969842049525744,
        0.4288637104901097,
        0.3966080424386139,
        0.8559762455960315,
        0.696420052272222,
    ];
    let theta = 25.102147577613067;
    let problem = BoxLinearProblem::new(
        Vector::from(upper.as_slice()),
        Vector::from(a.as_slice()),
        theta,
    )
    .unwrap();
    let sol = Solver::default().maximize(&q, &problem).unwrap();
    assert!(sol.kkt_verified);
    assert!(problem.is_feasible(&sol.p, 1e-7));
    let analytic = -19.957051830462483;
    assert!(
        (sol.value - analytic).abs() < 1e-6,
        "value {} vs analytic {analytic}",
        sol.value
    );
}

/// Failure injection: an objective whose gradient turns non-finite mid-box
/// must surface `NonFiniteObjective`, not panic or return garbage.
#[test]
fn non_finite_gradient_mid_run_is_reported() {
    struct Poisoned;
    impl Objective for Poisoned {
        fn value(&self, p: &Vector) -> f64 {
            p.iter().map(|x| -(x - 0.9) * (x - 0.9)).sum()
        }
        fn gradient(&self, p: &Vector) -> Vector {
            // Gradient blows up once any coordinate exceeds 0.5.
            p.iter()
                .map(|&x| if x > 0.5 { f64::NAN } else { -2.0 * (x - 0.9) })
                .collect()
        }
        fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
            -2.0 * s.iter().map(|x| x * x).sum::<f64>()
        }
    }
    let problem = BoxLinearProblem::new(
        Vector::from(vec![1.0, 1.0]),
        Vector::from(vec![1.0, 1.0]),
        1.4, // forces coordinates above 0.5
    )
    .unwrap();
    let err = Solver::default().maximize(&Poisoned, &problem).unwrap_err();
    assert!(matches!(
        err,
        nws_solver::SolverError::NonFiniteObjective(_)
    ));
}

/// The method is monotone ascent: with exact line searches every step can
/// only increase the objective, so the recorded trajectory is nondecreasing
/// (up to float noise). A broken projection, line search or repair step
/// shows up here immediately.
#[test]
fn recorded_trajectory_is_monotone_ascent() {
    let q = Quad {
        w: vec![3.0, 0.2, 7.0, 1.0, 0.5, 2.2],
        c: vec![0.9, 2.0, 0.1, -0.5, 1.4, 0.3],
    };
    let a = vec![5.0, 11.0, 3.0, 8.0, 6.0, 9.0];
    let upper = vec![1.0, 0.8, 0.9, 0.7, 1.0, 0.6];
    let ceiling: f64 = a.iter().zip(&upper).map(|(x, u)| x * u).sum();
    let problem = BoxLinearProblem::new(
        Vector::from(upper.as_slice()),
        Vector::from(a.as_slice()),
        ceiling * 0.4,
    )
    .unwrap();
    let sol = Solver::new(SolverOptions {
        record_objective: true,
        ..SolverOptions::default()
    })
    .maximize(&q, &problem)
    .unwrap();
    let traj = &sol.objective_trajectory;
    assert!(traj.len() >= 2, "trajectory recorded");
    for w in traj.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9 * (1.0 + w[0].abs()),
            "objective decreased: {} -> {}",
            w[0],
            w[1]
        );
    }
    assert!((traj.last().unwrap() - sol.value).abs() < 1e-12);
    // Off by default.
    let plain = Solver::default().maximize(&q, &problem).unwrap();
    assert!(plain.objective_trajectory.is_empty());
}
