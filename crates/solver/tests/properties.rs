//! Property-based tests: the gradient-projection solver against analytic
//! KKT solutions of random strictly concave quadratics.

use nws_linalg::Vector;
use nws_solver::{BoxLinearProblem, Objective, Solver};
use proptest::prelude::*;

/// Separable strictly concave quadratic: `f(p) = −Σ w_i (p_i − c_i)²`.
struct Quad {
    w: Vec<f64>,
    c: Vec<f64>,
}

impl Objective for Quad {
    fn value(&self, p: &Vector) -> f64 {
        -(0..p.len())
            .map(|i| self.w[i] * (p[i] - self.c[i]) * (p[i] - self.c[i]))
            .sum::<f64>()
    }
    fn gradient(&self, p: &Vector) -> Vector {
        (0..p.len())
            .map(|i| -2.0 * self.w[i] * (p[i] - self.c[i]))
            .collect()
    }
    fn curvature_along(&self, _p: &Vector, s: &Vector) -> f64 {
        -(0..s.len())
            .map(|i| 2.0 * self.w[i] * s[i] * s[i])
            .sum::<f64>()
    }
}

/// Analytic KKT oracle for the quadratic via bisection on λ:
/// stationarity gives `p_i(λ) = clamp(c_i − λ a_i / (2 w_i), 0, u_i)`,
/// and `g(λ) = Σ a_i p_i(λ)` is decreasing in λ; solve `g(λ) = θ`.
fn analytic_solution(q: &Quad, a: &[f64], upper: &[f64], theta: f64) -> Vec<f64> {
    let p_of = |lambda: f64| -> Vec<f64> {
        (0..a.len())
            .map(|i| (q.c[i] - lambda * a[i] / (2.0 * q.w[i])).clamp(0.0, upper[i]))
            .collect()
    };
    let g = |lambda: f64| -> f64 { p_of(lambda).iter().zip(a).map(|(p, ai)| p * ai).sum() };
    let (mut lo, mut hi) = (-1e6, 1e6);
    assert!(g(lo) >= theta && g(hi) <= theta, "bracketing");
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) > theta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    p_of(0.5 * (lo + hi))
}

/// Random problem data: weights, targets, equality coefficients, bounds,
/// and a θ that keeps the problem feasible.
#[allow(clippy::type_complexity)]
fn problem_data(
    dim: usize,
) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64)> {
    (
        proptest::collection::vec(0.1..10.0f64, dim), // w
        proptest::collection::vec(-1.0..2.0f64, dim), // c (can sit outside the box)
        proptest::collection::vec(0.5..20.0f64, dim), // a
        proptest::collection::vec(0.2..1.0f64, dim),  // upper
        0.05..0.95f64,                                // theta fraction
    )
        .prop_map(|(w, c, a, u, frac)| {
            let ceiling: f64 = a.iter().zip(&u).map(|(ai, ui)| ai * ui).sum();
            (w, c, a, u.clone(), ceiling * frac)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_matches_analytic_kkt((w, c, a, upper, theta) in problem_data(6)) {
        let q = Quad { w, c };
        let analytic = analytic_solution(&q, &a, &upper, theta);
        let problem = BoxLinearProblem::new(
            Vector::from(upper.as_slice()),
            Vector::from(a.as_slice()),
            theta,
        ).unwrap();
        let sol = Solver::default().maximize(&q, &problem).unwrap();
        prop_assert!(sol.kkt_verified, "diag {:?}", sol.diagnostics);
        // Values agree tightly; points agree unless the quadratic is nearly
        // degenerate along some manifold (compare via objective, the robust
        // invariant).
        let v_analytic = q.value(&Vector::from(analytic.as_slice()));
        prop_assert!(
            (sol.value - v_analytic).abs() <= 1e-6 * (1.0 + v_analytic.abs()),
            "value {} vs analytic {v_analytic}",
            sol.value
        );
        for (i, &ai) in analytic.iter().enumerate() {
            prop_assert!(
                (sol.p[i] - ai).abs() < 1e-4,
                "coordinate {i}: {} vs analytic {ai}",
                sol.p[i]
            );
        }
    }

    #[test]
    fn solution_always_feasible((w, c, a, upper, theta) in problem_data(8)) {
        let q = Quad { w, c };
        let problem = BoxLinearProblem::new(
            Vector::from(upper.as_slice()),
            Vector::from(a.as_slice()),
            theta,
        ).unwrap();
        let sol = Solver::default().maximize(&q, &problem).unwrap();
        prop_assert!(problem.is_feasible(&sol.p, 1e-7), "p = {}", sol.p);
        prop_assert!(sol.value.is_finite());
    }

    #[test]
    fn no_feasible_point_beats_the_solution(
        (w, c, a, upper, theta) in problem_data(5),
        perturb in proptest::collection::vec(-0.2..0.2f64, 5),
    ) {
        // Generate a feasible comparison point by perturbing and re-projecting.
        let q = Quad { w, c };
        let problem = BoxLinearProblem::new(
            Vector::from(upper.as_slice()),
            Vector::from(a.as_slice()),
            theta,
        ).unwrap();
        let sol = Solver::default().maximize(&q, &problem).unwrap();
        prop_assume!(sol.kkt_verified);

        // Candidate: start + perturbation, clamped, then rescaled onto the
        // equality hyperplane by uniform scaling (stays in the box since
        // scaling toward zero keeps bounds satisfied when scale <= 1, and we
        // skip the sample otherwise).
        let mut cand = problem.feasible_start();
        for i in 0..cand.len() {
            cand[i] = (cand[i] + perturb[i]).clamp(0.0, upper[i]);
        }
        let dot: f64 = (0..cand.len()).map(|i| cand[i] * a[i]).sum();
        prop_assume!(dot > 0.0);
        let scale = theta / dot;
        prop_assume!(scale <= 1.0);
        cand.scale_mut(scale);
        prop_assume!(problem.is_feasible(&cand, 1e-9));

        prop_assert!(
            q.value(&cand) <= sol.value + 1e-7 * (1.0 + sol.value.abs()),
            "candidate beats 'optimal' solution: {} > {}",
            q.value(&cand),
            sol.value
        );
    }

    #[test]
    fn lambda_is_marginal_value_of_capacity((w, c, a, upper, theta) in problem_data(6)) {
        // d(objective)/dθ = λ at the optimum: check by finite difference.
        let q = Quad { w: w.clone(), c: c.clone() };
        let build = |th: f64| BoxLinearProblem::new(
            Vector::from(upper.as_slice()),
            Vector::from(a.as_slice()),
            th,
        ).unwrap();
        let h = theta * 1e-4;
        let lo = Solver::default().maximize(&q, &build(theta - h)).unwrap();
        let mid = Solver::default().maximize(&q, &build(theta)).unwrap();
        let hi = Solver::default().maximize(&q, &build(theta + h)).unwrap();
        prop_assume!(lo.kkt_verified && mid.kkt_verified && hi.kkt_verified);
        let fd = (hi.value - lo.value) / (2.0 * h);
        // λ and the finite difference agree to a few percent of scale (the
        // active set can shift within the bracket, so keep this loose).
        prop_assert!(
            (fd - mid.lambda).abs() <= 0.05 * (1.0 + mid.lambda.abs()),
            "finite-difference {fd} vs lambda {}",
            mid.lambda
        );
    }
}
