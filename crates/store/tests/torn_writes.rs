//! Crash-injection at every byte offset of a WAL segment.
//!
//! A crash mid-append can leave the active segment truncated at *any*
//! byte. For each possible cut point this test rebuilds the state
//! directory, truncates the segment there, reopens the store, and checks
//! that recovery returns exactly the longest valid record prefix — and
//! that the repaired store accepts new appends whose sequence numbers
//! continue from the surviving prefix.

use std::fs;
use std::path::PathBuf;

use nws_obs::Recorder;
use nws_store::{frame, Store, StoreOptions};

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nws-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_truncation_offset_recovers_the_valid_prefix() {
    let payloads = [
        r#"{"cmd":"snapshot"}"#,
        r#"{"cmd":"set_theta","theta":90000}"#,
        r#"{"cmd":"update_demand","name":"JANET-NL","size":10800000}"#,
        r#"{"cmd":"fail_link","a":"FR","b":"LU"}"#,
        r#"{"cmd":"rollback"}"#,
    ];
    let master = tdir("master");
    let segment_name;
    {
        let (mut store, _) =
            Store::open(&master, StoreOptions::default(), &Recorder::disabled()).unwrap();
        for p in &payloads {
            store.append(p).unwrap();
        }
        segment_name = fs::read_dir(&master)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .find(|n| n.starts_with("wal-"))
            .unwrap();
    }
    let full = fs::read(master.join(&segment_name)).unwrap();

    // Record boundaries: prefix byte lengths after 0, 1, 2, ... records.
    let mut boundaries = vec![0usize];
    for (i, p) in payloads.iter().enumerate() {
        let prev = *boundaries.last().unwrap();
        boundaries.push(prev + frame::encode_record(i as u64 + 1, p).len());
    }
    assert_eq!(*boundaries.last().unwrap(), full.len());

    let work = tdir("work");
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(&work);
        fs::create_dir_all(&work).unwrap();
        fs::write(work.join(&segment_name), &full[..cut]).unwrap();

        let (mut store, recovery) =
            Store::open(&work, StoreOptions::default(), &Recorder::disabled()).unwrap();
        let survivors = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        assert_eq!(recovery.records.len(), survivors, "cut at byte {cut}");
        for (got, want) in recovery.records.iter().zip(&payloads) {
            assert_eq!(got.1, *want, "cut at byte {cut}");
        }
        let expected_loss = (cut - boundaries[survivors]) as u64;
        assert_eq!(recovery.truncated_bytes, expected_loss, "cut at byte {cut}");

        // The repaired log stays usable: the next append continues the
        // sequence right after the surviving prefix...
        let seq = store.append(r#"{"cmd":"ping"}"#).unwrap();
        assert_eq!(seq, survivors as u64 + 1, "cut at byte {cut}");
        drop(store);
        // ...and a second recovery sees a clean log including it.
        let (_store, again) =
            Store::open(&work, StoreOptions::default(), &Recorder::disabled()).unwrap();
        assert_eq!(again.truncated_bytes, 0, "cut at byte {cut}");
        assert_eq!(again.records.len(), survivors + 1, "cut at byte {cut}");
    }

    fs::remove_dir_all(&master).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn snapshot_survives_wal_tail_loss() {
    // Crash after a snapshot: however much of the post-snapshot WAL is
    // torn off, recovery still starts from the snapshot.
    let dir = tdir("snap");
    let (mut store, _) = Store::open(&dir, StoreOptions::default(), &Recorder::disabled()).unwrap();
    store.append("a").unwrap();
    store.snapshot("STATE@1").unwrap();
    store.append("b").unwrap();
    drop(store);

    let segment = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
        .unwrap();
    let full = fs::read(&segment).unwrap();
    for cut in 0..full.len() {
        fs::write(&segment, &full[..cut]).unwrap();
        let (store, recovery) =
            Store::open(&dir, StoreOptions::default(), &Recorder::disabled()).unwrap();
        assert_eq!(
            recovery.snapshot,
            Some((1, "STATE@1".into())),
            "cut at byte {cut}"
        );
        assert!(recovery.records.len() <= 1, "cut at byte {cut}");
        drop(store);
    }
    fs::remove_dir_all(&dir).unwrap();
}
