//! The store proper: segment files, snapshot files, rotation, recovery.

use std::path::{Path, PathBuf};
use std::time::Instant;

use nws_obs::Recorder;

use crate::frame;
use crate::io::{Io, IoFile, RealIo};
use crate::lock::DirLock;
use crate::{FsyncPolicy, StoreError};

/// Tuning knobs for [`Store::open`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// When appends reach stable storage (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
        }
    }
}

/// What [`Store::open`] recovered from disk, for the caller to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Newest valid snapshot, as `(covered_seq, payload)`.
    pub snapshot: Option<(u64, String)>,
    /// WAL records after the snapshot, `(seq, payload)` in order.
    pub records: Vec<(u64, String)>,
    /// Bytes of torn/corrupt log discarded during recovery (0 on a clean
    /// open — a non-zero value is the expected artifact of a crash
    /// mid-append, not an error).
    pub truncated_bytes: u64,
}

/// Lifetime statistics of one open store, surfaced by the daemon's
/// `metrics` command as the `wal_stats` section.
#[derive(Debug, Clone, PartialEq)]
pub struct WalStats {
    /// Fsync policy label (`always` / `every-N` / `never`).
    pub policy: String,
    /// Records appended by this process.
    pub appends: u64,
    /// Framed bytes appended by this process.
    pub appended_bytes: u64,
    /// Explicit `fdatasync` calls issued for appends.
    pub fsyncs: u64,
    /// Snapshots written by this process.
    pub snapshots: u64,
    /// Highest sequence number on disk (0 = empty store).
    pub last_seq: u64,
    /// Bytes discarded by crash recovery when this store was opened.
    pub truncated_bytes: u64,
}

/// An open, locked state directory: one active WAL segment plus the
/// snapshot machinery. See the crate docs for the on-disk contract.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    _lock: DirLock,
    io: Box<dyn Io>,
    file: Box<dyn IoFile>,
    segment_path: PathBuf,
    policy: FsyncPolicy,
    recorder: Recorder,
    /// Sequence number the next append will carry.
    next_seq: u64,
    /// Appends since the last explicit fsync.
    unsynced: u64,
    appends: u64,
    appended_bytes: u64,
    fsyncs: u64,
    snapshots: u64,
    truncated_bytes: u64,
}

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}.json")
}

/// `wal-<seq>.log` / `snap-<seq>.json` → the embedded sequence number.
fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists `(seq, path)` pairs for every file in `dir` matching
/// `<prefix><20 digits><suffix>`, sorted by sequence number.
fn list_numbered(
    io: &dyn Io,
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let names = io
        .read_dir_names(dir)
        .map_err(|e| StoreError::io(format!("read state directory {}", dir.display()), e))?;
    for name in names {
        if let Some(seq) = parse_name(&name, prefix, suffix) {
            out.push((seq, dir.join(name)));
        }
    }
    out.sort();
    Ok(out)
}

impl Store {
    /// Opens (creating if needed) the state directory, acquires its lock,
    /// and runs crash recovery: load the newest valid snapshot, collect
    /// the WAL suffix after it, truncate the log at the first torn or
    /// corrupt record, and drop any segments past the truncation point.
    ///
    /// # Errors
    /// [`StoreError::Locked`] when another live daemon owns the
    /// directory; [`StoreError::Io`] on filesystem failures. Torn or
    /// corrupt log tails are *not* errors — they are repaired and
    /// reported via [`Recovery::truncated_bytes`].
    pub fn open(
        dir: &Path,
        options: StoreOptions,
        recorder: &Recorder,
    ) -> Result<(Store, Recovery), StoreError> {
        Store::open_with_io(dir, options, recorder, Box::new(RealIo))
    }

    /// [`Store::open`] over an explicit [`Io`] implementation — the
    /// injection point for the fault harness (see [`crate::fault`]).
    /// Production callers use [`Store::open`], which passes
    /// [`crate::io::RealIo`].
    ///
    /// # Errors
    /// As for [`Store::open`].
    pub fn open_with_io(
        dir: &Path,
        options: StoreOptions,
        recorder: &Recorder,
        io: Box<dyn Io>,
    ) -> Result<(Store, Recovery), StoreError> {
        io.create_dir_all(dir)
            .map_err(|e| StoreError::io(format!("create state directory {}", dir.display()), e))?;
        let lock = DirLock::acquire(dir)?;

        // Newest snapshot whose single framed record verifies.
        let mut snapshot = None;
        for (seq, path) in list_numbered(&*io, dir, "snap-", ".json")?
            .into_iter()
            .rev()
        {
            let bytes = io
                .read(&path)
                .map_err(|e| StoreError::io(format!("read snapshot {}", path.display()), e))?;
            let scan = frame::scan(&bytes);
            if scan.clean() && scan.records.len() == 1 && scan.records[0].seq == seq {
                snapshot = Some((seq, scan.records[0].payload.clone()));
                break;
            }
        }
        let snap_seq = snapshot.as_ref().map_or(0, |s| s.0);

        // Walk the segments in order, keeping records past the snapshot.
        // Records at or before `snap_seq` are covered by the snapshot and
        // skipped (they only exist when a crash interrupted compaction).
        let segments = list_numbered(&*io, dir, "wal-", ".log")?;
        let mut records: Vec<(u64, String)> = Vec::new();
        let mut last_seq = snap_seq;
        let mut truncated_bytes = 0u64;
        let mut active: Option<(PathBuf, u64)> = None; // (path, keep_len)
        for (i, (_first, path)) in segments.iter().enumerate() {
            let bytes = io
                .read(path)
                .map_err(|e| StoreError::io(format!("read segment {}", path.display()), e))?;
            let scan = frame::scan(&bytes);
            // Re-derive each record's byte offset (frames re-encode
            // exactly) so an ordering violation can truncate mid-file too.
            let mut offset = 0usize;
            let mut regression = None;
            for rec in &scan.records {
                if rec.seq > snap_seq {
                    if rec.seq <= last_seq {
                        regression = Some(offset);
                        break;
                    }
                    last_seq = rec.seq;
                    records.push((rec.seq, rec.payload.clone()));
                }
                offset += frame::encode_record(rec.seq, &rec.payload).len();
            }
            let keep_len = regression.unwrap_or(scan.valid_len);
            let damaged = regression.is_some() || !scan.clean();
            if damaged {
                truncated_bytes += (bytes.len() - keep_len) as u64;
                for (_, later) in &segments[i + 1..] {
                    truncated_bytes += io.file_len(later).unwrap_or(0);
                    io.remove_file(later).map_err(|e| {
                        StoreError::io(format!("drop segment {}", later.display()), e)
                    })?;
                }
                active = Some((path.clone(), keep_len as u64));
                break;
            }
            active = Some((path.clone(), bytes.len() as u64));
        }

        let next_seq = last_seq + 1;
        let (segment_path, keep_len) = match active {
            Some(a) => a,
            None => (dir.join(segment_name(next_seq)), 0),
        };
        let mut file = io
            .open_rw(&segment_path)
            .map_err(|e| StoreError::io(format!("open segment {}", segment_path.display()), e))?;
        file.set_len(keep_len)
            .and_then(|()| {
                if truncated_bytes > 0 {
                    file.sync_data()?;
                }
                Ok(())
            })
            .map_err(|e| {
                StoreError::io(format!("truncate segment {}", segment_path.display()), e)
            })?;
        file.seek_end()
            .map_err(|e| StoreError::io(format!("seek segment {}", segment_path.display()), e))?;
        io.sync_dir(dir)
            .map_err(|e| StoreError::io(format!("sync state directory {}", dir.display()), e))?;

        let segment_count = list_numbered(&*io, dir, "wal-", ".log")?.len();
        recorder.gauge_set("wal_segments", segment_count as f64);

        let store = Store {
            dir: dir.to_path_buf(),
            _lock: lock,
            io,
            file,
            segment_path,
            policy: options.fsync,
            recorder: recorder.clone(),
            next_seq,
            unsynced: 0,
            appends: 0,
            appended_bytes: 0,
            fsyncs: 0,
            snapshots: 0,
            truncated_bytes,
        };
        let recovery = Recovery {
            snapshot,
            records,
            truncated_bytes,
        };
        Ok((store, recovery))
    }

    /// Appends one record and returns its sequence number.
    ///
    /// The framed line is written through to the kernel before this
    /// returns (no userspace buffering), so an acknowledged append
    /// survives the process being killed under every fsync policy; the
    /// policy only decides whether `fdatasync` runs now.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] for payloads containing a raw newline;
    /// [`StoreError::Io`] on write/sync failures.
    pub fn append(&mut self, payload: &str) -> Result<u64, StoreError> {
        if payload.contains('\n') {
            return Err(StoreError::Invalid(
                "WAL payloads must be single-line (embedded newline rejected)".into(),
            ));
        }
        let seq = self.next_seq;
        let line = frame::encode_record(seq, payload);
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| StoreError::io(format!("append to {}", self.segment_path.display()), e))?;
        self.next_seq += 1;
        self.appends += 1;
        self.appended_bytes += line.len() as u64;
        self.unsynced += 1;
        self.recorder.counter_add("wal_appends", 1);
        self.recorder.counter_add("wal_bytes", line.len() as u64);
        let sync_now = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if sync_now {
            self.file
                .sync_data()
                .map_err(|e| StoreError::io(format!("fsync {}", self.segment_path.display()), e))?;
            self.unsynced = 0;
            self.fsyncs += 1;
            self.recorder.counter_add("wal_fsyncs", 1);
        }
        Ok(seq)
    }

    /// Writes a snapshot covering every record appended so far, then
    /// rotates the WAL onto a fresh segment and compacts: all covered
    /// segments and all older snapshots are deleted. Returns the covered
    /// sequence number.
    ///
    /// The snapshot is durable regardless of the fsync policy: it is
    /// written to a temp file, synced, renamed into place, and the
    /// directory is synced — a crash at any point leaves either the old
    /// or the new snapshot intact, never a torn one.
    ///
    /// # Errors
    /// [`StoreError::Invalid`] for multi-line payloads, [`StoreError::Io`]
    /// on filesystem failures.
    pub fn snapshot(&mut self, payload: &str) -> Result<u64, StoreError> {
        if payload.contains('\n') {
            return Err(StoreError::Invalid(
                "snapshot payloads must be single-line (embedded newline rejected)".into(),
            ));
        }
        let started = self.recorder.is_enabled().then(Instant::now);
        let seq = self.next_seq - 1;
        let final_path = self.dir.join(snapshot_name(seq));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(seq)));
        let mut tmp = self
            .io
            .create_truncate(&tmp_path)
            .map_err(|e| StoreError::io(format!("create {}", tmp_path.display()), e))?;
        tmp.write_all(frame::encode_record(seq, payload).as_bytes())
            .and_then(|()| tmp.sync_all())
            .map_err(|e| StoreError::io(format!("write {}", tmp_path.display()), e))?;
        drop(tmp);
        self.io
            .rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io(format!("install {}", final_path.display()), e))?;

        // Rotate onto a fresh segment (no-op when nothing was appended
        // since the last rotation — the current segment is already empty
        // and already named for `next_seq`).
        let new_path = self.dir.join(segment_name(self.next_seq));
        if new_path != self.segment_path {
            let new_file = self
                .io
                .create_truncate(&new_path)
                .map_err(|e| StoreError::io(format!("open segment {}", new_path.display()), e))?;
            let _ = self.file.sync_data();
            self.file = new_file;
            self.segment_path = new_path;
            self.unsynced = 0;
        }

        // Compact: only the active segment and the snapshot just written
        // survive. Leftover temp files from older interrupted snapshots
        // go too.
        for (_, path) in list_numbered(&*self.io, &self.dir, "wal-", ".log")? {
            if path != self.segment_path {
                self.io
                    .remove_file(&path)
                    .map_err(|e| StoreError::io(format!("compact {}", path.display()), e))?;
            }
        }
        for (old_seq, path) in list_numbered(&*self.io, &self.dir, "snap-", ".json")? {
            if old_seq != seq {
                self.io
                    .remove_file(&path)
                    .map_err(|e| StoreError::io(format!("compact {}", path.display()), e))?;
            }
        }
        self.io.sync_dir(&self.dir).map_err(|e| {
            StoreError::io(format!("sync state directory {}", self.dir.display()), e)
        })?;

        self.snapshots += 1;
        self.recorder.gauge_set("wal_segments", 1.0);
        if let Some(t) = started {
            self.recorder
                .observe("snapshot_ms", t.elapsed().as_secs_f64() * 1e3);
        }
        Ok(seq)
    }

    /// Lifetime statistics for the `wal_stats` metrics section.
    pub fn wal_stats(&self) -> WalStats {
        WalStats {
            policy: self.policy.label(),
            appends: self.appends,
            appended_bytes: self.appended_bytes,
            fsyncs: self.fsyncs,
            snapshots: self.snapshots,
            last_seq: self.next_seq - 1,
            truncated_bytes: self.truncated_bytes,
        }
    }

    /// The state directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort final sync so `every-N` / `never` lose nothing on a
        // clean exit; the lockfile releases via `DirLock`'s own drop.
        if self.unsynced > 0 {
            let _ = self.file.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::fs::{self, OpenOptions};
    use std::io::Write;

    fn tdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nws-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (Store, Recovery) {
        Store::open(dir, StoreOptions::default(), &Recorder::disabled()).unwrap()
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tdir("replay");
        {
            let (mut store, rec) = open(&dir);
            assert_eq!(
                rec,
                Recovery {
                    snapshot: None,
                    records: vec![],
                    truncated_bytes: 0
                }
            );
            assert_eq!(store.append("alpha").unwrap(), 1);
            assert_eq!(store.append("beta").unwrap(), 2);
            assert_eq!(store.append("gamma").unwrap(), 3);
        }
        let (mut store, rec) = open(&dir);
        assert_eq!(rec.snapshot, None);
        assert_eq!(
            rec.records,
            vec![(1, "alpha".into()), (2, "beta".into()), (3, "gamma".into())]
        );
        assert_eq!(rec.truncated_bytes, 0);
        // Sequence numbering continues where the previous run stopped.
        assert_eq!(store.append("delta").unwrap(), 4);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotates_and_compacts() {
        let dir = tdir("compact");
        {
            let (mut store, _) = open(&dir);
            store.append("a").unwrap();
            store.append("b").unwrap();
            assert_eq!(store.snapshot("STATE@2").unwrap(), 2);
            store.append("c").unwrap();
            let stats = store.wal_stats();
            assert_eq!(stats.snapshots, 1);
            assert_eq!(stats.last_seq, 3);
        }
        // Exactly one snapshot, one segment, and the lock are left; the
        // pre-snapshot segment was compacted away.
        let names: Vec<String> = {
            let mut n: Vec<String> = fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            n.sort();
            n
        };
        assert_eq!(names, vec![snapshot_name(2), segment_name(3)]);
        let (_store, rec) = open(&dir);
        assert_eq!(rec.snapshot, Some((2, "STATE@2".into())));
        assert_eq!(rec.records, vec![(3, "c".into())]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_of_empty_store_covers_seq_zero() {
        let dir = tdir("empty-snap");
        {
            let (mut store, _) = open(&dir);
            assert_eq!(store.snapshot("INITIAL").unwrap(), 0);
        }
        let (_store, rec) = open(&dir);
        assert_eq!(rec.snapshot, Some((0, "INITIAL".into())));
        assert!(rec.records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tdir("torn");
        let segment = {
            let (mut store, _) = open(&dir);
            store.append("keep-1").unwrap();
            store.append("keep-2").unwrap();
            dir.join(segment_name(1))
        };
        // Simulate a crash mid-append: half a record at the tail.
        let mut f = OpenOptions::new().append(true).open(&segment).unwrap();
        f.write_all(b"3 600 deadbeef {\"cmd\":\"trunc").unwrap();
        drop(f);
        let torn = b"3 600 deadbeef {\"cmd\":\"trunc".len() as u64;
        let (store, rec) = open(&dir);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.truncated_bytes, torn);
        assert_eq!(store.wal_stats().truncated_bytes, torn);
        drop(store);
        // The repair is persistent: a second open sees a clean log.
        let (_store, rec) = open(&dir);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older_one() {
        let dir = tdir("snap-fallback");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(snapshot_name(5)), frame::encode_record(5, "OLD")).unwrap();
        let mut newer = frame::encode_record(9, "NEW").into_bytes();
        let last = newer.len() - 2;
        newer[last] ^= 0x20; // flip a payload bit → CRC mismatch
        fs::write(dir.join(snapshot_name(9)), newer).unwrap();
        let mut segment = frame::encode_record(6, "six");
        segment.push_str(&frame::encode_record(7, "seven"));
        fs::write(dir.join(segment_name(6)), segment).unwrap();
        let (_store, rec) = open(&dir);
        assert_eq!(rec.snapshot, Some((5, "OLD".into())));
        assert_eq!(rec.records, vec![(6, "six".into()), (7, "seven".into())]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_lock_blocks_second_open() {
        let dir = tdir("locked");
        let (_held, _) = open(&dir);
        match Store::open(&dir, StoreOptions::default(), &Recorder::disabled()) {
            Err(StoreError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiline_payloads_rejected() {
        let dir = tdir("newline");
        let (mut store, _) = open(&dir);
        assert!(matches!(
            store.append("two\nlines"),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            store.snapshot("two\nlines"),
            Err(StoreError::Invalid(_))
        ));
        // The rejected append consumed no sequence number.
        assert_eq!(store.append("fine").unwrap(), 1);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recorder_sees_wal_counters_and_snapshot_timing() {
        let dir = tdir("metrics");
        let recorder = Recorder::enabled();
        let (mut store, _) = Store::open(
            &dir,
            StoreOptions {
                fsync: FsyncPolicy::Always,
            },
            &recorder,
        )
        .unwrap();
        store.append("one").unwrap();
        store.append("two").unwrap();
        store.snapshot("S").unwrap();
        let snap = recorder.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
        };
        assert_eq!(counter("wal_appends"), Some(2));
        assert_eq!(counter("wal_fsyncs"), Some(2));
        let expected_bytes =
            (frame::encode_record(1, "one").len() + frame::encode_record(2, "two").len()) as u64;
        assert_eq!(counter("wal_bytes"), Some(expected_bytes));
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "snapshot_ms")
            .expect("snapshot_ms histogram");
        assert_eq!(hist.count, 1);
        let gauge = snap
            .gauges
            .iter()
            .find(|g| g.name == "wal_segments")
            .unwrap();
        assert_eq!(gauge.value, 1.0);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_appends_leave_a_recoverable_prefix() {
        // Under every seeded fault schedule: appends that error are fine
        // (the daemon degrades), and whatever landed on disk must recover
        // as a strict prefix of the acknowledged appends — never garbage,
        // never reordered, never an unacknowledged extra.
        for seed in 0..40u64 {
            let dir = tdir(&format!("fault-{seed}"));
            {
                let (mut store, _) = Store::open_with_io(
                    &dir,
                    StoreOptions::default(),
                    &Recorder::disabled(),
                    Box::new(FaultPlan::new(seed).io()),
                )
                .unwrap_or_else(|_| {
                    // Open itself may be failed by the schedule; retry on
                    // the real filesystem like the daemon's cold restart.
                    Store::open(&dir, StoreOptions::default(), &Recorder::disabled()).unwrap()
                });
                for i in 0..30 {
                    // Errors are expected mid-storm; the daemon's answer
                    // to them (degraded persistence) lives a layer up.
                    let _ = store.append(&format!("event-{i}"));
                }
            }
            let (store1, rec) = open(&dir);
            drop(store1);
            // Every recovered record must be one the writer actually
            // attempted, in attempt order with no duplicates or garbage.
            // (It need not be `acked` exactly: a failed write consumes no
            // sequence number, and a record whose *sync* failed can still
            // be durable without having been acknowledged.)
            let mut prev: Option<usize> = None;
            for (_, payload) in &rec.records {
                let idx: usize = payload
                    .strip_prefix("event-")
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| panic!("seed {seed}: garbage record {payload:?}"));
                assert!(idx < 30, "seed {seed}: unknown attempt {payload:?}");
                assert!(
                    prev.is_none_or(|p| idx > p),
                    "seed {seed}: out-of-order record {payload:?}"
                );
                prev = Some(idx);
            }
            assert!(
                rec.records.len() <= 30,
                "seed {seed}: more records ({}) than attempts",
                rec.records.len()
            );
            // The repair is persistent: a second open finds nothing torn.
            let (_s2, rec2) = open(&dir);
            assert_eq!(rec2.truncated_bytes, 0, "seed {seed}");
            assert_eq!(rec2.records, rec.records, "seed {seed}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn fault_free_schedule_behaves_like_real_io() {
        let dir = tdir("fault-quiet");
        let plan = FaultPlan {
            seed: 1,
            rate: 0,
            max_faults: 0,
        };
        {
            let (mut store, _) = Store::open_with_io(
                &dir,
                StoreOptions::default(),
                &Recorder::disabled(),
                Box::new(plan.io()),
            )
            .unwrap();
            store.append("a").unwrap();
            store.append("b").unwrap();
            store.snapshot("S@2").unwrap();
            store.append("c").unwrap();
        }
        let (_store, rec) = open(&dir);
        assert_eq!(rec.snapshot, Some((2, "S@2".into())));
        assert_eq!(rec.records, vec![(3, "c".into())]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_amortizes_fsyncs() {
        let dir = tdir("every-n");
        let (mut store, _) = Store::open(
            &dir,
            StoreOptions {
                fsync: FsyncPolicy::EveryN(3),
            },
            &Recorder::disabled(),
        )
        .unwrap();
        for i in 0..7 {
            store.append(&format!("r{i}")).unwrap();
        }
        assert_eq!(store.wal_stats().fsyncs, 2); // after records 3 and 6
        drop(store);
        let dir2 = tdir("never");
        let (mut store, _) = Store::open(
            &dir2,
            StoreOptions {
                fsync: FsyncPolicy::Never,
            },
            &Recorder::disabled(),
        )
        .unwrap();
        for i in 0..7 {
            store.append(&format!("r{i}")).unwrap();
        }
        assert_eq!(store.wal_stats().fsyncs, 0);
        drop(store);
        // `never` still survives reopen: every append hit the kernel.
        let (_s, rec) = open(&dir2);
        assert_eq!(rec.records.len(), 7);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }
}
