//! PID-carrying lockfiles with liveness-based stale detection.
//!
//! The daemon must never let two processes interleave appends into one
//! state directory. A `LOCK` file holding the owner's PID provides mutual
//! exclusion; a lock whose PID is no longer alive (the previous daemon
//! crashed) is *stale* and silently reclaimed — crash recovery must not
//! require manual lockfile cleanup.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::StoreError;

/// File name of the lock inside a state directory.
pub const LOCK_FILE: &str = "LOCK";

/// A held directory lock; releases (deletes the lockfile) on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
    pid: u32,
}

/// Whether a process with `pid` is currently alive.
///
/// Uses `/proc/<pid>` existence, which is the portable-enough answer on
/// the Linux targets this workspace supports. The calling process itself
/// always counts as alive.
pub fn pid_alive(pid: u32) -> bool {
    pid == std::process::id() || Path::new(&format!("/proc/{pid}")).exists()
}

impl DirLock {
    /// Acquires the lock for `dir`, reclaiming a stale one.
    ///
    /// Creation uses `O_EXCL`, and a stale lock is reclaimed by *renaming*
    /// it aside before retrying — the rename is the atomic arbiter, so two
    /// daemons racing to reclaim the same dead lock cannot both win (only
    /// one rename of the same source succeeds). After creating its own
    /// lockfile the winner re-reads it and verifies its own PID, guarding
    /// against a third racer that overwrote the file in the window.
    ///
    /// # Errors
    /// [`StoreError::Locked`] when a live process (including this one,
    /// via an earlier store instance) holds the lock; [`StoreError::Io`]
    /// on filesystem failures or when the race cannot be settled.
    pub fn acquire(dir: &Path) -> Result<DirLock, StoreError> {
        let path = dir.join(LOCK_FILE);
        let pid = std::process::id();
        // Bounded: each retry means another process made visible progress
        // (created or reclaimed a lock); 16 rounds of that without a
        // settled outcome is churn worth surfacing, not spinning through.
        for _ in 0..16 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    writeln!(file, "{pid}")
                        .and_then(|()| file.sync_all())
                        .map_err(|e| {
                            StoreError::io(format!("write lockfile {}", path.display()), e)
                        })?;
                    // Verify ownership: another racer may have treated our
                    // half-written file as stale and replaced it.
                    let content = fs::read_to_string(&path).unwrap_or_default();
                    if content.trim().parse::<u32>() == Ok(pid) {
                        return Ok(DirLock { path, pid });
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {}
                Err(e) => {
                    return Err(StoreError::io(
                        format!("create lockfile {}", path.display()),
                        e,
                    ));
                }
            }
            // Lock exists. Live owner → refused; dead or garbage → stale.
            let existing = match fs::read_to_string(&path) {
                Ok(text) => text,
                // Deleted between create_new and read: owner released; retry.
                Err(_) => continue,
            };
            if let Ok(owner) = existing.trim().parse::<u32>() {
                if pid_alive(owner) {
                    return Err(StoreError::Locked {
                        pid: owner,
                        path: path.display().to_string(),
                    });
                }
            }
            // Reclaim by renaming the stale file aside: exactly one racer's
            // rename succeeds, and that racer retries create_new above.
            let grave = dir.join(format!("{LOCK_FILE}.stale.{pid}"));
            if fs::rename(&path, &grave).is_ok() {
                let _ = fs::remove_file(&grave);
            }
        }
        Err(StoreError::io(
            format!("acquire lockfile {}", path.display()),
            std::io::Error::other("lockfile kept changing hands; giving up after 16 attempts"),
        ))
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Only remove a lock we still own: if the content changed, a later
        // process reclaimed it (we must have been declared dead — do not
        // steal its lock back).
        if let Ok(content) = fs::read_to_string(&self.path) {
            if content.trim().parse::<u32>() == Ok(self.pid) {
                let _ = fs::remove_file(&self.path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nws-store-lock-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_writes_own_pid_and_release_removes() {
        let dir = temp_dir("basic");
        let lock = DirLock::acquire(&dir).unwrap();
        let content = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(content.trim().parse::<u32>().unwrap(), std::process::id());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_lock_rejected_even_from_same_process() {
        let dir = temp_dir("live");
        let _held = DirLock::acquire(&dir).unwrap();
        match DirLock::acquire(&dir) {
            Err(StoreError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_reclaimed() {
        let dir = temp_dir("stale");
        // No real process gets the PID ceiling; this lock is dead on arrival.
        fs::write(dir.join(LOCK_FILE), "4194303999\n").unwrap();
        let lock = DirLock::acquire(&dir).unwrap();
        let content = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(content.trim().parse::<u32>().unwrap(), std::process::id());
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_lock_content_treated_as_stale() {
        let dir = temp_dir("garbage");
        fs::write(dir.join(LOCK_FILE), "not-a-pid\n").unwrap();
        assert!(DirLock::acquire(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn racing_reclaimers_of_one_stale_lock_produce_one_winner() {
        // Seed a dead lock, then race many threads to reclaim it. The
        // rename-aside arbiter must let exactly one through; the rest see
        // the winner's live PID and report Locked.
        let dir = temp_dir("race");
        fs::write(dir.join(LOCK_FILE), "4194303999\n").unwrap();
        let results: Vec<Result<DirLock, StoreError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| DirLock::acquire(&dir))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let winners = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(winners, 1, "exactly one racer may hold the lock");
        for r in &results {
            if let Err(e) = r {
                assert!(
                    matches!(e, StoreError::Locked { .. }),
                    "losers must see Locked, got {e:?}"
                );
            }
        }
        // The winner's lockfile carries this process's PID and no grave
        // files linger from the rename-aside step.
        let content = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(content.trim().parse::<u32>().unwrap(), std::process::id());
        let stragglers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != LOCK_FILE)
            .collect();
        assert!(stragglers.is_empty(), "leftover files: {stragglers:?}");
        drop(results);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reclaim_after_owner_death_is_clean() {
        // Repeated stale→reclaim cycles never accumulate grave files.
        let dir = temp_dir("cycles");
        for _ in 0..5 {
            fs::write(dir.join(LOCK_FILE), "4194303999\n").unwrap();
            let lock = DirLock::acquire(&dir).unwrap();
            drop(lock);
            assert!(!dir.join(LOCK_FILE).exists());
            assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_leaves_a_reclaimed_lock_alone() {
        let dir = temp_dir("reclaimed");
        let lock = DirLock::acquire(&dir).unwrap();
        // Simulate another process having reclaimed the lock.
        fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        drop(lock);
        assert!(dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
