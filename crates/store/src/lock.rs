//! PID-carrying lockfiles with liveness-based stale detection.
//!
//! The daemon must never let two processes interleave appends into one
//! state directory. A `LOCK` file holding the owner's PID provides mutual
//! exclusion; a lock whose PID is no longer alive (the previous daemon
//! crashed) is *stale* and silently reclaimed — crash recovery must not
//! require manual lockfile cleanup.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::StoreError;

/// File name of the lock inside a state directory.
pub const LOCK_FILE: &str = "LOCK";

/// A held directory lock; releases (deletes the lockfile) on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
    pid: u32,
}

/// Whether a process with `pid` is currently alive.
///
/// Uses `/proc/<pid>` existence, which is the portable-enough answer on
/// the Linux targets this workspace supports. The calling process itself
/// always counts as alive.
pub fn pid_alive(pid: u32) -> bool {
    pid == std::process::id() || Path::new(&format!("/proc/{pid}")).exists()
}

impl DirLock {
    /// Acquires the lock for `dir`, reclaiming a stale one.
    ///
    /// # Errors
    /// [`StoreError::Locked`] when a live process (including this one,
    /// via an earlier store instance) holds the lock; [`StoreError::Io`]
    /// on filesystem failures.
    pub fn acquire(dir: &Path) -> Result<DirLock, StoreError> {
        let path = dir.join(LOCK_FILE);
        if let Ok(existing) = fs::read_to_string(&path) {
            match existing.trim().parse::<u32>() {
                Ok(pid) if pid_alive(pid) => {
                    return Err(StoreError::Locked {
                        pid,
                        path: path.display().to_string(),
                    });
                }
                // Dead owner or unparseable content: stale, reclaim.
                _ => {}
            }
        }
        let pid = std::process::id();
        let mut file = fs::File::create(&path)
            .map_err(|e| StoreError::io(format!("create lockfile {}", path.display()), e))?;
        write!(file, "{pid}\n")
            .and_then(|()| file.sync_all())
            .map_err(|e| StoreError::io(format!("write lockfile {}", path.display()), e))?;
        Ok(DirLock { path, pid })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Only remove a lock we still own: if the content changed, a later
        // process reclaimed it (we must have been declared dead — do not
        // steal its lock back).
        if let Ok(content) = fs::read_to_string(&self.path) {
            if content.trim().parse::<u32>() == Ok(self.pid) {
                let _ = fs::remove_file(&self.path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nws-store-lock-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_writes_own_pid_and_release_removes() {
        let dir = temp_dir("basic");
        let lock = DirLock::acquire(&dir).unwrap();
        let content = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(content.trim().parse::<u32>().unwrap(), std::process::id());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_lock_rejected_even_from_same_process() {
        let dir = temp_dir("live");
        let _held = DirLock::acquire(&dir).unwrap();
        match DirLock::acquire(&dir) {
            Err(StoreError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lock_reclaimed() {
        let dir = temp_dir("stale");
        // No real process gets the PID ceiling; this lock is dead on arrival.
        fs::write(dir.join(LOCK_FILE), "4194303999\n").unwrap();
        let lock = DirLock::acquire(&dir).unwrap();
        let content = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(content.trim().parse::<u32>().unwrap(), std::process::id());
        drop(lock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_lock_content_treated_as_stale() {
        let dir = temp_dir("garbage");
        fs::write(dir.join(LOCK_FILE), "not-a-pid\n").unwrap();
        assert!(DirLock::acquire(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_leaves_a_reclaimed_lock_alone() {
        let dir = temp_dir("reclaimed");
        let lock = DirLock::acquire(&dir).unwrap();
        // Simulate another process having reclaimed the lock.
        fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        drop(lock);
        assert!(dir.join(LOCK_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
