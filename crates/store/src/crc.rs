//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Hand-rolled because the workspace vendors no external crates; the
//! 256-entry table is built at compile time from the reflected polynomial
//! `0xEDB88320`.

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"{\"cmd\":\"set_theta\",\"theta\":90000}");
        let mut corrupted = b"{\"cmd\":\"set_theta\",\"theta\":90000}".to_vec();
        corrupted[10] ^= 0x01;
        assert_ne!(base, crc32(&corrupted));
    }
}
