//! WAL record framing: length-prefixed, CRC32-guarded text lines.
//!
//! One record per line:
//!
//! ```text
//! <seq> <len> <crc32> <payload>\n
//! ```
//!
//! where `seq` is the record's decimal sequence number, `len` the payload
//! byte length (decimal), `crc32` the [`crate::crc::crc32`] of the payload
//! bytes as exactly 8 lowercase hex digits, and `payload` a single-line
//! UTF-8 string (`len` bytes, no raw newline — the service layer feeds it
//! compact JSON, whose encoder escapes control characters).
//!
//! The redundancy is deliberate: the length prefix finds the record
//! boundary without trusting payload content, the CRC detects bit rot and
//! half-written tails, and the trailing newline keeps the file greppable
//! and guards against a record written over a torn tail. A scan
//! ([`scan`]) stops at the *first* violation and reports the byte offset
//! of the last fully valid record — the caller truncates there, which is
//! the paper-prescribed crash-recovery behaviour for an append-only log.

use crate::crc::crc32;

/// Encodes one record line (including the trailing newline).
///
/// # Panics
/// Debug-asserts that `payload` contains no raw newline; release builds
/// rely on the caller-facing validation in [`crate::Store::append`].
pub fn encode_record(seq: u64, payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "payloads are single-line");
    format!(
        "{seq} {len} {crc:08x} {payload}\n",
        len = payload.len(),
        crc = crc32(payload.as_bytes())
    )
}

/// One decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sequence number from the frame header.
    pub seq: u64,
    /// The payload text.
    pub payload: String,
}

/// Result of scanning a segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// Fully valid records, in file order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (truncation point on corruption).
    pub valid_len: usize,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<String>,
}

impl Scan {
    /// Whether the whole input was valid frames.
    pub fn clean(&self) -> bool {
        self.corruption.is_none()
    }
}

fn parse_u64_field(bytes: &[u8], at: usize) -> Option<(u64, usize)> {
    let mut end = at;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    if end == at || end - at > 20 {
        return None;
    }
    let text = std::str::from_utf8(&bytes[at..end]).ok()?;
    Some((text.parse().ok()?, end))
}

/// Scans `bytes` as a sequence of framed records, stopping at the first
/// torn, corrupt, or out-of-order record.
///
/// Sequence numbers must be strictly increasing within the scan; a
/// regression means a record was written over a torn tail and everything
/// from there on is untrustworthy.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut prev_seq: Option<u64> = None;
    let corruption = loop {
        if pos == bytes.len() {
            break None;
        }
        let start = pos;
        let Some((seq, after_seq)) = parse_u64_field(bytes, start) else {
            break Some(format!("bad sequence field at byte {start}"));
        };
        if bytes.get(after_seq) != Some(&b' ') {
            break Some(format!("truncated header at byte {start}"));
        }
        let Some((len, after_len)) = parse_u64_field(bytes, after_seq + 1) else {
            break Some(format!("bad length field at byte {start}"));
        };
        if bytes.get(after_len) != Some(&b' ') {
            break Some(format!("truncated header at byte {start}"));
        }
        let crc_start = after_len + 1;
        let Some(crc_hex) = bytes.get(crc_start..crc_start + 8) else {
            break Some(format!("truncated checksum at byte {start}"));
        };
        let Ok(crc_text) = std::str::from_utf8(crc_hex) else {
            break Some(format!("bad checksum field at byte {start}"));
        };
        let Ok(expected_crc) = u32::from_str_radix(crc_text, 16) else {
            break Some(format!("bad checksum field at byte {start}"));
        };
        if bytes.get(crc_start + 8) != Some(&b' ') {
            break Some(format!("truncated header at byte {start}"));
        }
        let payload_start = crc_start + 9;
        let Ok(len_usize) = usize::try_from(len) else {
            break Some(format!("oversized record at byte {start}"));
        };
        let Some(payload) = bytes.get(payload_start..payload_start + len_usize) else {
            break Some(format!("torn payload at byte {start}"));
        };
        if bytes.get(payload_start + len_usize) != Some(&b'\n') {
            break Some(format!("missing record terminator at byte {start}"));
        }
        if crc32(payload) != expected_crc {
            break Some(format!("checksum mismatch at byte {start}"));
        }
        let Ok(payload) = std::str::from_utf8(payload) else {
            break Some(format!("non-UTF-8 payload at byte {start}"));
        };
        if prev_seq.is_some_and(|p| seq <= p) {
            break Some(format!("sequence regression at byte {start}"));
        }
        prev_seq = Some(seq);
        records.push(Record {
            seq,
            payload: payload.to_string(),
        });
        pos = payload_start + len_usize + 1;
    };
    Scan {
        records,
        valid_len: pos,
        corruption,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (String, Vec<Record>) {
        let records = vec![
            Record {
                seq: 1,
                payload: r#"{"cmd":"snapshot"}"#.into(),
            },
            Record {
                seq: 2,
                payload: r#"{"cmd":"set_theta","theta":90000}"#.into(),
            },
            Record {
                seq: 3,
                payload: "unicode café ✓".into(),
            },
        ];
        let text: String = records
            .iter()
            .map(|r| encode_record(r.seq, &r.payload))
            .collect();
        (text, records)
    }

    #[test]
    fn roundtrip_clean_log() {
        let (text, records) = sample();
        let scan = scan(text.as_bytes());
        assert!(scan.clean());
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, text.len());
    }

    #[test]
    fn empty_log_is_clean() {
        let s = scan(b"");
        assert!(s.clean());
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
    }

    #[test]
    fn truncation_at_every_byte_keeps_a_valid_prefix() {
        let (text, records) = sample();
        let bytes = text.as_bytes();
        // Record boundaries (cumulative line lengths).
        let mut boundaries = vec![0usize];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + encode_record(r.seq, &r.payload).len());
        }
        for cut in 0..=bytes.len() {
            let s = scan(&bytes[..cut]);
            // The scan keeps exactly the records whose full frame fits.
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(s.records.len(), expect, "cut at {cut}");
            assert_eq!(s.valid_len, boundaries[expect], "cut at {cut}");
            assert_eq!(s.clean(), boundaries.contains(&cut), "cut at {cut}");
            for (r, want) in s.records.iter().zip(&records) {
                assert_eq!(r, want);
            }
        }
    }

    #[test]
    fn bit_flip_detected_and_prefix_kept() {
        let (text, _) = sample();
        let mut bytes = text.into_bytes();
        // Flip one payload byte of the second record.
        let second_start = encode_record(1, r#"{"cmd":"snapshot"}"#).len();
        bytes[second_start + 20] ^= 0x40;
        let s = scan(&bytes);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len, second_start);
        assert!(s.corruption.unwrap().contains("checksum mismatch"));
    }

    #[test]
    fn sequence_regression_rejected() {
        let mut text = encode_record(5, "a");
        text.push_str(&encode_record(5, "b"));
        let s = scan(text.as_bytes());
        assert_eq!(s.records.len(), 1);
        assert!(s.corruption.unwrap().contains("sequence regression"));
    }

    #[test]
    fn garbage_header_rejected() {
        let s = scan(b"not a frame\n");
        assert_eq!(s.records.len(), 0);
        assert_eq!(s.valid_len, 0);
        assert!(!s.clean());
    }
}
