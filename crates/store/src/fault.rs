//! Deterministic fault injection over the [`crate::io::Io`] layer.
//!
//! A [`FaultPlan`] is a *seeded, step-indexed* schedule: every mutating
//! filesystem operation the store performs gets a global index, and a
//! splitmix64 hash of `(seed, index)` decides whether that operation fails
//! and how. Two runs with the same seed and the same operation sequence
//! fail identically — the property the chaos harness builds on. Faults are
//! bounded by [`FaultPlan::max_faults`], so every schedule eventually goes
//! quiet and the system under test must converge back to fault-free
//! behaviour.
//!
//! Read-path operations are never failed: recovery must stay able to
//! observe whatever the faulty writes left behind, exactly as a real disk
//! that stopped erroring would be re-read.

use std::fmt::Debug;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::io::{Io, IoFile, RealIo};

/// What an injected fault does to the operation it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails outright; no bytes reach the file.
    FailWrite,
    /// Only a prefix of the buffer is written before the error — the torn
    /// tail crash recovery must truncate.
    ShortWrite,
    /// The operation fails with an ENOSPC-style "no space left" error.
    Enospc,
    /// An `fsync`/`fdatasync` fails (data may or may not be durable).
    FsyncError,
}

/// A seeded, step-indexed schedule of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Schedule seed; same seed + same operation sequence = same faults.
    pub seed: u64,
    /// Injection probability per mutating operation, in 1/256ths
    /// (64 ≈ 25 %). Clamped to 255.
    pub rate: u8,
    /// Total faults the schedule may inject before going permanently
    /// quiet. Bounding this is what lets the chaos harness assert
    /// convergence *after* the fault storm.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan with the default storm shape: ~25 % of mutating operations
    /// fail until 8 faults have fired.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rate: 64,
            max_faults: 8,
        }
    }

    /// Wraps the real filesystem in this fault schedule.
    pub fn io(self) -> FaultyIo {
        FaultyIo {
            inner: RealIo,
            state: Arc::new(FaultState {
                plan: self,
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Shared schedule position: one counter across the [`FaultyIo`] and every
/// file it has opened, so the operation index is global and deterministic.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl FaultState {
    /// Consumes one mutating-operation slot; `Some(kind)` when the
    /// schedule says this operation fails.
    fn next_fault(&self) -> Option<FaultKind> {
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.injected.load(Ordering::Relaxed) >= self.plan.max_faults {
            return None;
        }
        let h = splitmix64(self.plan.seed ^ idx.wrapping_mul(0xa076_1d64_78bd_642f));
        if (h & 0xff) as u8 >= self.plan.rate {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(match (h >> 8) % 3 {
            0 => FaultKind::FailWrite,
            1 => FaultKind::ShortWrite,
            _ => FaultKind::Enospc,
        })
    }
}

fn injected_err(kind: FaultKind, what: &str) -> io::Error {
    match kind {
        FaultKind::Enospc => {
            io::Error::other(format!("injected fault: no space left on device ({what})"))
        }
        FaultKind::FsyncError => io::Error::other(format!("injected fault: fsync failed ({what})")),
        _ => io::Error::other(format!("injected fault: {what}")),
    }
}

/// [`RealIo`] behind a [`FaultPlan`]: mutating operations consult the
/// schedule; reads pass through untouched.
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    state: Arc<FaultState>,
}

impl FaultyIo {
    /// Faults injected so far (for harness assertions).
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }
}

/// One store file under the shared fault schedule.
#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn IoFile>,
    state: Arc<FaultState>,
}

impl IoFile for FaultyFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.write_all(buf),
            Some(FaultKind::ShortWrite) => {
                // Land the torn prefix for real — recovery must later find
                // and truncate it, exactly like a crash mid-append.
                let keep = buf.len() / 2;
                self.inner.write_all(&buf[..keep])?;
                Err(injected_err(FaultKind::ShortWrite, "short write"))
            }
            Some(kind) => Err(injected_err(kind, "write")),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.sync_data(),
            Some(_) => Err(injected_err(FaultKind::FsyncError, "fdatasync")),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.sync_all(),
            Some(_) => Err(injected_err(FaultKind::FsyncError, "fsync")),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.set_len(len),
            Some(kind) => Err(injected_err(kind, "set_len")),
        }
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        // Positioning reads nothing and writes nothing; never failed.
        self.inner.seek_end()
    }
}

impl Io for FaultyIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.create_dir_all(dir),
            Some(kind) => Err(injected_err(kind, "create_dir_all")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        let inner = match self.state.next_fault() {
            None => self.inner.open_rw(path)?,
            Some(kind) => return Err(injected_err(kind, "open")),
        };
        Ok(Box::new(FaultyFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        let inner = match self.state.next_fault() {
            None => self.inner.create_truncate(path)?,
            Some(kind) => return Err(injected_err(kind, "create")),
        };
        Ok(Box::new(FaultyFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.rename(from, to),
            Some(kind) => Err(injected_err(kind, "rename")),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.remove_file(path),
            Some(kind) => Err(injected_err(kind, "remove")),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.state.next_fault() {
            None => self.inner.sync_dir(dir),
            Some(_) => Err(injected_err(FaultKind::FsyncError, "sync_dir")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays the schedule decision sequence without any filesystem.
    fn schedule(plan: FaultPlan, ops: usize) -> Vec<Option<FaultKind>> {
        let state = FaultState {
            plan,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        };
        (0..ops).map(|_| state.next_fault()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::new(42);
        assert_eq!(schedule(plan, 200), schedule(plan, 200));
    }

    #[test]
    fn different_seeds_differ() {
        let a = schedule(FaultPlan::new(1), 200);
        let b = schedule(FaultPlan::new(2), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn faults_are_bounded_then_quiet() {
        let plan = FaultPlan {
            seed: 7,
            rate: 128,
            max_faults: 3,
        };
        let seq = schedule(plan, 500);
        let fired: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|_| i))
            .collect();
        assert_eq!(fired.len(), 3, "exactly max_faults fire");
        // Everything after the last fault is quiet forever.
        let last = *fired.last().unwrap();
        assert!(seq[last + 1..].iter().all(Option::is_none));
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan {
            seed: 9,
            rate: 0,
            max_faults: u64::MAX,
        };
        assert!(schedule(plan, 1000).iter().all(Option::is_none));
    }

    #[test]
    fn short_write_lands_a_torn_prefix() {
        let dir = std::env::temp_dir().join(format!("nws-fault-short-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Force every fault to be a short write by scanning seeds.
        let mut tested = false;
        for seed in 0..200 {
            let plan = FaultPlan {
                seed,
                rate: 255,
                max_faults: 1,
            };
            let state = FaultState {
                plan,
                ops: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            };
            if state.next_fault() != Some(FaultKind::ShortWrite) {
                continue;
            }
            let io = plan.io();
            let path = dir.join(format!("s{seed}.bin"));
            let f = io.inner.open_rw(&path).unwrap();
            let mut faulty = FaultyFile {
                inner: f,
                state: Arc::new(FaultState {
                    plan,
                    ops: AtomicU64::new(0),
                    injected: AtomicU64::new(0),
                }),
            };
            let err = faulty.write_all(b"0123456789").unwrap_err();
            assert!(err.to_string().contains("injected"));
            drop(faulty);
            assert_eq!(std::fs::read(&path).unwrap(), b"01234");
            drop(io);
            tested = true;
            break;
        }
        assert!(tested, "no seed produced a leading short write");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
