//! An injectable filesystem layer for the store.
//!
//! Every byte the store reads or writes goes through the [`Io`] /
//! [`IoFile`] traits, so fault-injection harnesses (see [`crate::fault`])
//! can fail any individual operation deterministically while production
//! code runs on [`RealIo`], a zero-cost passthrough to `std::fs`. The
//! surface is deliberately minimal — exactly the operations the WAL and
//! snapshot machinery performs, nothing generic.
//!
//! Locking is *not* routed through this layer: the `LOCK` file guards
//! against a second live daemon on the real filesystem, and simulating its
//! failure would only test the simulation.

use std::fmt::Debug;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// One open, writable store file (WAL segment or snapshot temp file).
pub trait IoFile: Debug + Send {
    /// Writes the whole buffer (kernel-buffered, not yet durable).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates or extends the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Positions the cursor at end-of-file, returning the offset.
    fn seek_end(&mut self) -> io::Result<u64>;
}

/// The filesystem operations the store performs on paths.
pub trait Io: Debug + Send {
    /// `fs::create_dir_all`.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the file names (not paths) inside `dir`.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// The current length of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Opens `path` read+write, creating it if missing (no truncation).
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;
    /// Creates `path` fresh (truncating an existing file).
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory itself, making renames/creations durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Io`]: a direct passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

/// A real [`File`] behind the [`IoFile`] surface.
#[derive(Debug)]
pub struct RealFile(File);

impl IoFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(SeekFrom::End(0))
    }
}

impl Io for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nws-store-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_io_round_trips_files() {
        let io = RealIo;
        let dir = tdir("roundtrip");
        io.create_dir_all(&dir).unwrap();
        let path = dir.join("a.txt");
        {
            let mut f = io.open_rw(&path).unwrap();
            f.write_all(b"hello world").unwrap();
            f.sync_data().unwrap();
        }
        assert_eq!(io.read(&path).unwrap(), b"hello world");
        assert_eq!(io.file_len(&path).unwrap(), 11);
        {
            let mut f = io.open_rw(&path).unwrap();
            assert_eq!(f.seek_end().unwrap(), 11);
            f.set_len(5).unwrap();
        }
        assert_eq!(io.read(&path).unwrap(), b"hello");
        let renamed = dir.join("b.txt");
        io.rename(&path, &renamed).unwrap();
        let names = io.read_dir_names(&dir).unwrap();
        assert!(names.contains(&"b.txt".to_string()) && !names.contains(&"a.txt".to_string()));
        io.sync_dir(&dir).unwrap();
        io.remove_file(&renamed).unwrap();
        assert!(io.read(&renamed).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_truncate_discards_previous_content() {
        let io = RealIo;
        let dir = tdir("truncate");
        io.create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        io.open_rw(&path)
            .unwrap()
            .write_all(b"old-old-old")
            .unwrap();
        io.create_truncate(&path)
            .unwrap()
            .write_all(b"new")
            .unwrap();
        assert_eq!(io.read(&path).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }
}
