//! `nws-store`: a durable state store for the control-plane daemon.
//!
//! The store is deliberately *payload-agnostic*: it persists opaque
//! single-line text records (the service layer feeds it JSON) and knows
//! nothing about placement state. What it does own is everything that makes
//! those records survive a crash:
//!
//! - **Write-ahead log** — an append-only sequence of length-prefixed,
//!   CRC32-framed records (one per line, see [`frame`]) split across
//!   numbered segment files.
//! - **Snapshots** — a full-state payload written atomically (temp file +
//!   rename + fsync) that covers every WAL record up to its sequence
//!   number. Writing a snapshot rotates the log onto a fresh segment and
//!   compacts (deletes) the rotated segments and older snapshots.
//! - **Crash recovery** — [`Store::open`] loads the newest valid snapshot,
//!   returns the WAL suffix after it for the caller to replay, and
//!   *truncates* the log at the first torn or corrupt record instead of
//!   failing (a torn tail is the expected artifact of a crash mid-append).
//! - **Locking** — a `LOCK` file carrying the owner PID, with stale-lock
//!   detection by PID liveness, so two daemons can never silently
//!   interleave appends into one directory (see [`lock`]).
//! - **Fsync policy** — [`FsyncPolicy`] trades durability against append
//!   latency: `always` syncs every append, `every-N` amortizes, `never`
//!   leaves syncing to the OS. Every policy still flushes to the kernel per
//!   append, so records survive a killed *process* under all three; the
//!   policy only governs what a power failure can lose.
//!
//! Observability: an [`nws_obs::Recorder`] threaded into [`Store::open`]
//! receives `wal_appends` / `wal_bytes` / `wal_fsyncs` counters, the
//! `snapshot_ms` histogram, and a `wal_segments` gauge.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crc;
pub mod fault;
pub mod frame;
pub mod io;
pub mod lock;
mod store;

pub use fault::{FaultKind, FaultPlan, FaultyIo};
pub use io::{Io, IoFile, RealIo};
pub use store::{Recovery, Store, StoreOptions, WalStats};

/// When appends are flushed from the kernel to stable storage.
///
/// Independent of the policy, every append is written through to the OS
/// (so a SIGKILL-ed process loses nothing already acknowledged); the
/// policy decides how often `fdatasync` is issued on top, i.e. how much a
/// *power loss* can take back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — maximum durability, slowest.
    Always,
    /// `fdatasync` after every N appends (N ≥ 1).
    EveryN(u64),
    /// Never sync explicitly; the OS writes back on its own schedule.
    Never,
}

impl FsyncPolicy {
    /// Parses the command-line spelling: `always`, `never`, or `every-N`.
    ///
    /// # Errors
    /// A usage message for anything else (including `every-0`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("every-") {
                Some(n) => match n.parse::<u64>() {
                    Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                    _ => Err(format!(
                        "bad fsync policy '{other}': N in 'every-N' must be a positive integer"
                    )),
                },
                None => Err(format!(
                    "bad fsync policy '{other}' (expected 'always', 'never', or 'every-N')"
                )),
            },
        }
    }

    /// The canonical command-line spelling (inverse of [`FsyncPolicy::parse`]).
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// The state directory is locked by another live daemon.
    Locked {
        /// PID recorded in the lockfile.
        pid: u32,
        /// Lockfile path, for the error message.
        path: String,
    },
    /// An I/O failure, tagged with the operation that failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Invalid input from the caller (payload with a newline, …).
    Invalid(String),
}

impl StoreError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Locked { pid, path } => write!(
                f,
                "state directory is locked by a live daemon (pid {pid}, lockfile {path}); \
                 stop it or point --state-dir elsewhere"
            ),
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_labels() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("every-8").unwrap(),
            FsyncPolicy::EveryN(8)
        );
        for bad in ["", "Always", "every-", "every-0", "every-x", "sometimes"] {
            assert!(FsyncPolicy::parse(bad).is_err(), "accepted {bad:?}");
        }
        for p in [
            FsyncPolicy::Always,
            FsyncPolicy::Never,
            FsyncPolicy::EveryN(3),
        ] {
            assert_eq!(FsyncPolicy::parse(&p.label()).unwrap(), p);
        }
    }
}
