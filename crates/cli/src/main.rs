//! `nws` — command-line front end for optimal network-wide sampling.
//!
//! ```text
//! nws solve <topology.topo> <task.nws>      solve a placement problem
//! nws solve --builtin geant <task.nws>      ... on a bundled topology
//! nws solve ... --dot out.dot               also write a Graphviz rendering
//! nws sweep <topology.topo> <task.nws> T..  re-solve across capacities
//! nws plan <topo> <task.nws> <target>       minimal theta for a target
//! nws topo validate <topology.topo>         parse + connectivity check
//! nws topo stats <topology.topo>            size/degree/capacity summary
//! nws topo export geant|abilene             print a bundled topology
//! nws topo dot geant|abilene                print a Graphviz rendering
//! nws demo                                  run the paper's Table I task
//! ```
//!
//! Topology files use the `nws-topo` plain-text format; task files use the
//! `nws-core::taskfile` format (see crate docs for both).

use nws_core::report::render_table1;
use nws_core::scenarios::janet_task;
use nws_core::taskfile::parse_task;
use nws_core::{evaluate_accuracy, solve_placement, summarize, PlacementConfig};
use nws_topo::{abilene, format, geant, Topology};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("nws: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  nws solve <topology.topo|--builtin NAME> <task.nws> [--dot FILE]
  nws sweep <topology.topo|--builtin NAME> <task.nws> <theta1> [theta2 ...]
  nws plan <topology.topo|--builtin NAME> <task.nws> <target-utility>
  nws topo validate <topology.topo>
  nws topo stats <topology.topo|geant|abilene>
  nws topo export <geant|abilene>
  nws topo dot <geant|abilene>
  nws demo

options (solve/sweep/plan/demo):
  --threads N    evaluate the objective on N worker threads (0 = one per
                 core; default 1 = serial; pays off on tasks with thousands
                 of OD pairs)";

fn run(args: &[String]) -> Result<(), String> {
    let (args, config) = extract_config(args)?;
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..], &config),
        Some("sweep") => cmd_sweep(&args[1..], &config),
        Some("plan") => cmd_plan(&args[1..], &config),
        Some("topo") => cmd_topo(&args[1..]),
        Some("demo") => cmd_demo(&config),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".into()),
    }
}

/// Strips global options (currently `--threads N`) from anywhere in the
/// argument list and folds them into a [`PlacementConfig`].
fn extract_config(args: &[String]) -> Result<(Vec<String>, PlacementConfig), String> {
    let mut rest = args.to_vec();
    let mut config = PlacementConfig::default();
    while let Some(i) = rest.iter().position(|a| a == "--threads") {
        let n: usize = rest
            .get(i + 1)
            .ok_or_else(|| "--threads requires a count".to_string())?
            .parse()
            .map_err(|_| "--threads requires a non-negative integer".to_string())?;
        config.parallel.threads = n;
        rest.drain(i..=i + 1);
    }
    Ok((rest, config))
}

/// Loads a topology from a file path or `--builtin NAME`; returns the
/// topology and how many leading arguments were consumed.
fn load_topology(args: &[String]) -> Result<(Topology, usize), String> {
    match args.first().map(String::as_str) {
        Some("--builtin") => {
            let name = args
                .get(1)
                .ok_or_else(|| "--builtin requires a name".to_string())?;
            match name.as_str() {
                "geant" => Ok((geant(), 2)),
                "abilene" => Ok((abilene(), 2)),
                other => Err(format!("unknown builtin topology '{other}'")),
            }
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read topology '{path}': {e}"))?;
            let topo = format::from_text(&text).map_err(|e| format!("topology '{path}': {e}"))?;
            Ok((topo, 1))
        }
        None => Err("missing topology argument".into()),
    }
}

fn load_task(topo: Topology, path: &str) -> Result<nws_core::MeasurementTask, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read task '{path}': {e}"))?;
    parse_task(topo, &text).map_err(|e| format!("task '{path}': {e}"))
}

fn cmd_solve(args: &[String], config: &PlacementConfig) -> Result<(), String> {
    let (topo, used) = load_topology(args)?;
    let task_path = args
        .get(used)
        .ok_or_else(|| "solve requires a task file".to_string())?;
    let dot_path = match (args.get(used + 1).map(String::as_str), args.get(used + 2)) {
        (Some("--dot"), Some(path)) => Some(path.clone()),
        (Some("--dot"), None) => return Err("--dot requires a file path".into()),
        (Some(other), _) => return Err(format!("unexpected argument '{other}'")),
        (None, _) => None,
    };
    let task = load_task(topo, task_path)?;
    let sol = solve_placement(&task, config).map_err(|e| format!("solve failed: {e}"))?;
    let accs = evaluate_accuracy(&task, &sol, 20, 1);
    print!("{}", render_table1(&task, &sol, &accs));
    if let Some(path) = dot_path {
        let highlights: Vec<(nws_topo::LinkId, f64)> = sol
            .active_monitors
            .iter()
            .map(|&l| (l, sol.rates[l.index()]))
            .collect();
        let dot = format::to_dot(task.topology(), &highlights);
        std::fs::write(&path, dot).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!();
        println!("Graphviz rendering with activated monitors written to {path}");
    }
    Ok(())
}

fn cmd_plan(args: &[String], config: &PlacementConfig) -> Result<(), String> {
    let (topo, used) = load_topology(args)?;
    let task_path = args
        .get(used)
        .ok_or_else(|| "plan requires a task file".to_string())?;
    let target: f64 = args
        .get(used + 1)
        .ok_or_else(|| "plan requires a target utility (e.g. 0.95)".to_string())?
        .parse()
        .map_err(|_| "target must be a number".to_string())?;
    let task = load_task(topo, task_path)?;
    // Bracket: 0.01% to 120% of total candidate load.
    let ceiling: f64 = task
        .candidate_links()
        .iter()
        .map(|&l| task.link_loads()[l.index()] * task.alpha()[l.index()])
        .sum();
    let plan = nws_core::planning::theta_for_target_utility(
        &task,
        target,
        ceiling * 1e-5,
        ceiling * 0.99,
        0.01,
        config,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "minimal capacity for worst-OD utility >= {target}: theta = {:.0} sampled          packets/interval (achieved {:.4}, {} solves)",
        plan.theta, plan.achieved_worst_utility, plan.solves
    );
    Ok(())
}

fn cmd_sweep(args: &[String], config: &PlacementConfig) -> Result<(), String> {
    let (topo, used) = load_topology(args)?;
    let task_path = args
        .get(used)
        .ok_or_else(|| "sweep requires a task file".to_string())?;
    let thetas: Vec<f64> = args[used + 1..]
        .iter()
        .map(|s| s.parse().map_err(|_| format!("bad theta '{s}'")))
        .collect::<Result<_, _>>()?;
    if thetas.is_empty() {
        return Err("sweep requires at least one theta".into());
    }
    let base = load_task(topo, task_path)?;
    println!("theta,objective,lambda,active_monitors,acc_mean,acc_worst");
    for theta in thetas {
        let task = base.with_theta(theta).map_err(|e| e.to_string())?;
        let sol = solve_placement(&task, config).map_err(|e| format!("theta {theta}: {e}"))?;
        let acc = summarize(&evaluate_accuracy(&task, &sol, 20, 1));
        println!(
            "{theta},{:.6},{:.6e},{},{:.4},{:.4}",
            sol.objective,
            sol.lambda,
            sol.active_monitors.len(),
            acc.mean,
            acc.worst
        );
    }
    Ok(())
}

fn cmd_topo(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("validate") => {
            let path = args
                .get(1)
                .ok_or_else(|| "validate requires a topology file".to_string())?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            let topo = format::from_text(&text).map_err(|e| e.to_string())?;
            topo.validate_connected().map_err(|e| e.to_string())?;
            println!(
                "ok: {} nodes, {} links ({} monitorable), connected",
                topo.num_nodes(),
                topo.num_links(),
                topo.monitorable_links().len()
            );
            Ok(())
        }
        Some("stats") => {
            let arg = args
                .get(1)
                .ok_or_else(|| "stats requires a topology".to_string())?;
            let topo = match builtin(arg) {
                Ok(t) => t,
                Err(_) => {
                    let text = std::fs::read_to_string(arg)
                        .map_err(|e| format!("cannot read '{arg}': {e}"))?;
                    format::from_text(&text).map_err(|e| e.to_string())?
                }
            };
            let degrees: Vec<usize> = topo.node_ids().map(|n| topo.out_links(n).count()).collect();
            let caps: Vec<f64> = topo
                .link_ids()
                .map(|l| topo.link(l).capacity_mbps())
                .collect();
            println!("nodes: {}", topo.num_nodes());
            println!(
                "links: {} ({} monitorable)",
                topo.num_links(),
                topo.monitorable_links().len()
            );
            println!(
                "out-degree: min {} / max {}",
                degrees.iter().min().expect("nodes exist"),
                degrees.iter().max().expect("nodes exist")
            );
            println!(
                "capacity (Mbps): min {:.0} / max {:.0}",
                caps.iter().cloned().fold(f64::INFINITY, f64::min),
                caps.iter().cloned().fold(0.0, f64::max)
            );
            println!(
                "connected: {}",
                if topo.validate_connected().is_ok() {
                    "yes"
                } else {
                    "NO"
                }
            );
            Ok(())
        }
        Some("export") => {
            let name = args
                .get(1)
                .ok_or_else(|| "export requires a topology name".to_string())?;
            let topo = builtin(name)?;
            print!("{}", format::to_text(&topo));
            Ok(())
        }
        Some("dot") => {
            let name = args
                .get(1)
                .ok_or_else(|| "dot requires a topology name".to_string())?;
            let topo = builtin(name)?;
            print!("{}", format::to_dot(&topo, &[]));
            Ok(())
        }
        Some(other) => Err(format!("unknown topo subcommand '{other}'")),
        None => Err("topo requires a subcommand".into()),
    }
}

fn builtin(name: &str) -> Result<Topology, String> {
    match name {
        "geant" => Ok(geant()),
        "abilene" => Ok(abilene()),
        other => Err(format!("unknown builtin topology '{other}'")),
    }
}

fn cmd_demo(config: &PlacementConfig) -> Result<(), String> {
    let task = janet_task();
    let sol = solve_placement(&task, config).map_err(|e| e.to_string())?;
    let accs = evaluate_accuracy(&task, &sol, 20, 1);
    print!("{}", render_table1(&task, &sol, &accs));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_rejected() {
        assert!(run(&["bogus".into()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn builtin_topologies_load() {
        let (g, used) = load_topology(&["--builtin".into(), "geant".into()]).unwrap();
        assert_eq!(used, 2);
        assert_eq!(g.num_nodes(), 23);
        let (a, _) = load_topology(&["--builtin".into(), "abilene".into()]).unwrap();
        assert_eq!(a.num_nodes(), 12);
        assert!(load_topology(&["--builtin".into(), "mars".into()]).is_err());
    }

    #[test]
    fn demo_runs() {
        cmd_demo(&PlacementConfig::default()).unwrap();
    }

    #[test]
    fn threads_flag_extracted_anywhere() {
        let args: Vec<String> = ["demo", "--threads", "4"].map(String::from).to_vec();
        let (rest, config) = extract_config(&args).unwrap();
        assert_eq!(rest, vec!["demo".to_string()]);
        assert_eq!(config.parallel.threads, 4);

        let args: Vec<String> = ["--threads", "0", "demo"].map(String::from).to_vec();
        let (rest, config) = extract_config(&args).unwrap();
        assert_eq!(rest, vec!["demo".to_string()]);
        assert_eq!(config.parallel.threads, 0);

        assert!(extract_config(&["--threads".to_string()]).is_err());
        assert!(extract_config(&["--threads".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn demo_solves_with_threads() {
        run(&["demo", "--threads", "2"].map(String::from)).unwrap();
    }

    #[test]
    fn topo_export_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("geant.topo");
        std::fs::write(&path, nws_topo::format::to_text(&geant())).unwrap();
        cmd_topo(&["validate".into(), path.to_string_lossy().into_owned()]).unwrap();
    }

    #[test]
    fn topo_stats_builtin() {
        cmd_topo(&["stats".into(), "geant".into()]).unwrap();
        assert!(cmd_topo(&["stats".into()]).is_err());
    }

    #[test]
    fn solve_rejects_bad_flags() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let task_path = dir.join("task2.nws");
        std::fs::write(&task_path, "theta 1000\nod JANET NL 30000\n").unwrap();
        let err = cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
                "--bogus".into(),
            ],
            &PlacementConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("unexpected argument"));
        let err = cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
                "--dot".into(),
            ],
            &PlacementConfig::default(),
        )
        .unwrap_err();
        assert!(err.contains("--dot requires"));
    }

    #[test]
    fn solve_writes_dot_file() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let task_path = dir.join("task3.nws");
        std::fs::write(
            &task_path,
            "theta 1000\nod JANET NL 30000\nod JANET LU 20\n",
        )
        .unwrap();
        let dot_path = dir.join("sol.dot");
        cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
                "--dot".into(),
                dot_path.to_string_lossy().into_owned(),
            ],
            &PlacementConfig::default(),
        )
        .unwrap();
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.contains("color=red"), "activated monitors highlighted");
    }

    #[test]
    fn solve_from_files() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let task_path = dir.join("task.nws");
        std::fs::write(
            &task_path,
            "theta 20000\nod JANET NL 30000\nod JANET LU 20\nbackground gravity 400000 0.5 7\n",
        )
        .unwrap();
        cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
            ],
            &PlacementConfig::default(),
        )
        .unwrap();
    }
}
