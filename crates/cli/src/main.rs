//! `nws` — command-line front end for optimal network-wide sampling.
//!
//! ```text
//! nws solve <topology.topo> <task.nws>      solve a placement problem
//! nws solve --builtin geant <task.nws>      ... on a bundled topology
//! nws solve ... --dot out.dot               also write a Graphviz rendering
//! nws sweep <topology.topo> <task.nws> T..  re-solve across capacities
//! nws plan <topo> <task.nws> <target>       minimal theta for a target
//! nws serve [...]                           run the control-plane daemon
//! nws replay --gen-trace day.jsonl [...]    generate a demand/failure trace
//! nws replay --trace day.jsonl [...]        replay it under a solve budget
//! nws topo validate <topology.topo>         parse + connectivity check
//! nws topo stats <topology.topo>            size/degree/capacity summary
//! nws topo export geant|abilene             print a bundled topology
//! nws topo dot geant|abilene                print a Graphviz rendering
//! nws demo                                  run the paper's Table I task
//! ```
//!
//! Topology files use the `nws-topo` plain-text format; task files use the
//! `nws-core::taskfile` format (see crate docs for both).
//!
//! Exit codes: 0 on success, 2 for usage errors (unknown command, missing
//! or malformed arguments — usage is printed to stderr), 1 for runtime
//! failures (unreadable files, infeasible problems, solver errors).

use nws_core::report::render_table1;
use nws_core::scenarios::janet_task;
use nws_core::taskfile::parse_task;
use nws_core::{evaluate_accuracy, solve_placement_observed, summarize, PlacementConfig};
use nws_obs::Recorder;
use nws_scenario::{
    bench_report, generate_trace, oracle_series, run_replay, run_sweep, GeneratorConfig,
    ReplayPolicy, SweepEntry, Trace,
};
use nws_service::{
    Daemon, DaemonOptions, FaultPlan, FsyncPolicy, NetFaultPlan, NetOptions, PersistConfig, Server,
    ServiceState,
};
use nws_topo::{abilene, format, geant, Topology};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("nws: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("nws: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// CLI failures, split by who is at fault: `Usage` means the invocation
/// itself was wrong (exit 2, usage printed); `Runtime` means the invocation
/// was fine but the work failed (exit 1, no usage dump).
#[derive(Debug, PartialEq)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

const USAGE: &str = "\
usage:
  nws solve <topology.topo|--builtin NAME> <task.nws> [--dot FILE]
  nws sweep <topology.topo|--builtin NAME> <task.nws> <theta1> [theta2 ...]
  nws plan <topology.topo|--builtin NAME> <task.nws> <target-utility>
  nws serve [<topology.topo|--builtin NAME> <task.nws>] [serve options]
  nws replay [<topology.topo|--builtin NAME> <task.nws>] [replay options]
  nws topo validate <topology.topo>
  nws topo stats <topology.topo|geant|abilene>
  nws topo export <geant|abilene>
  nws topo dot <geant|abilene>
  nws demo

options (solve/sweep/plan/serve/demo):
  --threads N       evaluate the objective on a persistent pool of N worker
                    threads (0 = one per core; default 1 = serial; capped at
                    the core count; tiny tasks below the nnz cutoff stay
                    serial; pays off on tasks with thousands of OD pairs)

observability options (solve/sweep/serve/demo):
  --metrics-out F   write a Prometheus-style text exposition of solver and
                    evaluation metrics to F on exit (for serve, includes
                    per-command latency histograms)
  --trace           also collect phase spans; appends the span tree to the
                    exposition and prints it to stderr

serve options (without a topology/task, serves the paper's JANET-on-GEANT
scenario; speaks one JSON request per line on stdin, one response per line
on stdout — see DESIGN.md section 8 for the protocol):
  --shadow-cold     run a cold solve next to every warm re-solve and report
                    both (for iteration/latency comparison)
  --bench-out FILE  write per-event solve latency as JSON on exit
  --queue N         bounded request-queue capacity (default 64); when the
                    queue is full, requests are shed with an 'overloaded'
                    error carrying a retry_after_ms hint
                    (--max-queue is an accepted alias)
  --solve-deadline-ms MS  wall-clock budget per re-solve: a solve that
                    exhausts it serves its best feasible iterate marked
                    degraded, escalating cold-retry then last-good
  --tcp ADDR        serve many concurrent connections on a TCP listener
                    (e.g. 127.0.0.1:7070; port 0 picks an ephemeral port,
                    printed to stderr). Read-only commands are answered
                    from a lock-free snapshot on the connection thread
  --socket PATH     serve many concurrent connections on a Unix socket
                    (same multi-connection machinery as --tcp; combinable)
  --coalesce-ms MS  batch bursts of update_demand/update_demands arriving
                    within MS into one epoch rebuild + one warm re-solve
                    (last-writer-wins per OD; every request is still
                    acknowledged, with a 'coalesced' batch-size field;
                    multi-connection serving only; default 0 = off)
  --max-conns N     concurrent-connection cap (default 1024); excess
                    connections get one too_many_connections error line
  --idle-timeout-ms MS  drop connections idle longer than MS (default 0 =
                    no timeout)
  --write-timeout-ms MS  evict a connection whose response write stalls
                    longer than MS (slow-client protection; default 30000)
  --chaos-net-seed S  inject a deterministic socket-fault schedule (short
                    reads/writes, delays, resets, accept failures) seeded
                    by S on every accepted connection (testing only)
  --state-dir DIR   persist state in DIR: journal state-changing commands
                    to a write-ahead log, snapshot periodically and on
                    exit, recover (snapshot + replay) on the next boot
  --fsync POLICY    WAL durability: always | every-N | never (default
                    always; requires --state-dir)
  --snapshot-every N  appends between automatic snapshots (default 32;
                    requires --state-dir)
  --chaos-store-seed SEED  inject a deterministic store-fault schedule
                    into the WAL/snapshot I/O path (chaos testing; the
                    daemon degrades persistence instead of crashing;
                    requires --state-dir)

replay options (without a topology/task, replays against the paper's
JANET-on-GEANT scenario; traces are JSON-lines files, see docs/FORMATS.md):
  --gen-trace FILE  generate a day-long demand/failure trace and exit;
                    shape knobs: --seed N --ticks N --period N --swing X
                    --noise CV --flash-crowds N --link-flaps N
                    --flap-duration N
  --trace FILE      replay a trace tick by tick against an oracle that
                    re-solves every tick (for replay, --trace names the
                    input file; span tracing is unavailable)
  --resolve-every N re-solve the placement every N ticks (default 1);
                    link events always force a re-solve
  --budgets A,B,..  sweep: replay once per budget in both reactive and
                    forecast modes, print the accuracy-vs-budget curves
                    (mutually exclusive with --resolve-every/--forecast)
  --forecast        solve against Holt-predicted mid-window demands
                    instead of the tick's observed demands
  --hysteresis H    relative dead-band on monitor-rate changes: forecast
                    solves whose rates move less than H of the installed
                    maximum are not installed (default 0 = install all)
  --bench-out FILE  write the accuracy results as JSON (BENCH_replay.json
                    schema)";

fn run(args: &[String]) -> Result<(), CliError> {
    let (args, config, obs) = extract_config(args)?;
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..], &config, &obs),
        Some("sweep") => cmd_sweep(&args[1..], &config, &obs),
        Some("plan") => cmd_plan(&args[1..], &config),
        Some("serve") => cmd_serve(&args[1..], &config, &obs),
        Some("replay") => cmd_replay(&args[1..], &config, &obs),
        Some("topo") => cmd_topo(&args[1..]),
        Some("demo") => cmd_demo(&config, &obs),
        Some(other) => Err(usage_err(format!("unknown command '{other}'"))),
        None => Err(usage_err("no command given")),
    }
}

/// Observability requested on the command line (`--metrics-out`, `--trace`).
///
/// When neither flag is given the recorder stays disabled, which keeps the
/// hot path allocation-free (see the `nws-obs` crate docs).
#[derive(Debug, Default, PartialEq)]
struct ObsSetup {
    metrics_out: Option<String>,
    trace: bool,
}

impl ObsSetup {
    fn wanted(&self) -> bool {
        self.metrics_out.is_some() || self.trace
    }

    /// An enabled recorder when observability was requested, else no-op.
    fn recorder(&self) -> Recorder {
        if self.wanted() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Writes/prints whatever `rec` captured, per the requested outputs.
    fn finish(&self, rec: &Recorder) -> Result<(), CliError> {
        if !self.wanted() {
            return Ok(());
        }
        let snap = rec.snapshot();
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, snap.exposition(self.trace))
                .map_err(|e| runtime_err(format!("cannot write '{path}': {e}")))?;
        }
        if self.trace {
            eprint!("{}", snap.span_tree());
        }
        Ok(())
    }
}

/// Strips global options (`--threads N`, `--metrics-out F`, `--trace`) from
/// anywhere in the argument list and folds them into a [`PlacementConfig`]
/// plus an [`ObsSetup`].
///
/// Exception: for the `replay` command, `--trace` names the input trace
/// file and is left in place for the replay parser (span tracing is not
/// meaningful for a batch replay anyway).
fn extract_config(args: &[String]) -> Result<(Vec<String>, PlacementConfig, ObsSetup), CliError> {
    let mut rest = args.to_vec();
    let mut config = PlacementConfig::default();
    let mut obs = ObsSetup::default();
    let trace_is_positional = rest.first().map(String::as_str) == Some("replay");
    while let Some(i) = rest.iter().position(|a| a == "--threads") {
        let n: usize = rest
            .get(i + 1)
            .ok_or_else(|| usage_err("--threads requires a count"))?
            .parse()
            .map_err(|_| usage_err("--threads requires a non-negative integer"))?;
        config.parallel.threads = n;
        rest.drain(i..=i + 1);
    }
    while let Some(i) = rest.iter().position(|a| a == "--metrics-out") {
        let path = rest
            .get(i + 1)
            .ok_or_else(|| usage_err("--metrics-out requires a file path"))?;
        obs.metrics_out = Some(path.clone());
        rest.drain(i..=i + 1);
    }
    if !trace_is_positional {
        while let Some(i) = rest.iter().position(|a| a == "--trace") {
            obs.trace = true;
            rest.remove(i);
        }
    }
    Ok((rest, config, obs))
}

/// Loads a topology from a file path or `--builtin NAME`; returns the
/// topology and how many leading arguments were consumed.
fn load_topology(args: &[String]) -> Result<(Topology, usize), CliError> {
    match args.first().map(String::as_str) {
        Some("--builtin") => {
            let name = args
                .get(1)
                .ok_or_else(|| usage_err("--builtin requires a name"))?;
            match name.as_str() {
                "geant" => Ok((geant(), 2)),
                "abilene" => Ok((abilene(), 2)),
                other => Err(usage_err(format!("unknown builtin topology '{other}'"))),
            }
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| runtime_err(format!("cannot read topology '{path}': {e}")))?;
            let topo = format::from_text(&text)
                .map_err(|e| runtime_err(format!("topology '{path}': {e}")))?;
            Ok((topo, 1))
        }
        None => Err(usage_err("missing topology argument")),
    }
}

fn load_task(topo: Topology, path: &str) -> Result<nws_core::MeasurementTask, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| runtime_err(format!("cannot read task '{path}': {e}")))?;
    parse_task(topo, &text).map_err(|e| runtime_err(format!("task '{path}': {e}")))
}

fn cmd_solve(args: &[String], config: &PlacementConfig, obs: &ObsSetup) -> Result<(), CliError> {
    let (topo, used) = load_topology(args)?;
    let task_path = args
        .get(used)
        .ok_or_else(|| usage_err("solve requires a task file"))?;
    let dot_path = match (args.get(used + 1).map(String::as_str), args.get(used + 2)) {
        (Some("--dot"), Some(path)) => Some(path.clone()),
        (Some("--dot"), None) => return Err(usage_err("--dot requires a file path")),
        (Some(other), _) => return Err(usage_err(format!("unexpected argument '{other}'"))),
        (None, _) => None,
    };
    let task = load_task(topo, task_path)?;
    let rec = obs.recorder();
    let sol = solve_placement_observed(&task, config, &rec)
        .map_err(|e| runtime_err(format!("solve failed: {e}")))?;
    let accs = evaluate_accuracy(&task, &sol, 20, 1);
    print!("{}", render_table1(&task, &sol, &accs));
    obs.finish(&rec)?;
    if let Some(path) = dot_path {
        let highlights: Vec<(nws_topo::LinkId, f64)> = sol
            .active_monitors
            .iter()
            .map(|&l| (l, sol.rates[l.index()]))
            .collect();
        let dot = format::to_dot(task.topology(), &highlights);
        std::fs::write(&path, dot)
            .map_err(|e| runtime_err(format!("cannot write '{path}': {e}")))?;
        println!();
        println!("Graphviz rendering with activated monitors written to {path}");
    }
    Ok(())
}

fn cmd_plan(args: &[String], config: &PlacementConfig) -> Result<(), CliError> {
    let (topo, used) = load_topology(args)?;
    let task_path = args
        .get(used)
        .ok_or_else(|| usage_err("plan requires a task file"))?;
    let target: f64 = args
        .get(used + 1)
        .ok_or_else(|| usage_err("plan requires a target utility (e.g. 0.95)"))?
        .parse()
        .map_err(|_| usage_err("target must be a number"))?;
    let task = load_task(topo, task_path)?;
    // Bracket: 0.01% to 120% of total candidate load.
    let ceiling: f64 = task
        .candidate_links()
        .iter()
        .map(|&l| task.link_loads()[l.index()] * task.alpha()[l.index()])
        .sum();
    let plan = nws_core::planning::theta_for_target_utility(
        &task,
        target,
        ceiling * 1e-5,
        ceiling * 0.99,
        0.01,
        config,
    )
    .map_err(|e| runtime_err(e.to_string()))?;
    println!(
        "minimal capacity for worst-OD utility >= {target}: theta = {:.0} sampled          packets/interval (achieved {:.4}, {} solves)",
        plan.theta, plan.achieved_worst_utility, plan.solves
    );
    Ok(())
}

fn cmd_sweep(args: &[String], config: &PlacementConfig, obs: &ObsSetup) -> Result<(), CliError> {
    let (topo, used) = load_topology(args)?;
    let task_path = args
        .get(used)
        .ok_or_else(|| usage_err("sweep requires a task file"))?;
    let thetas: Vec<f64> = args[used + 1..]
        .iter()
        .map(|s| s.parse().map_err(|_| usage_err(format!("bad theta '{s}'"))))
        .collect::<Result<_, _>>()?;
    if thetas.is_empty() {
        return Err(usage_err("sweep requires at least one theta"));
    }
    let base = load_task(topo, task_path)?;
    let rec = obs.recorder();
    println!("theta,objective,lambda,active_monitors,acc_mean,acc_worst");
    for theta in thetas {
        let task = base
            .with_theta(theta)
            .map_err(|e| runtime_err(e.to_string()))?;
        let sol = solve_placement_observed(&task, config, &rec)
            .map_err(|e| runtime_err(format!("theta {theta}: {e}")))?;
        let acc = summarize(&evaluate_accuracy(&task, &sol, 20, 1));
        println!(
            "{theta},{:.6},{:.6e},{},{:.4},{:.4}",
            sol.objective,
            sol.lambda,
            sol.active_monitors.len(),
            acc.mean,
            acc.worst
        );
    }
    obs.finish(&rec)
}

/// Parsed `serve` invocation: daemon options, optional socket path, and the
/// positional (topology/task) arguments left over.
#[derive(Debug, Default, PartialEq)]
struct ServeSetup {
    opts_queue: usize,
    shadow_cold: bool,
    bench_out: Option<String>,
    socket: Option<String>,
    tcp: Option<String>,
    coalesce_ms: u64,
    max_conns: usize,
    idle_timeout_ms: u64,
    write_timeout_ms: u64,
    chaos_net_seed: Option<u64>,
    state_dir: Option<String>,
    fsync: Option<FsyncPolicy>,
    snapshot_every: Option<u64>,
    solve_deadline_ms: Option<u64>,
    chaos_store_seed: Option<u64>,
    positional: Vec<String>,
}

impl ServeSetup {
    /// Folds `--state-dir`/`--fsync`/`--snapshot-every` into the daemon's
    /// persistence config; the durability knobs are meaningless without a
    /// state directory, so they are usage errors on their own.
    fn persist(&self) -> Result<Option<PersistConfig>, CliError> {
        let Some(dir) = &self.state_dir else {
            if self.fsync.is_some() {
                return Err(usage_err("--fsync requires --state-dir"));
            }
            if self.snapshot_every.is_some() {
                return Err(usage_err("--snapshot-every requires --state-dir"));
            }
            if self.chaos_store_seed.is_some() {
                return Err(usage_err("--chaos-store-seed requires --state-dir"));
            }
            return Ok(None);
        };
        let mut cfg = PersistConfig::new(dir);
        if let Some(policy) = self.fsync {
            cfg.fsync = policy;
        }
        if let Some(n) = self.snapshot_every {
            cfg.snapshot_every = n;
        }
        if let Some(seed) = self.chaos_store_seed {
            cfg.fault = Some(FaultPlan::new(seed));
        }
        Ok(Some(cfg))
    }
}

fn parse_serve_args(args: &[String]) -> Result<ServeSetup, CliError> {
    let mut setup = ServeSetup::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shadow-cold" => {
                setup.shadow_cold = true;
                i += 1;
            }
            "--bench-out" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--bench-out requires a file path"))?;
                setup.bench_out = Some(path.clone());
                i += 2;
            }
            "--queue" | "--max-queue" => {
                let n: usize = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--queue requires a capacity"))?
                    .parse()
                    .map_err(|_| usage_err("--queue requires a positive integer"))?;
                if n == 0 {
                    return Err(usage_err("--queue requires a positive integer"));
                }
                setup.opts_queue = n;
                i += 2;
            }
            "--solve-deadline-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--solve-deadline-ms requires milliseconds"))?
                    .parse()
                    .map_err(|_| usage_err("--solve-deadline-ms requires a positive integer"))?;
                if ms == 0 {
                    return Err(usage_err("--solve-deadline-ms requires a positive integer"));
                }
                setup.solve_deadline_ms = Some(ms);
                i += 2;
            }
            "--chaos-store-seed" => {
                let seed: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--chaos-store-seed requires a seed"))?
                    .parse()
                    .map_err(|_| usage_err("--chaos-store-seed requires an integer seed"))?;
                setup.chaos_store_seed = Some(seed);
                i += 2;
            }
            "--socket" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--socket requires a path"))?;
                setup.socket = Some(path.clone());
                i += 2;
            }
            "--tcp" => {
                let addr = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--tcp requires an address (e.g. 127.0.0.1:7070)"))?;
                setup.tcp = Some(addr.clone());
                i += 2;
            }
            "--coalesce-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--coalesce-ms requires milliseconds"))?
                    .parse()
                    .map_err(|_| usage_err("--coalesce-ms requires a non-negative integer"))?;
                setup.coalesce_ms = ms;
                i += 2;
            }
            "--max-conns" => {
                let n: usize = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--max-conns requires a count"))?
                    .parse()
                    .map_err(|_| usage_err("--max-conns requires a positive integer"))?;
                if n == 0 {
                    return Err(usage_err("--max-conns requires a positive integer"));
                }
                setup.max_conns = n;
                i += 2;
            }
            "--idle-timeout-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--idle-timeout-ms requires milliseconds"))?
                    .parse()
                    .map_err(|_| usage_err("--idle-timeout-ms requires a positive integer"))?;
                if ms == 0 {
                    return Err(usage_err("--idle-timeout-ms requires a positive integer"));
                }
                setup.idle_timeout_ms = ms;
                i += 2;
            }
            "--write-timeout-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--write-timeout-ms requires milliseconds"))?
                    .parse()
                    .map_err(|_| usage_err("--write-timeout-ms requires a positive integer"))?;
                if ms == 0 {
                    return Err(usage_err("--write-timeout-ms requires a positive integer"));
                }
                setup.write_timeout_ms = ms;
                i += 2;
            }
            "--chaos-net-seed" => {
                let seed: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--chaos-net-seed requires a seed"))?
                    .parse()
                    .map_err(|_| usage_err("--chaos-net-seed requires an integer seed"))?;
                setup.chaos_net_seed = Some(seed);
                i += 2;
            }
            "--state-dir" => {
                let dir = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--state-dir requires a directory"))?;
                setup.state_dir = Some(dir.clone());
                i += 2;
            }
            "--fsync" => {
                let policy = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--fsync requires a policy (always|every-N|never)"))?;
                setup.fsync = Some(
                    FsyncPolicy::parse(policy).map_err(|e| usage_err(format!("--fsync: {e}")))?,
                );
                i += 2;
            }
            "--snapshot-every" => {
                let n: u64 = args
                    .get(i + 1)
                    .ok_or_else(|| usage_err("--snapshot-every requires a count"))?
                    .parse()
                    .map_err(|_| usage_err("--snapshot-every requires a positive integer"))?;
                if n == 0 {
                    return Err(usage_err("--snapshot-every requires a positive integer"));
                }
                setup.snapshot_every = Some(n);
                i += 2;
            }
            other if other.starts_with("--") && other != "--builtin" => {
                return Err(usage_err(format!("unknown serve option '{other}'")));
            }
            _ => {
                setup.positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    Ok(setup)
}

fn cmd_serve(args: &[String], config: &PlacementConfig, obs: &ObsSetup) -> Result<(), CliError> {
    let setup = parse_serve_args(args)?;
    let task = if setup.positional.is_empty() {
        janet_task()
    } else {
        let (topo, used) = load_topology(&setup.positional)?;
        let task_path = setup
            .positional
            .get(used)
            .ok_or_else(|| usage_err("serve requires a task file after the topology"))?;
        if setup.positional.len() > used + 1 {
            return Err(usage_err(format!(
                "unexpected argument '{}'",
                setup.positional[used + 1]
            )));
        }
        load_task(topo, task_path)?
    };
    let state = ServiceState::from_task(&task, *config);
    let mut daemon = Daemon::new(
        state,
        DaemonOptions {
            queue_capacity: setup.opts_queue,
            shadow_cold: setup.shadow_cold,
            bench_out: setup.bench_out.clone(),
            // The daemon runs its own always-on recorder; it writes the
            // exposition itself so the `metrics` command and the file agree.
            metrics_out: obs.metrics_out.clone(),
            trace: obs.trace,
            persist: setup.persist()?,
            solve_deadline_ms: setup.solve_deadline_ms,
            coalesce_ms: setup.coalesce_ms,
        },
    );

    let summary = if setup.tcp.is_some() || setup.socket.is_some() {
        // Multi-connection serving: TCP and/or Unix listeners in front of
        // the same event loop; read-only commands answered lock-free on
        // the connection threads.
        let net = NetOptions {
            tcp: setup.tcp.clone(),
            unix: setup.socket.clone(),
            max_conns: setup.max_conns,
            idle_timeout_ms: setup.idle_timeout_ms,
            write_timeout_ms: setup.write_timeout_ms,
            chaos: setup.chaos_net_seed.map(NetFaultPlan::new),
        };
        let server = Server::bind(&net).map_err(|e| runtime_err(format!("serve: {e}")))?;
        if let Some(addr) = server.tcp_addr() {
            eprintln!("serve: listening on tcp {addr}");
        }
        if let Some(path) = &setup.socket {
            eprintln!("serve: listening on socket {path}");
        }
        daemon
            .serve(server)
            .map_err(|e| runtime_err(format!("serve: {e}")))?
    } else {
        if setup.coalesce_ms > 0 {
            return Err(usage_err("--coalesce-ms requires --tcp or --socket"));
        }
        let input = std::io::BufReader::new(std::io::stdin());
        let mut output = std::io::stdout();
        daemon
            .run(input, &mut output)
            .map_err(|e| runtime_err(format!("serve: {e}")))?
    };
    eprintln!(
        "serve: {} requests ({} lock-free reads), {} re-solves, {} shed, {} connections, {}",
        summary.requests + summary.reads_lockfree,
        summary.reads_lockfree,
        summary.resolves,
        summary.shed,
        summary.connections,
        if summary.clean_shutdown {
            "clean shutdown"
        } else {
            "input closed"
        }
    );
    Ok(())
}

/// Parsed `replay` invocation. Exactly one of `gen_out` (generate a trace
/// and exit) or `trace_in` (replay one) must be set.
#[derive(Debug, Default, PartialEq)]
struct ReplaySetup {
    gen_out: Option<String>,
    trace_in: Option<String>,
    resolve_every: Option<u64>,
    budgets: Option<Vec<u64>>,
    forecast: bool,
    hysteresis: f64,
    bench_out: Option<String>,
    generator: GeneratorConfig,
    positional: Vec<String>,
}

fn parse_replay_args(args: &[String]) -> Result<ReplaySetup, CliError> {
    let mut setup = ReplaySetup {
        generator: GeneratorConfig::default(),
        ..ReplaySetup::default()
    };
    let mut i = 0;
    // Small helpers so every value-taking flag reports consistent errors.
    let want = |args: &[String], i: usize, what: &str| -> Result<String, CliError> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| usage_err(format!("{} requires {what}", args[i])))
    };
    fn num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, CliError> {
        raw.parse()
            .map_err(|_| usage_err(format!("{flag}: bad value '{raw}'")))
    }
    while i < args.len() {
        match args[i].as_str() {
            "--gen-trace" => {
                setup.gen_out = Some(want(args, i, "an output file")?);
                i += 2;
            }
            "--trace" => {
                setup.trace_in = Some(want(args, i, "a trace file")?);
                i += 2;
            }
            "--resolve-every" => {
                let n: u64 = num("--resolve-every", &want(args, i, "a tick count")?)?;
                if n == 0 {
                    return Err(usage_err("--resolve-every requires a positive integer"));
                }
                setup.resolve_every = Some(n);
                i += 2;
            }
            "--budgets" => {
                let raw = want(args, i, "a comma-separated list (e.g. 1,4,16)")?;
                let budgets: Vec<u64> = raw
                    .split(',')
                    .map(|s| num("--budgets", s.trim()))
                    .collect::<Result<_, _>>()?;
                if budgets.is_empty() || budgets.contains(&0) {
                    return Err(usage_err("--budgets requires positive tick counts"));
                }
                setup.budgets = Some(budgets);
                i += 2;
            }
            "--forecast" => {
                setup.forecast = true;
                i += 1;
            }
            "--hysteresis" => {
                let h: f64 = num("--hysteresis", &want(args, i, "a relative dead-band")?)?;
                if !(0.0..1.0).contains(&h) {
                    return Err(usage_err("--hysteresis must be in [0, 1)"));
                }
                setup.hysteresis = h;
                i += 2;
            }
            "--bench-out" => {
                setup.bench_out = Some(want(args, i, "a file path")?);
                i += 2;
            }
            "--seed" => {
                setup.generator.seed = num("--seed", &want(args, i, "an integer seed")?)?;
                i += 2;
            }
            "--ticks" => {
                let n: u64 = num("--ticks", &want(args, i, "a tick count")?)?;
                if n == 0 {
                    return Err(usage_err("--ticks requires a positive integer"));
                }
                setup.generator.ticks = n;
                i += 2;
            }
            "--period" => {
                let n: u64 = num("--period", &want(args, i, "a tick count")?)?;
                if n == 0 {
                    return Err(usage_err("--period requires a positive integer"));
                }
                setup.generator.period = n;
                i += 2;
            }
            "--swing" => {
                let x: f64 = num("--swing", &want(args, i, "a peak-to-trough ratio")?)?;
                if !x.is_finite() || x < 1.0 {
                    return Err(usage_err("--swing must be >= 1"));
                }
                setup.generator.diurnal_swing = x;
                i += 2;
            }
            "--noise" => {
                let cv: f64 = num("--noise", &want(args, i, "a coefficient of variation")?)?;
                if !(0.0..10.0).contains(&cv) {
                    return Err(usage_err("--noise must be in [0, 10)"));
                }
                setup.generator.noise_cv = cv;
                i += 2;
            }
            "--flash-crowds" => {
                setup.generator.flash_crowds = num("--flash-crowds", &want(args, i, "a count")?)?;
                i += 2;
            }
            "--link-flaps" => {
                setup.generator.link_flaps = num("--link-flaps", &want(args, i, "a count")?)?;
                i += 2;
            }
            "--flap-duration" => {
                let n: u64 = num("--flap-duration", &want(args, i, "a tick count")?)?;
                if n == 0 {
                    return Err(usage_err("--flap-duration requires a positive integer"));
                }
                setup.generator.flap_duration = n;
                i += 2;
            }
            other if other.starts_with("--") && other != "--builtin" => {
                return Err(usage_err(format!("unknown replay option '{other}'")));
            }
            _ => {
                setup.positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    match (&setup.gen_out, &setup.trace_in) {
        (Some(_), Some(_)) => {
            return Err(usage_err("--gen-trace and --trace are mutually exclusive"));
        }
        (None, None) => {
            return Err(usage_err(
                "replay requires --gen-trace FILE or --trace FILE",
            ));
        }
        _ => {}
    }
    if setup.budgets.is_some() && (setup.resolve_every.is_some() || setup.forecast) {
        return Err(usage_err(
            "--budgets sweeps both modes itself; drop --resolve-every/--forecast",
        ));
    }
    if setup.gen_out.is_some()
        && (setup.budgets.is_some()
            || setup.resolve_every.is_some()
            || setup.forecast
            || setup.bench_out.is_some())
    {
        return Err(usage_err("replay options are meaningless with --gen-trace"));
    }
    Ok(setup)
}

fn cmd_replay(args: &[String], config: &PlacementConfig, obs: &ObsSetup) -> Result<(), CliError> {
    let setup = parse_replay_args(args)?;
    let task = if setup.positional.is_empty() {
        janet_task()
    } else {
        let (topo, used) = load_topology(&setup.positional)?;
        let task_path = setup
            .positional
            .get(used)
            .ok_or_else(|| usage_err("replay requires a task file after the topology"))?;
        if setup.positional.len() > used + 1 {
            return Err(usage_err(format!(
                "unexpected argument '{}'",
                setup.positional[used + 1]
            )));
        }
        load_task(topo, task_path)?
    };
    let state = ServiceState::from_task(&task, *config);
    let rec = obs.recorder();

    if let Some(path) = &setup.gen_out {
        let trace = generate_trace(&state, &setup.generator);
        std::fs::write(path, trace.encode())
            .map_err(|e| runtime_err(format!("cannot write '{path}': {e}")))?;
        let events: u64 = trace.ticks.iter().map(|t| t.events.len() as u64).sum();
        println!(
            "trace written to {path}: {} ticks, {} ods, {} link events, seed {}",
            trace.header.ticks,
            trace.header.ods.len(),
            events,
            trace.header.seed
        );
        return obs.finish(&rec);
    }

    let path = setup.trace_in.as_deref().expect("validated above");
    let text = std::fs::read_to_string(path)
        .map_err(|e| runtime_err(format!("cannot read trace '{path}': {e}")))?;
    let trace = Trace::parse(&text).map_err(|e| runtime_err(format!("trace '{path}': {e}")))?;

    let oracle = oracle_series(&state, &trace).map_err(|e| runtime_err(format!("oracle: {e}")))?;
    let entries = match &setup.budgets {
        Some(budgets) => run_sweep(&state, &trace, &oracle, budgets, setup.hysteresis, &rec)
            .map_err(|e| runtime_err(format!("replay: {e}")))?,
        None => {
            let n = setup.resolve_every.unwrap_or(1);
            let mut policy = if setup.forecast {
                ReplayPolicy::forecast(n)
            } else {
                ReplayPolicy::reactive(n)
            };
            policy.hysteresis = setup.hysteresis;
            let t0 = std::time::Instant::now();
            let outcome = run_replay(&state, &trace, &policy, &oracle, &rec)
                .map_err(|e| runtime_err(format!("replay: {e}")))?;
            vec![SweepEntry {
                outcome,
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            }]
        }
    };

    println!("mode,resolve_every,resolves,suppressed,mean_gap,max_gap,err_p50,err_p90,err_p99,rate_churn");
    for e in &entries {
        let o = &e.outcome;
        println!(
            "{},{},{},{},{:.6e},{:.6e},{:.4},{:.4},{:.4},{:.4}",
            o.policy.mode.name(),
            o.policy.resolve_every,
            o.resolves,
            o.suppressed,
            o.mean_gap,
            o.max_gap,
            o.err_p50,
            o.err_p90,
            o.err_p99,
            o.rate_churn
        );
    }

    if let Some(path) = &setup.bench_out {
        let report = bench_report(&trace, &oracle, &entries);
        std::fs::write(path, format!("{}\n", report.encode()))
            .map_err(|e| runtime_err(format!("cannot write '{path}': {e}")))?;
        eprintln!("replay: accuracy curves written to {path}");
    }
    obs.finish(&rec)
}

fn cmd_topo(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("validate") => {
            let path = args
                .get(1)
                .ok_or_else(|| usage_err("validate requires a topology file"))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| runtime_err(format!("cannot read '{path}': {e}")))?;
            let topo = format::from_text(&text).map_err(|e| runtime_err(e.to_string()))?;
            topo.validate_connected()
                .map_err(|e| runtime_err(e.to_string()))?;
            println!(
                "ok: {} nodes, {} links ({} monitorable), connected",
                topo.num_nodes(),
                topo.num_links(),
                topo.monitorable_links().len()
            );
            Ok(())
        }
        Some("stats") => {
            let arg = args
                .get(1)
                .ok_or_else(|| usage_err("stats requires a topology"))?;
            let topo = match builtin(arg) {
                Ok(t) => t,
                Err(_) => {
                    let text = std::fs::read_to_string(arg)
                        .map_err(|e| runtime_err(format!("cannot read '{arg}': {e}")))?;
                    format::from_text(&text).map_err(|e| runtime_err(e.to_string()))?
                }
            };
            let degrees: Vec<usize> = topo.node_ids().map(|n| topo.out_links(n).count()).collect();
            let caps: Vec<f64> = topo
                .link_ids()
                .map(|l| topo.link(l).capacity_mbps())
                .collect();
            println!("nodes: {}", topo.num_nodes());
            println!(
                "links: {} ({} monitorable)",
                topo.num_links(),
                topo.monitorable_links().len()
            );
            println!(
                "out-degree: min {} / max {}",
                degrees.iter().min().expect("nodes exist"),
                degrees.iter().max().expect("nodes exist")
            );
            println!(
                "capacity (Mbps): min {:.0} / max {:.0}",
                caps.iter().cloned().fold(f64::INFINITY, f64::min),
                caps.iter().cloned().fold(0.0, f64::max)
            );
            println!(
                "connected: {}",
                if topo.validate_connected().is_ok() {
                    "yes"
                } else {
                    "NO"
                }
            );
            Ok(())
        }
        Some("export") => {
            let name = args
                .get(1)
                .ok_or_else(|| usage_err("export requires a topology name"))?;
            let topo = builtin(name)?;
            print!("{}", format::to_text(&topo));
            Ok(())
        }
        Some("dot") => {
            let name = args
                .get(1)
                .ok_or_else(|| usage_err("dot requires a topology name"))?;
            let topo = builtin(name)?;
            print!("{}", format::to_dot(&topo, &[]));
            Ok(())
        }
        Some(other) => Err(usage_err(format!("unknown topo subcommand '{other}'"))),
        None => Err(usage_err("topo requires a subcommand")),
    }
}

fn builtin(name: &str) -> Result<Topology, CliError> {
    match name {
        "geant" => Ok(geant()),
        "abilene" => Ok(abilene()),
        other => Err(usage_err(format!("unknown builtin topology '{other}'"))),
    }
}

fn cmd_demo(config: &PlacementConfig, obs: &ObsSetup) -> Result<(), CliError> {
    let task = janet_task();
    let rec = obs.recorder();
    let sol =
        solve_placement_observed(&task, config, &rec).map_err(|e| runtime_err(e.to_string()))?;
    let accs = evaluate_accuracy(&task, &sol, 20, 1);
    print!("{}", render_table1(&task, &sol, &accs));
    obs.finish(&rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_usage(e: &CliError) -> bool {
        matches!(e, CliError::Usage(_))
    }

    #[test]
    fn unknown_command_rejected_as_usage() {
        assert!(is_usage(&run(&["bogus".into()]).unwrap_err()));
        assert!(is_usage(&run(&[]).unwrap_err()));
        assert!(is_usage(&run(&["topo".into()]).unwrap_err()));
        assert!(is_usage(&run(&["topo".into(), "warp".into()]).unwrap_err()));
        assert!(is_usage(&run(&["sweep".into()]).unwrap_err()));
    }

    #[test]
    fn missing_file_is_runtime_error() {
        let err = run(&["topo".into(), "validate".into(), "/nonexistent.topo".into()]).unwrap_err();
        assert!(!is_usage(&err), "file errors are runtime, not usage: {err}");
        let err = run(&[
            "solve".into(),
            "--builtin".into(),
            "geant".into(),
            "/nonexistent.nws".into(),
        ])
        .unwrap_err();
        assert!(!is_usage(&err));
    }

    #[test]
    fn builtin_topologies_load() {
        let (g, used) = load_topology(&["--builtin".into(), "geant".into()]).unwrap();
        assert_eq!(used, 2);
        assert_eq!(g.num_nodes(), 23);
        let (a, _) = load_topology(&["--builtin".into(), "abilene".into()]).unwrap();
        assert_eq!(a.num_nodes(), 12);
        let err = load_topology(&["--builtin".into(), "mars".into()]).unwrap_err();
        assert!(is_usage(&err));
    }

    #[test]
    fn demo_runs() {
        cmd_demo(&PlacementConfig::default(), &ObsSetup::default()).unwrap();
    }

    #[test]
    fn threads_flag_extracted_anywhere() {
        let args: Vec<String> = ["demo", "--threads", "4"].map(String::from).to_vec();
        let (rest, config, obs) = extract_config(&args).unwrap();
        assert_eq!(rest, vec!["demo".to_string()]);
        assert_eq!(config.parallel.threads, 4);
        assert_eq!(obs, ObsSetup::default());

        let args: Vec<String> = ["--threads", "0", "demo"].map(String::from).to_vec();
        let (rest, config, _) = extract_config(&args).unwrap();
        assert_eq!(rest, vec!["demo".to_string()]);
        assert_eq!(config.parallel.threads, 0);

        assert!(is_usage(
            &extract_config(&["--threads".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &extract_config(&["--threads".to_string(), "x".to_string()]).unwrap_err()
        ));
    }

    #[test]
    fn observability_flags_extracted_anywhere() {
        let args: Vec<String> = ["solve", "--trace", "x.topo", "--metrics-out", "m.prom"]
            .map(String::from)
            .to_vec();
        let (rest, _, obs) = extract_config(&args).unwrap();
        assert_eq!(rest, vec!["solve".to_string(), "x.topo".into()]);
        assert_eq!(obs.metrics_out.as_deref(), Some("m.prom"));
        assert!(obs.trace);
        assert!(obs.wanted());

        assert!(is_usage(
            &extract_config(&["--metrics-out".to_string()]).unwrap_err()
        ));
        assert!(!ObsSetup::default().wanted());
        assert!(!ObsSetup::default().recorder().is_enabled());
    }

    #[test]
    fn demo_metrics_out_writes_exposition() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo_metrics.prom");
        let obs = ObsSetup {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            trace: true,
        };
        cmd_demo(&PlacementConfig::default(), &obs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# TYPE solver_iterations_total counter"));
        assert!(text.contains("# TYPE eval_calls_total counter"));
        assert!(text.contains("# span solve"), "trace appends span tree");
    }

    #[test]
    fn demo_solves_with_threads() {
        run(&["demo", "--threads", "2"].map(String::from)).unwrap();
    }

    #[test]
    fn serve_args_parse() {
        let args: Vec<String> = [
            "--shadow-cold",
            "--bench-out",
            "out.json",
            "--queue",
            "8",
            "--builtin",
            "geant",
            "task.nws",
        ]
        .map(String::from)
        .to_vec();
        let setup = parse_serve_args(&args).unwrap();
        assert!(setup.shadow_cold);
        assert_eq!(setup.bench_out.as_deref(), Some("out.json"));
        assert_eq!(setup.opts_queue, 8);
        assert_eq!(setup.socket, None);
        assert_eq!(
            setup.positional,
            vec!["--builtin".to_string(), "geant".into(), "task.nws".into()]
        );

        assert!(is_usage(
            &parse_serve_args(&["--queue".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--queue".to_string(), "0".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--warp".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--bench-out".to_string()]).unwrap_err()
        ));
    }

    #[test]
    fn serve_persistence_flags_parse() {
        let args: Vec<String> = [
            "--state-dir",
            "/tmp/nws-state",
            "--fsync",
            "every-8",
            "--snapshot-every",
            "16",
        ]
        .map(String::from)
        .to_vec();
        let setup = parse_serve_args(&args).unwrap();
        assert_eq!(setup.state_dir.as_deref(), Some("/tmp/nws-state"));
        assert_eq!(setup.fsync, Some(FsyncPolicy::EveryN(8)));
        assert_eq!(setup.snapshot_every, Some(16));
        let cfg = setup.persist().unwrap().unwrap();
        assert_eq!(cfg.dir.to_string_lossy(), "/tmp/nws-state");
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(8));
        assert_eq!(cfg.snapshot_every, 16);

        // Defaults apply when only the directory is given.
        let setup = parse_serve_args(&["--state-dir".to_string(), "d".to_string()]).unwrap();
        let cfg = setup.persist().unwrap().unwrap();
        assert_eq!(cfg.fsync, FsyncPolicy::Always);
        assert_eq!(cfg.snapshot_every, 32);

        // No --state-dir, no persistence.
        assert!(parse_serve_args(&[]).unwrap().persist().unwrap().is_none());
    }

    #[test]
    fn serve_persistence_flags_reject_bad_input() {
        assert!(is_usage(
            &parse_serve_args(&["--state-dir".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--fsync".to_string(), "sometimes".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--fsync".to_string(), "every-0".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--snapshot-every".to_string(), "0".to_string()]).unwrap_err()
        ));

        // Durability knobs without a state directory are usage errors.
        let setup = parse_serve_args(&["--fsync".to_string(), "never".to_string()]).unwrap();
        let err = setup.persist().unwrap_err();
        assert!(is_usage(&err));
        assert!(err.to_string().contains("--fsync requires --state-dir"));
        let setup = parse_serve_args(&["--snapshot-every".to_string(), "4".to_string()]).unwrap();
        let err = setup.persist().unwrap_err();
        assert!(is_usage(&err));
        assert!(err
            .to_string()
            .contains("--snapshot-every requires --state-dir"));
    }

    #[test]
    fn serve_resilience_flags_parse() {
        let args: Vec<String> = [
            "--max-queue",
            "4",
            "--solve-deadline-ms",
            "250",
            "--state-dir",
            "/tmp/nws-chaos",
            "--chaos-store-seed",
            "42",
        ]
        .map(String::from)
        .to_vec();
        let setup = parse_serve_args(&args).unwrap();
        assert_eq!(setup.opts_queue, 4); // --max-queue is an alias
        assert_eq!(setup.solve_deadline_ms, Some(250));
        assert_eq!(setup.chaos_store_seed, Some(42));
        let cfg = setup.persist().unwrap().unwrap();
        let fault = cfg.fault.expect("chaos seed routes into the fault plan");
        assert_eq!(fault.seed, 42);

        // Bad values.
        assert!(is_usage(
            &parse_serve_args(&["--solve-deadline-ms".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--solve-deadline-ms".to_string(), "0".to_string()]).unwrap_err()
        ));
        assert!(is_usage(
            &parse_serve_args(&["--chaos-store-seed".to_string(), "x".to_string()]).unwrap_err()
        ));

        // Fault injection without a state directory is meaningless.
        let setup = parse_serve_args(&["--chaos-store-seed".to_string(), "1".to_string()]).unwrap();
        let err = setup.persist().unwrap_err();
        assert!(is_usage(&err));
        assert!(err
            .to_string()
            .contains("--chaos-store-seed requires --state-dir"));
    }

    #[test]
    fn serve_rejects_trailing_positional() {
        let err = cmd_serve(
            &["--builtin".into(), "geant".into()],
            &PlacementConfig::default(),
            &ObsSetup::default(),
        )
        .unwrap_err();
        assert!(is_usage(&err));
        assert!(err.to_string().contains("task file"));
    }

    #[test]
    fn replay_args_parse() {
        let args: Vec<String> = [
            "--trace",
            "day.jsonl",
            "--resolve-every",
            "4",
            "--forecast",
            "--hysteresis",
            "0.05",
            "--bench-out",
            "out.json",
        ]
        .map(String::from)
        .to_vec();
        let setup = parse_replay_args(&args).unwrap();
        assert_eq!(setup.trace_in.as_deref(), Some("day.jsonl"));
        assert_eq!(setup.resolve_every, Some(4));
        assert!(setup.forecast);
        assert_eq!(setup.hysteresis, 0.05);
        assert_eq!(setup.bench_out.as_deref(), Some("out.json"));

        let args: Vec<String> = ["--trace", "day.jsonl", "--budgets", "1,4,16"]
            .map(String::from)
            .to_vec();
        let setup = parse_replay_args(&args).unwrap();
        assert_eq!(setup.budgets, Some(vec![1, 4, 16]));

        let args: Vec<String> = [
            "--gen-trace",
            "day.jsonl",
            "--seed",
            "7",
            "--ticks",
            "12",
            "--period",
            "12",
            "--swing",
            "2.5",
            "--noise",
            "0.1",
            "--flash-crowds",
            "0",
            "--link-flaps",
            "0",
        ]
        .map(String::from)
        .to_vec();
        let setup = parse_replay_args(&args).unwrap();
        assert_eq!(setup.gen_out.as_deref(), Some("day.jsonl"));
        assert_eq!(setup.generator.seed, 7);
        assert_eq!(setup.generator.ticks, 12);
        assert_eq!(setup.generator.diurnal_swing, 2.5);
        assert_eq!(setup.generator.flash_crowds, 0);
    }

    #[test]
    fn replay_args_reject_bad_combinations() {
        let parse = |args: &[&str]| {
            parse_replay_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        // Neither or both of --gen-trace/--trace.
        assert!(is_usage(&parse(&[]).unwrap_err()));
        assert!(is_usage(
            &parse(&["--gen-trace", "a", "--trace", "b"]).unwrap_err()
        ));
        // --budgets excludes the single-run flags.
        assert!(is_usage(
            &parse(&["--trace", "t", "--budgets", "1,4", "--forecast"]).unwrap_err()
        ));
        assert!(is_usage(
            &parse(&["--trace", "t", "--budgets", "1,4", "--resolve-every", "2"]).unwrap_err()
        ));
        // Replay knobs are meaningless when generating.
        assert!(is_usage(
            &parse(&["--gen-trace", "t", "--forecast"]).unwrap_err()
        ));
        // Bad values.
        assert!(is_usage(&parse(&["--trace"]).unwrap_err()));
        assert!(is_usage(
            &parse(&["--trace", "t", "--resolve-every", "0"]).unwrap_err()
        ));
        assert!(is_usage(
            &parse(&["--trace", "t", "--budgets", "1,x"]).unwrap_err()
        ));
        assert!(is_usage(
            &parse(&["--trace", "t", "--hysteresis", "1.5"]).unwrap_err()
        ));
        assert!(is_usage(
            &parse(&["--gen-trace", "t", "--swing", "0.5"]).unwrap_err()
        ));
        assert!(is_usage(&parse(&["--trace", "t", "--warp"]).unwrap_err()));
    }

    #[test]
    fn replay_keeps_trace_flag_for_itself() {
        // For every other command --trace is the span-tracing switch; for
        // replay it names the input file and must survive extract_config.
        let args: Vec<String> = ["replay", "--trace", "day.jsonl"]
            .map(String::from)
            .to_vec();
        let (rest, _, obs) = extract_config(&args).unwrap();
        assert_eq!(rest, args);
        assert!(!obs.trace);

        let args: Vec<String> = ["demo", "--trace"].map(String::from).to_vec();
        let (rest, _, obs) = extract_config(&args).unwrap();
        assert_eq!(rest, vec!["demo".to_string()]);
        assert!(obs.trace);
    }

    #[test]
    fn replay_generates_and_replays_a_trace() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("day.jsonl").to_string_lossy().into_owned();
        let bench_path = dir.join("replay.json").to_string_lossy().into_owned();
        run(&[
            "replay".into(),
            "--gen-trace".into(),
            trace_path.clone(),
            "--seed".into(),
            "7".into(),
            "--ticks".into(),
            "8".into(),
            "--period".into(),
            "8".into(),
            "--link-flaps".into(),
            "0".into(),
            "--flash-crowds".into(),
            "1".into(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert_eq!(text.lines().count(), 9, "header + 8 ticks");

        run(&[
            "replay".into(),
            "--trace".into(),
            trace_path.clone(),
            "--budgets".into(),
            "1,4".into(),
            "--bench-out".into(),
            bench_path.clone(),
        ])
        .unwrap();
        let report = std::fs::read_to_string(&bench_path).unwrap();
        let json = nws_service::json::parse(&report).unwrap();
        assert_eq!(json.get("bench").and_then(|b| b.as_str()), Some("replay"));
        assert_eq!(json.get("curves").unwrap().as_arr().unwrap().len(), 4);

        // A single forecast run with hysteresis also works end to end.
        run(&[
            "replay".into(),
            "--trace".into(),
            trace_path,
            "--resolve-every".into(),
            "2".into(),
            "--forecast".into(),
            "--hysteresis".into(),
            "0.02".into(),
        ])
        .unwrap();
    }

    #[test]
    fn topo_export_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("geant.topo");
        std::fs::write(&path, nws_topo::format::to_text(&geant())).unwrap();
        cmd_topo(&["validate".into(), path.to_string_lossy().into_owned()]).unwrap();
    }

    #[test]
    fn topo_stats_builtin() {
        cmd_topo(&["stats".into(), "geant".into()]).unwrap();
        assert!(cmd_topo(&["stats".into()]).is_err());
    }

    #[test]
    fn solve_rejects_bad_flags() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let task_path = dir.join("task2.nws");
        std::fs::write(&task_path, "theta 1000\nod JANET NL 30000\n").unwrap();
        let err = cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
                "--bogus".into(),
            ],
            &PlacementConfig::default(),
            &ObsSetup::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unexpected argument"));
        assert!(is_usage(&err));
        let err = cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
                "--dot".into(),
            ],
            &PlacementConfig::default(),
            &ObsSetup::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--dot requires"));
        assert!(is_usage(&err));
    }

    #[test]
    fn solve_writes_dot_file() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let task_path = dir.join("task3.nws");
        std::fs::write(
            &task_path,
            "theta 1000\nod JANET NL 30000\nod JANET LU 20\n",
        )
        .unwrap();
        let dot_path = dir.join("sol.dot");
        cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
                "--dot".into(),
                dot_path.to_string_lossy().into_owned(),
            ],
            &PlacementConfig::default(),
            &ObsSetup::default(),
        )
        .unwrap();
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.contains("color=red"), "activated monitors highlighted");
    }

    #[test]
    fn solve_from_files() {
        let dir = std::env::temp_dir().join("nws_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let task_path = dir.join("task.nws");
        std::fs::write(
            &task_path,
            "theta 20000\nod JANET NL 30000\nod JANET LU 20\nbackground gravity 400000 0.5 7\n",
        )
        .unwrap();
        cmd_solve(
            &[
                "--builtin".into(),
                "geant".into(),
                task_path.to_string_lossy().into_owned(),
            ],
            &PlacementConfig::default(),
            &ObsSetup::default(),
        )
        .unwrap();
    }
}
