//! Chaos-net harness: seeded socket-fault schedules ([`NetFaultPlan`])
//! driving reconnecting [`Client`] sessions through mutation workloads.
//!
//! Per ISSUE acceptance, the sweep runs ≥ 100 seeded schedules and
//! asserts, for every one of them:
//! - **zero panics** (a panic anywhere fails the test process);
//! - **no torn response lines** — every newline-terminated line the
//!   client ever received parsed (the daemon's line-atomicity held);
//! - **every mutation applied exactly once** — the solve count and commit
//!   epoch match the fault-free baseline exactly, so no retry
//!   double-applied and no fault swallowed an application;
//! - **final state byte-identical to the fault-free baseline** — the
//!   closing `query_rates` response (rates, monitors, objective, epoch)
//!   encodes to the same bytes; the smaller persisted sweep additionally
//!   re-opens the on-disk store and compares [`ServiceState::persisted`].

use nws_client::{Client, ClientConfig, ClientStats};
use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_obs::Recorder;
use nws_service::json::Json;
use nws_service::{
    Daemon, DaemonOptions, DaemonSummary, FsyncPolicy, NetFaultPlan, NetOptions, PersistConfig,
    Request, Server, ServiceState, StateStore,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

/// Seeded schedules in the main sweep (the acceptance floor is 100).
const SWEEP_SEEDS: u64 = 120;
/// Worker threads the sweep is striped across.
const SWEEP_THREADS: u64 = 8;
/// Seeds in the smaller persisted-state sweep (each boots a store twice).
const PERSIST_SEEDS: u64 = 8;
/// Mutations per workload.
const MUTATIONS: usize = 6;

fn fresh_state() -> ServiceState {
    ServiceState::from_task(&janet_task(), PlacementConfig::default())
}

fn boot(
    chaos: Option<NetFaultPlan>,
    persist: Option<PersistConfig>,
) -> (SocketAddr, std::thread::JoinHandle<DaemonSummary>) {
    let mut daemon = Daemon::new(
        fresh_state(),
        DaemonOptions {
            persist,
            ..DaemonOptions::default()
        },
    );
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        chaos,
        ..NetOptions::default()
    })
    .expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp addr");
    let handle = std::thread::spawn(move || daemon.serve(server).expect("serve"));
    (addr, handle)
}

/// A client tuned for a fault storm: tight deterministic backoff, enough
/// attempts to outlast any bounded per-connection fault budget.
fn chaos_client(addr: SocketAddr, seed: u64) -> Client {
    let mut cfg = ClientConfig::new(addr.to_string());
    cfg.request_timeout_ms = 2_000;
    cfg.connect_timeout_ms = 1_000;
    cfg.backoff_base_ms = 2;
    cfg.backoff_max_ms = 20;
    cfg.max_attempts = 16;
    cfg.jitter_seed = seed;
    cfg.client_id = format!("chaos-{seed}");
    Client::new(cfg)
}

/// The fixed workload every schedule replays: interleaved mutations and
/// reads over two ODs, a closing read, then a clean shutdown. Returns the
/// closing `query_rates` response, the client's transport counters, and
/// the daemon summary.
fn run_workload(
    chaos: Option<NetFaultPlan>,
    persist: Option<PersistConfig>,
    seed: u64,
) -> (Json, ClientStats, DaemonSummary) {
    let (addr, daemon) = boot(chaos, persist);
    let mut client = chaos_client(addr, seed);
    for i in 0..MUTATIONS {
        let od = if i % 2 == 0 { "JANET-NL" } else { "JANET-DE" };
        let size = 2.0e6 + i as f64 * 1.0e6;
        let ack = client
            .request(&Request::UpdateDemand {
                od: od.into(),
                size,
            })
            .unwrap_or_else(|e| panic!("seed {seed}: mutation {i} exhausted: {e}"));
        assert_eq!(
            ack.get("ok").and_then(Json::as_bool),
            Some(true),
            "seed {seed}: mutation {i} rejected: {}",
            ack.encode()
        );
        let read = client
            .request(&Request::QueryRates)
            .unwrap_or_else(|e| panic!("seed {seed}: read {i} exhausted: {e}"));
        assert_eq!(read.get("ok").and_then(Json::as_bool), Some(true));
    }
    let final_read = client
        .request(&Request::QueryRates)
        .unwrap_or_else(|e| panic!("seed {seed}: final read exhausted: {e}"));
    // `shutdown()` tolerates a lost `bye` ack (`Ok(None)`), but under
    // chaos that ambiguity can mean the line itself died in a reset
    // before the daemon read it — so re-issue until the serve loop has
    // observably exited rather than trusting one ambiguous send.
    for round in 0.. {
        let sent = client.shutdown();
        for _ in 0..100 {
            if daemon.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        if daemon.is_finished() {
            break;
        }
        // An exhausted send with the daemon still alive is a real failure;
        // exhausted *because* the daemon just exited was handled above.
        if let Err(e) = sent {
            panic!("seed {seed}: shutdown exhausted: {e}");
        }
        assert!(round < 20, "seed {seed}: daemon never acted on shutdown");
    }
    let summary = daemon.join().expect("daemon thread");
    (final_read, client.stats(), summary)
}

/// One seed's verdict against the baseline; `Ok` carries its stats for
/// sweep-level aggregation.
fn check_seed(
    seed: u64,
    baseline_read: &str,
    baseline: &DaemonSummary,
) -> Result<ClientStats, String> {
    let (read, stats, summary) = run_workload(Some(NetFaultPlan::new(seed)), None, seed);
    if stats.torn_lines != 0 {
        return Err(format!(
            "seed {seed}: {} torn response lines",
            stats.torn_lines
        ));
    }
    if summary.resolves != baseline.resolves {
        return Err(format!(
            "seed {seed}: {} resolves vs baseline {} — a mutation was lost or double-applied",
            summary.resolves, baseline.resolves
        ));
    }
    if !summary.clean_shutdown {
        return Err(format!("seed {seed}: daemon did not shut down cleanly"));
    }
    let encoded = read.encode();
    if encoded != baseline_read {
        return Err(format!(
            "seed {seed}: final state diverged from fault-free baseline\n  chaos:    {encoded}\n  baseline: {baseline_read}"
        ));
    }
    Ok(stats)
}

/// The main sweep: `SWEEP_SEEDS` schedules, striped across worker
/// threads, each compared against one fault-free baseline run.
#[test]
fn seeded_fault_sweep_converges_to_fault_free_state() {
    let (baseline_read, baseline_stats, baseline) = run_workload(None, None, u64::MAX);
    assert_eq!(baseline_stats.reconnects, 0, "baseline must be fault-free");
    assert_eq!(baseline_stats.torn_lines, 0);
    let baseline_read = baseline_read.encode();

    let errors = std::sync::Mutex::new(Vec::<String>::new());
    let totals = std::sync::Mutex::new(ClientStats::default());
    std::thread::scope(|scope| {
        for stripe in 0..SWEEP_THREADS {
            let errors = &errors;
            let totals = &totals;
            let baseline_read = baseline_read.as_str();
            let baseline = &baseline;
            scope.spawn(move || {
                for seed in (stripe..SWEEP_SEEDS).step_by(SWEEP_THREADS as usize) {
                    match check_seed(seed, baseline_read, baseline) {
                        Ok(stats) => {
                            let mut t = totals.lock().unwrap();
                            t.connects += stats.connects;
                            t.reconnects += stats.reconnects;
                            t.retries += stats.retries;
                            t.duplicate_acks += stats.duplicate_acks;
                            t.requests_sent += stats.requests_sent;
                        }
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap();
    assert!(
        errors.is_empty(),
        "{} of {SWEEP_SEEDS} schedules failed:\n{}",
        errors.len(),
        errors.join("\n")
    );
    // The sweep must have actually exercised the fault paths: with ~19 %
    // of socket ops perturbed across 120 schedules, some connections die
    // and some requests retry — a zero here means chaos never fired.
    let totals = totals.into_inner().unwrap();
    assert!(
        totals.reconnects > 0,
        "no schedule caused a reconnect — chaos injection is not wired up"
    );
    assert!(totals.retries > 0, "no schedule caused a retry");
}

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nws-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_cfg(dir: &Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        snapshot_every: 4,
        fault: None,
    }
}

/// Re-opens a state dir and returns the recovered state's canonical
/// persisted encoding.
fn recovered_encoding(dir: &Path) -> String {
    let mut state = fresh_state();
    let (_store, _report) =
        StateStore::open(&persist_cfg(dir), &mut state, &Recorder::disabled()).expect("reopen");
    state.persisted().encode()
}

/// The persisted sweep: chaos workloads against a durable store must
/// leave on-disk state byte-identical to the fault-free run — retries
/// crossing the WAL (journaled dedup ids) must not journal an event
/// twice.
#[test]
fn persisted_state_survives_fault_storms_byte_identical() {
    let base_dir = tdir("base");
    let (_, _, base_summary) = run_workload(None, Some(persist_cfg(&base_dir)), u64::MAX - 1);
    assert!(base_summary.clean_shutdown);
    let baseline = recovered_encoding(&base_dir);

    for seed in 0..PERSIST_SEEDS {
        let dir = tdir(&format!("s{seed}"));
        let (_, stats, summary) =
            run_workload(Some(NetFaultPlan::new(seed)), Some(persist_cfg(&dir)), seed);
        assert_eq!(stats.torn_lines, 0, "seed {seed}");
        assert!(summary.clean_shutdown, "seed {seed}");
        let recovered = recovered_encoding(&dir);
        assert_eq!(
            recovered, baseline,
            "seed {seed}: recovered persisted state diverged from the fault-free baseline"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    std::fs::remove_dir_all(&base_dir).expect("cleanup");
}
