//! `nws-client`: a resilient client for the daemon's JSON-lines protocol.
//!
//! The daemon's serving layer survives hostile networks (see DESIGN.md
//! §15); this crate is the matching client half. A [`Client`] owns one
//! logical session to a daemon and hides the physical connections under
//! it:
//!
//! - **Reconnection** — a dropped, reset, or timed-out connection is
//!   replaced transparently, with jittered exponential backoff between
//!   attempts (deterministic per [`ClientConfig::jitter_seed`], so chaos
//!   harness runs replay byte-for-byte).
//! - **Per-request deadlines** — every request bounds its response wait
//!   by [`ClientConfig::request_timeout_ms`]; a deadline miss drops the
//!   connection and retries like any other transport fault.
//! - **Exactly-once mutations** — every state-changing request is stamped
//!   with a client-generated idempotency key (`request_id`) *once*, and
//!   the same key is reused across retries and reconnects. The daemon's
//!   dedup window recognises redelivery and replays the original ack, so
//!   a retry storm applies each mutation exactly once.
//! - **Overload cooperation** — an `overloaded` shed is retried after the
//!   daemon's own `retry_after_ms` hint rather than hammering the queue.
//!
//! Semantic errors (`"ok": false` with any other error text) are returned
//! to the caller, not retried: the daemon *answered*; the answer was no.
//!
//! ```no_run
//! use nws_client::{Client, ClientConfig};
//! use nws_service::Request;
//!
//! let mut client = Client::new(ClientConfig::new("127.0.0.1:7070"));
//! let ack = client.request(&Request::UpdateDemand {
//!     od: "JANET-NL".into(),
//!     size: 2.5e6,
//! })?;
//! assert_eq!(ack.get("ok").and_then(nws_service::json::Json::as_bool), Some(true));
//! # Ok::<(), nws_client::ClientError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use nws_service::json::{parse, Json};
use nws_service::protocol::parse_incoming;
use nws_service::Request;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Configuration for one [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon TCP address (`host:port`).
    pub addr: String,
    /// Per-connection-attempt timeout, milliseconds.
    pub connect_timeout_ms: u64,
    /// Per-request response deadline, milliseconds: a response that takes
    /// longer counts as a transport fault (reconnect + retry).
    pub request_timeout_ms: u64,
    /// First backoff delay, milliseconds (doubled per consecutive
    /// failure).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_max_ms: u64,
    /// Attempts per request (first try + retries) before
    /// [`ClientError::Exhausted`].
    pub max_attempts: u32,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Prefix of generated idempotency keys. Give every concurrent client
    /// a distinct id or their keys may collide in the daemon's dedup
    /// window.
    pub client_id: String,
}

impl ClientConfig {
    /// Defaults: 1 s connects, 5 s request deadline, 10→500 ms backoff,
    /// 8 attempts, client id `"nws"`.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            connect_timeout_ms: 1_000,
            request_timeout_ms: 5_000,
            backoff_base_ms: 10,
            backoff_max_ms: 500,
            max_attempts: 8,
            jitter_seed: 1,
            client_id: "nws".into(),
        }
    }
}

/// Why a request could not be answered.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed at the transport level (connect failures,
    /// resets, deadline misses, overload sheds). `last` describes the
    /// final failure.
    Exhausted {
        /// Attempts made (= [`ClientConfig::max_attempts`]).
        attempts: u32,
        /// The last transport-level failure, as text.
        last: String,
    },
    /// The request line itself is malformed (raw-line API only).
    BadRequest(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            ClientError::BadRequest(msg) => write!(f, "bad request line: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Transport-level counters a harness can assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful connections established (first + re-connections).
    pub connects: u64,
    /// Connections beyond the first — i.e. recoveries from a fault.
    pub reconnects: u64,
    /// Request attempts beyond each request's first try.
    pub retries: u64,
    /// Newline-terminated response lines that failed to parse. The daemon
    /// guarantees line-atomic writes, so this must stay 0 — the chaos
    /// harness asserts exactly that.
    pub torn_lines: u64,
    /// `overloaded` sheds honored (slept, then retried).
    pub overload_sheds: u64,
    /// Acks carrying `"duplicate": true` — the daemon recovered the
    /// request id from its WAL and confirmed the mutation was already
    /// applied.
    pub duplicate_acks: u64,
    /// Request lines written to a socket (including re-sends).
    pub requests_sent: u64,
}

/// One live physical connection: split read/write halves of one stream.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A reconnecting, deadline-bounded, exactly-once client session.
#[derive(Debug)]
pub struct Client {
    cfg: ClientConfig,
    conn: Option<ConnDebug>,
    rng: u64,
    next_id: u64,
    stats: ClientStats,
}

/// `Conn` holds a `BufReader` (no useful `Debug`); wrap it so `Client`
/// can still derive `Debug` for error reporting.
struct ConnDebug(Conn);

impl std::fmt::Debug for ConnDebug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Conn")
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Client {
    /// Creates a client; no connection is made until the first request.
    pub fn new(cfg: ClientConfig) -> Self {
        let rng = splitmix64(cfg.jitter_seed ^ 0x636c_6965_6e74); // "client"
        Client {
            cfg,
            conn: None,
            rng,
            next_id: 0,
            stats: ClientStats::default(),
        }
    }

    /// Transport counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Whether a physical connection is currently open.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Sends one typed request and returns the daemon's response object.
    ///
    /// State-changing requests are stamped with a fresh idempotency key;
    /// the key is reused verbatim across retries, so redelivery after a
    /// fault is applied exactly once by the daemon.
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] when every attempt failed at the
    /// transport level. A semantic `"ok": false` response is an `Ok`
    /// return — inspect the object.
    pub fn request(&mut self, req: &Request) -> Result<Json, ClientError> {
        let mut line = req.to_json();
        if req.is_state_changing() {
            let id = self.fresh_id();
            if let Json::Obj(pairs) = &mut line {
                pairs.push(("request_id".to_string(), Json::Str(id)));
            }
        }
        self.exchange(&line.encode())
    }

    /// Sends one raw request line (no trailing newline). A state-changing
    /// line that lacks a `request_id` gets one injected, so raw-line
    /// workloads keep exactly-once semantics; a line that already carries
    /// one is sent untouched.
    ///
    /// # Errors
    /// [`ClientError::BadRequest`] when the line does not parse as a
    /// request; [`ClientError::Exhausted`] as for [`Client::request`].
    pub fn request_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        let inc = parse_incoming(line.trim()).map_err(ClientError::BadRequest)?;
        if inc.request_id.is_none() && inc.req.is_state_changing() {
            let id = self.fresh_id();
            let mut doc = inc.req.to_json();
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("request_id".to_string(), Json::Str(id)));
            }
            return self.exchange(&doc.encode());
        }
        self.exchange(line.trim())
    }

    /// Requests a clean daemon shutdown. A lost `bye` ack is tolerated —
    /// the daemon tearing the connection down while going away is the
    /// expected race — so the return distinguishes "acked" (`Some`) from
    /// "sent, ack lost" (`None`).
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] only when the shutdown line could not
    /// be *written* to any connection at all.
    pub fn shutdown(&mut self) -> Result<Option<Json>, ClientError> {
        let line = Request::Shutdown.to_json().encode();
        let attempts = self.cfg.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                self.sleep_backoff(attempt - 1);
            }
            let had_conn = self.conn.is_some();
            match self.attempt(&line) {
                Ok(resp) => return Ok(Some(resp)),
                Err(e) => {
                    self.drop_conn();
                    // The write went out on an established connection and
                    // only the ack is missing: the daemon is either down
                    // already or draining — both mean shutdown succeeded.
                    if had_conn {
                        return Ok(None);
                    }
                    last = e;
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// A fresh idempotency key: `<client_id>-<seed tag>-<counter>`.
    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!(
            "{}-{:08x}-{}",
            self.cfg.client_id,
            splitmix64(self.cfg.jitter_seed) as u32,
            self.next_id
        )
    }

    /// The full retry loop around one prepared line.
    fn exchange(&mut self, line: &str) -> Result<Json, ClientError> {
        let attempts = self.cfg.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            match self.attempt(line) {
                Ok(resp) => {
                    if is_overloaded(&resp) {
                        // Cooperate with the shedder: honor its hint (but
                        // still jitter so synchronized clients desync).
                        self.stats.overload_sheds += 1;
                        last = "overloaded".into();
                        let hint = resp
                            .get("retry_after_ms")
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                        std::thread::sleep(
                            Duration::from_millis(hint) + self.jittered(self.cfg.backoff_base_ms),
                        );
                        continue;
                    }
                    if resp.get("duplicate").and_then(Json::as_bool) == Some(true) {
                        self.stats.duplicate_acks += 1;
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.drop_conn();
                    last = e;
                    self.sleep_backoff(attempt);
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// One write + read over the current (or a fresh) connection. Any
    /// `Err` means "transport fault; reconnect and retry".
    fn attempt(&mut self, line: &str) -> Result<Json, String> {
        self.ensure_connected()?;
        let conn = &mut self.conn.as_mut().expect("just connected").0;
        self.stats.requests_sent += 1;
        conn.writer
            .write_all(line.as_bytes())
            .and_then(|()| conn.writer.write_all(b"\n"))
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("write: {e}"))?;
        read_response(&mut conn.reader, &mut self.stats)
    }

    /// Connects (if needed), applies the deadline, and consumes the
    /// greeting line.
    fn ensure_connected(&mut self) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let addr = resolve(&self.cfg.addr)?;
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.cfg.connect_timeout_ms.max(1)),
        )
        .map_err(|e| format!("connect {}: {e}", self.cfg.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(
                self.cfg.request_timeout_ms.max(1),
            )))
            .map_err(|e| format!("set deadline: {e}"))?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut conn = Conn {
            reader: BufReader::new(stream),
            writer,
        };
        // First line is the daemon's hello (or a `too_many_connections`
        // error, which is a failed connect from the session's viewpoint).
        let greeting = read_response(&mut conn.reader, &mut self.stats)?;
        match greeting.get("cmd") {
            Some(Json::Str(cmd)) if cmd == "hello" => {}
            _ => {
                let text = greeting.encode();
                return Err(format!("expected hello greeting, got: {text}"));
            }
        }
        if self.stats.connects > 0 {
            self.stats.reconnects += 1;
        }
        self.stats.connects += 1;
        self.conn = Some(ConnDebug(conn));
        Ok(())
    }

    fn drop_conn(&mut self) {
        self.conn = None;
    }

    /// Sleeps the jittered exponential backoff for the given retry index.
    fn sleep_backoff(&mut self, attempt: u32) {
        let exp = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cfg.backoff_max_ms);
        let delay = self.jittered(exp);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Half-fixed half-random jitter: `ms/2 + rng % (ms/2 + 1)`,
    /// deterministic per seed.
    fn jittered(&mut self, ms: u64) -> Duration {
        self.rng = splitmix64(self.rng);
        let half = ms / 2;
        Duration::from_millis(half + self.rng % (half + 1))
    }

    /// The backoff delays this client would sleep, for tests and for
    /// pre-computing worst-case harness durations.
    #[doc(hidden)]
    pub fn backoff_preview(cfg: &ClientConfig, retries: u32) -> Vec<u64> {
        let mut c = Client::new(cfg.clone());
        (0..retries)
            .map(|attempt| {
                let exp = cfg
                    .backoff_base_ms
                    .saturating_mul(1u64 << attempt.min(16))
                    .min(cfg.backoff_max_ms);
                c.jittered(exp).as_millis() as u64
            })
            .collect()
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))
}

fn is_overloaded(resp: &Json) -> bool {
    matches!(resp.get("error"), Some(Json::Str(e)) if e == "overloaded")
}

/// Reads one newline-terminated response. Distinguishes the two failure
/// shapes the chaos harness cares about: a line that *ends* (has its
/// `\n`) but does not parse is a **torn line** — a daemon atomicity bug,
/// counted in [`ClientStats::torn_lines`] — while bytes cut off before
/// any `\n` are an ordinary connection death (reconnect and retry).
fn read_response(
    reader: &mut BufReader<TcpStream>,
    stats: &mut ClientStats,
) -> Result<Json, String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("connection closed by daemon".into()),
        Ok(_) if !line.ends_with('\n') => Err("connection died mid-line".into()),
        Ok(_) => match parse(line.trim()) {
            Ok(resp @ Json::Obj(_)) => Ok(resp),
            Ok(_) | Err(_) => {
                stats.torn_lines += 1;
                Err(format!("torn response line: {:?}", line.trim()))
            }
        },
        Err(e) => Err(format!("read: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Same seed → the same jittered backoff schedule; different seeds →
    /// (almost surely) different ones. Deterministic retries are what let
    /// the chaos harness double-run byte-identically.
    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let mut cfg = ClientConfig::new("127.0.0.1:1");
        cfg.backoff_base_ms = 8;
        cfg.backoff_max_ms = 64;
        cfg.jitter_seed = 7;
        let a = Client::backoff_preview(&cfg, 8);
        let b = Client::backoff_preview(&cfg, 8);
        assert_eq!(a, b);
        for (i, ms) in a.iter().enumerate() {
            let exp = (8u64 << i.min(16)).min(64);
            assert!(
                *ms >= exp / 2 && *ms <= exp,
                "delay {ms} out of [{}, {exp}]",
                exp / 2
            );
        }
        cfg.jitter_seed = 8;
        assert_ne!(a, Client::backoff_preview(&cfg, 8));
    }

    /// Idempotency keys are unique per request and namespaced by client.
    #[test]
    fn fresh_ids_are_unique_and_namespaced() {
        let mut cfg = ClientConfig::new("127.0.0.1:1");
        cfg.client_id = "c7".into();
        let mut c = Client::new(cfg.clone());
        let a = c.fresh_id();
        let b = c.fresh_id();
        assert_ne!(a, b);
        assert!(a.starts_with("c7-"), "{a}");
        let mut other = Client::new(ClientConfig {
            client_id: "c8".into(),
            ..cfg
        });
        assert_ne!(a, other.fresh_id());
    }

    /// A newline-terminated garbage line counts as torn; a cut-off line
    /// counts as a connection death (and not as torn).
    #[test]
    fn torn_vs_truncated_classification() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut a, _) = listener.accept().unwrap();
            a.write_all(b"{\"truncated\":\n").unwrap(); // torn: has its newline
            let (mut b, _) = listener.accept().unwrap();
            b.write_all(b"{\"cut").unwrap(); // truncated: dies mid-line
        });
        let mut stats = ClientStats::default();
        let s1 = TcpStream::connect(addr).unwrap();
        let err = read_response(&mut BufReader::new(s1), &mut stats).unwrap_err();
        assert!(err.contains("torn"), "{err}");
        assert_eq!(stats.torn_lines, 1);
        let s2 = TcpStream::connect(addr).unwrap();
        let err = read_response(&mut BufReader::new(s2), &mut stats).unwrap_err();
        assert!(err.contains("mid-line") || err.contains("closed"), "{err}");
        assert_eq!(stats.torn_lines, 1, "truncation is not a torn line");
        server.join().unwrap();
    }

    /// The raw-line API injects an idempotency key on state-changing
    /// lines that lack one, and leaves caller-provided keys untouched.
    #[test]
    fn raw_lines_get_ids_injected() {
        // No daemon listening: the exchange exhausts instantly with
        // 1 attempt and no backoff, letting us probe only the id logic.
        let mut cfg = ClientConfig::new("127.0.0.1:1");
        cfg.max_attempts = 1;
        cfg.connect_timeout_ms = 10;
        cfg.backoff_base_ms = 0;
        let mut c = Client::new(cfg);
        assert!(matches!(
            c.request_raw("{\"cmd\":\"set_theta\""),
            Err(ClientError::BadRequest(_))
        ));
        let before = c.next_id;
        let _ = c.request_raw("{\"cmd\":\"set_theta\",\"theta\":2.0}");
        assert_eq!(c.next_id, before + 1, "state-changing line got an id");
        let _ = c.request_raw("{\"cmd\":\"set_theta\",\"theta\":2.0,\"request_id\":\"mine\"}");
        assert_eq!(c.next_id, before + 1, "caller-provided id kept");
        let _ = c.request_raw("{\"cmd\":\"query_rates\"}");
        assert_eq!(c.next_id, before + 1, "reads carry no id");
    }
}
