//! Trace replay under a re-solve budget, scored against a per-tick oracle.
//!
//! Replay drives a [`ServiceState`] through a [`Trace`] tick by tick. A
//! tick is one transaction: the full demand snapshot lands as a single
//! batched `update_demands` spec mutation (one epoch rebuild when a solve
//! follows), then any link events. Whether the tick's spec change is
//! followed by a warm re-solve is the *budget policy*:
//!
//! - **reactive**: re-solve on every tick with `t ≡ 0 (mod N)`, using the
//!   tick's observed demands;
//! - **forecast**: re-solve on the same schedule, but against *predicted*
//!   mid-window demands (`h = (N−1)/2` ticks ahead), so the installed
//!   configuration matches the middle of the window it has to serve rather
//!   than its opening tick. The prediction is *anchored*: it starts from
//!   the tick's observed demand and adds only the (damped, relatively
//!   capped) Holt trend step `d·h·b`, never the smoothed level — so when
//!   the trend is uninformative the forecast solve degenerates to the
//!   reactive one instead of paying the smoother's lag, and a transient
//!   (flash-crowd onset) cannot catapult the extrapolation. An optional
//!   hysteresis dead-band suppresses installs whose rates barely move
//!   (rate-churn guard).
//!
//! Link events always force a re-solve in both modes — serving rates for
//! a fibre that no longer exists is not a budget question.
//!
//! The oracle re-solves on *every* tick with the observed demands; its
//! certified objective is the best any policy could deliver. Scoring
//! compares the replayed state's *delivered* objective (installed rates
//! evaluated against the tick's true task, via
//! [`ServiceState::evaluate_installed`]) against the oracle's, plus
//! per-OD relative errors derived from the utility model: the paper's
//! utility is `A_k = 1 − E[SRE_k]`, so `√(1 − A_k)` is the expected
//! relative error of OD `k`'s estimate.

use crate::forecast::{HoltConfig, HoltForecaster, Hysteresis};
use crate::trace::Trace;
use nws_obs::Recorder;
use nws_service::{Request, ServiceError, ServiceState};

/// Floor for predicted demands handed to the solver (the protocol bound
/// is `size > 1`).
const MIN_PREDICTED_SIZE: f64 = 1.5;

/// How a replay decides which ticks re-solve.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Re-solve on schedule with observed demands.
    Reactive,
    /// Re-solve on schedule with Holt-predicted mid-window demands.
    Forecast,
}

impl Mode {
    /// The wire/report name of the mode.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Reactive => "reactive",
            Mode::Forecast => "forecast",
        }
    }
}

/// Budget policy for one replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPolicy {
    /// Re-solve every `N` ticks (1 = every tick). Must be ≥ 1.
    pub resolve_every: u64,
    /// Reactive or forecast scheduling.
    pub mode: Mode,
    /// Smoothing parameters of the per-OD forecasters (forecast mode).
    pub holt: HoltConfig,
    /// Damping applied to the trend step of an anchored forecast
    /// (forecast mode): the solve input is `y + damping·h·b`. 1 trusts the
    /// trend fully, 0 reduces forecast mode to reactive.
    pub trend_damping: f64,
    /// Relative cap on the trend step: `|step| ≤ cap·y`. Guards against
    /// runaway extrapolation off a transient. Non-positive disables it.
    pub step_cap: f64,
    /// Relative dead-band on monitor-rate changes; 0 installs every solve.
    pub hysteresis: f64,
}

impl ReplayPolicy {
    /// A reactive policy re-solving every `n` ticks.
    pub fn reactive(n: u64) -> Self {
        ReplayPolicy {
            resolve_every: n.max(1),
            mode: Mode::Reactive,
            holt: HoltConfig::default(),
            trend_damping: 0.7,
            step_cap: 0.2,
            hysteresis: 0.0,
        }
    }

    /// A forecast policy re-solving every `n` ticks.
    pub fn forecast(n: u64) -> Self {
        ReplayPolicy {
            mode: Mode::Forecast,
            ..ReplayPolicy::reactive(n)
        }
    }
}

/// The oracle's answer for one tick.
#[derive(Debug, Clone)]
pub struct OracleTick {
    /// Certified optimal objective for the tick's spec.
    pub objective: f64,
    /// Per-OD utilities at the optimum, tracked-OD order.
    pub utilities: Vec<f64>,
}

/// Score of one replayed tick.
#[derive(Debug, Clone)]
pub struct TickScore {
    /// Tick index.
    pub t: u64,
    /// Objective the installed rates deliver against the tick's true task.
    pub delivered: f64,
    /// The oracle's certified optimum for the same task.
    pub oracle: f64,
    /// Relative optimality gap `(oracle − delivered)/oracle`.
    pub gap: f64,
    /// Whether this tick ran (and installed) a re-solve.
    pub resolved: bool,
}

/// Everything one replay run produces.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The policy that ran.
    pub policy: ReplayPolicy,
    /// Ticks replayed.
    pub ticks: u64,
    /// Solves executed (scheduled, forced by link events, or startup).
    pub resolves: u64,
    /// Scheduled solves whose result the hysteresis dead-band discarded.
    pub suppressed: u64,
    /// Per-tick scores in order.
    pub per_tick: Vec<TickScore>,
    /// Mean relative optimality gap over all ticks.
    pub mean_gap: f64,
    /// Worst per-tick relative gap.
    pub max_gap: f64,
    /// Gap at the final tick.
    pub final_gap: f64,
    /// Quantiles of the delivered per-OD expected relative error
    /// `√(1 − A_k)`, pooled over every (tick, OD).
    pub err_p50: f64,
    /// 90th percentile of the pooled delivered per-OD relative error.
    pub err_p90: f64,
    /// 99th percentile of the pooled delivered per-OD relative error.
    pub err_p99: f64,
    /// Total L1 rate movement across installs (churn).
    pub rate_churn: f64,
    /// Mean absolute relative one-step forecast error (forecast mode).
    pub forecast_mae: Option<f64>,
}

/// Per-OD expected relative error at utility `a` under the SRE model.
fn rel_error(a: f64) -> f64 {
    (1.0 - a).max(0.0).sqrt()
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Runs the oracle: a fresh certified re-solve on every tick's true spec.
/// Warm-started tick to tick (the optimum is the optimum regardless of the
/// starting point — every solve is KKT-checked).
///
/// # Errors
/// Any spec or solver error while replaying the trace.
pub fn oracle_series(base: &ServiceState, trace: &Trace) -> Result<Vec<OracleTick>, ServiceError> {
    let mut s = base.clone();
    if s.installed().is_none() {
        s.resolve(false)?;
    }
    let mut out = Vec::with_capacity(trace.ticks.len());
    for tick in &trace.ticks {
        apply_tick_spec(&mut s, tick)?;
        s.resolve(false)?;
        let (objective, utilities) = s.evaluate_installed()?;
        out.push(OracleTick {
            objective,
            utilities,
        });
    }
    Ok(out)
}

/// Applies one tick's spec changes (demand batch, then link events) as
/// spec-only mutations.
fn apply_tick_spec(
    s: &mut ServiceState,
    tick: &crate::trace::TraceTick,
) -> Result<(), ServiceError> {
    s.mutate_spec(&Request::UpdateDemands {
        updates: tick.demands.clone(),
    })?;
    for ev in &tick.events {
        s.mutate_spec(&ev.to_request())?;
    }
    Ok(())
}

/// Replays `trace` against a copy of `base` under `policy`, scoring every
/// tick against the precomputed `oracle` (from [`oracle_series`] on the
/// same trace). Counters land in `recorder`: `replay_ticks_total`,
/// `replay_resolves_total`, `replay_resolves_skipped_total`,
/// `replay_installs_suppressed_total`, and the
/// `replay_forecast_rel_error_pct` histogram.
///
/// # Errors
/// Any spec or solver error while replaying; also when `oracle` is shorter
/// than the trace.
pub fn run_replay(
    base: &ServiceState,
    trace: &Trace,
    policy: &ReplayPolicy,
    oracle: &[OracleTick],
    recorder: &Recorder,
) -> Result<ReplayOutcome, ServiceError> {
    if oracle.len() < trace.ticks.len() {
        return Err(ServiceError::State(format!(
            "oracle series has {} ticks, trace has {}",
            oracle.len(),
            trace.ticks.len()
        )));
    }
    let n = policy.resolve_every.max(1);
    let horizon = (n - 1) as f64 / 2.0;
    let hysteresis = Hysteresis {
        dead_band: policy.hysteresis,
    };

    let mut s = base.clone();
    if s.installed().is_none() {
        s.resolve(false)?;
    }
    // One forecaster per tracked OD, in tracking order; trace demand
    // snapshots are matched to ODs by name.
    let mut forecasters: Vec<HoltForecaster> =
        vec![HoltForecaster::new(policy.holt); s.ods().len()];
    let od_index = |s: &ServiceState, name: &str| s.ods().iter().position(|o| o.name == name);

    let mut resolves = 0u64;
    let mut suppressed = 0u64;
    let mut churn = 0.0f64;
    let mut forecast_errs: Vec<f64> = Vec::new();
    let mut per_tick: Vec<TickScore> = Vec::with_capacity(trace.ticks.len());
    let mut pooled_errs: Vec<f64> = Vec::new();

    for tick in &trace.ticks {
        recorder.counter_add("replay_ticks_total", 1);

        // One-step-ahead forecast quality, judged before the tick's
        // observations are absorbed.
        if matches!(policy.mode, Mode::Forecast) {
            for (name, actual) in &tick.demands {
                if let Some(k) = od_index(&s, name) {
                    if forecasters[k].observations() >= 2 {
                        let err = (forecasters[k].predict(1.0) - actual).abs() / actual;
                        forecast_errs.push(err);
                        recorder.observe("replay_forecast_rel_error_pct", 100.0 * err);
                    }
                }
            }
        }

        // The tick is one transaction: demand batch + link events, then at
        // most one re-solve.
        apply_tick_spec(&mut s, tick)?;
        for (name, actual) in &tick.demands {
            if let Some(k) = od_index(&s, name) {
                forecasters[k].observe(*actual);
            }
        }

        let scheduled = tick.t % n == 0;
        let forced = !tick.events.is_empty();
        let mut resolved = false;
        if scheduled || forced {
            let before: Vec<f64> = s
                .installed()
                .map(|i| i.rates_base.clone())
                .unwrap_or_default();
            match policy.mode {
                Mode::Reactive => {
                    s.resolve(false)?;
                    resolves += 1;
                    resolved = true;
                }
                Mode::Forecast => {
                    // Solve a scratch copy whose demands are the predicted
                    // mid-window sizes; the real spec keeps the observed
                    // truth for scoring and for future forecasts. The
                    // prediction anchors at the observed demand (already
                    // applied to the spec) and adds the damped, capped
                    // trend step towards mid-window.
                    let mut scratch = s.clone();
                    if horizon > 0.0 && !forced {
                        let predicted: Vec<(String, f64)> = s
                            .ods()
                            .iter()
                            .enumerate()
                            .map(|(k, o)| {
                                let f = &forecasters[k];
                                let step =
                                    policy.trend_damping * (f.predict(horizon) - f.predict(0.0));
                                let cap = if policy.step_cap > 0.0 {
                                    policy.step_cap * o.size
                                } else {
                                    f64::INFINITY
                                };
                                let size = (o.size + step.clamp(-cap, cap)).max(MIN_PREDICTED_SIZE);
                                (o.name.clone(), size)
                            })
                            .collect();
                        scratch.mutate_spec(&Request::UpdateDemands { updates: predicted })?;
                    }
                    scratch.resolve(false)?;
                    resolves += 1;
                    let candidate = &scratch.installed().expect("just resolved").rates_base;
                    if forced || before.is_empty() || hysteresis.should_install(&before, candidate)
                    {
                        s.install_from(&scratch)?;
                        resolved = true;
                    } else {
                        suppressed += 1;
                        recorder.counter_add("replay_installs_suppressed_total", 1);
                    }
                }
            }
            recorder.counter_add("replay_resolves_total", 1);
            if resolved {
                if let Some(inst) = s.installed() {
                    if before.len() == inst.rates_base.len() {
                        churn += before
                            .iter()
                            .zip(&inst.rates_base)
                            .map(|(a, b)| (a - b).abs())
                            .sum::<f64>();
                    }
                }
            }
        } else {
            recorder.counter_add("replay_resolves_skipped_total", 1);
        }

        // Score the tick: what the installed rates deliver on the *true*
        // task versus the oracle's certified optimum.
        let (delivered, utilities) = s.evaluate_installed()?;
        let o = &oracle[tick.t as usize];
        let gap = (o.objective - delivered) / o.objective.abs().max(f64::MIN_POSITIVE);
        pooled_errs.extend(utilities.iter().map(|&a| rel_error(a)));
        per_tick.push(TickScore {
            t: tick.t,
            delivered,
            oracle: o.objective,
            gap,
            resolved,
        });
    }

    let ticks = per_tick.len() as u64;
    let mean_gap = per_tick.iter().map(|x| x.gap).sum::<f64>() / ticks.max(1) as f64;
    let max_gap = per_tick.iter().map(|x| x.gap).fold(0.0, f64::max);
    let final_gap = per_tick.last().map(|x| x.gap).unwrap_or(0.0);
    pooled_errs.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
    let forecast_mae = if forecast_errs.is_empty() {
        None
    } else {
        Some(forecast_errs.iter().sum::<f64>() / forecast_errs.len() as f64)
    };
    Ok(ReplayOutcome {
        policy: policy.clone(),
        ticks,
        resolves,
        suppressed,
        err_p50: quantile(&pooled_errs, 0.50),
        err_p90: quantile(&pooled_errs, 0.90),
        err_p99: quantile(&pooled_errs, 0.99),
        per_tick,
        mean_gap,
        max_gap,
        final_gap,
        rate_churn: churn,
        forecast_mae,
    })
}
