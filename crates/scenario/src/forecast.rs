//! Holt-style demand forecasting with a hysteresis dead-band.
//!
//! Each tracked OD gets one [`HoltForecaster`]: double exponential
//! smoothing with level `ℓ` and trend `b`,
//!
//! ```text
//! ℓ_t = α·y_t + (1−α)·(ℓ_{t−1} + b_{t−1})
//! b_t = β·(ℓ_t − ℓ_{t−1}) + (1−β)·b_{t−1}
//! ŷ_{t+h} = ℓ_t + h·b_t
//! ```
//!
//! With `β = 0` this degenerates to simple exponential smoothing — the
//! AR(1)-style "tomorrow looks like a discounted today" predictor; with
//! `β > 0` the trend term lets the forecast lead a diurnal ramp instead of
//! lagging it. State is clamped to a finite band so predictions stay
//! finite and non-negative for *any* finite history (see the proptest in
//! `tests/forecaster.rs`).
//!
//! [`Hysteresis`] is the churn guard on the *output* side: a re-solve
//! whose rates barely move is not worth installing (every installation is
//! monitor reconfiguration in the field), so scheduled solves whose
//! maximum relative rate change stays inside the dead-band are suppressed.

/// Smoothing parameters for [`HoltForecaster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltConfig {
    /// Level smoothing factor `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Trend smoothing factor `β ∈ [0, 1]`. Zero disables the trend term.
    pub beta: f64,
}

impl Default for HoltConfig {
    fn default() -> Self {
        HoltConfig {
            alpha: 0.6,
            beta: 0.3,
        }
    }
}

/// Forecast state is clamped to ±`STATE_BOUND` so `ℓ + h·b` cannot
/// overflow to infinity even for histories near `f64::MAX`.
const STATE_BOUND: f64 = 1e150;

/// One OD's demand predictor (Holt double exponential smoothing).
#[derive(Debug, Clone)]
pub struct HoltForecaster {
    cfg: HoltConfig,
    level: f64,
    trend: f64,
    seen: usize,
}

impl HoltForecaster {
    /// A forecaster with no history yet.
    ///
    /// # Panics
    /// Panics if either smoothing factor is outside `[0, 1]`.
    pub fn new(cfg: HoltConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.alpha) && (0.0..=1.0).contains(&cfg.beta),
            "smoothing factors must lie in [0, 1]"
        );
        HoltForecaster {
            cfg,
            level: 0.0,
            trend: 0.0,
            seen: 0,
        }
    }

    /// Number of observations absorbed so far.
    pub fn observations(&self) -> usize {
        self.seen
    }

    /// Absorbs one observation. Non-finite or negative samples are
    /// clamped into `[0, STATE_BOUND]` first — a hostile trace line must
    /// not poison the predictor state.
    pub fn observe(&mut self, y: f64) {
        let y = if y.is_finite() {
            y.clamp(0.0, STATE_BOUND)
        } else {
            0.0
        };
        match self.seen {
            0 => {
                self.level = y;
            }
            1 => {
                // The first trend estimate is the first difference.
                self.trend = y - self.level;
                self.level = y;
            }
            _ => {
                let prev_level = self.level;
                self.level =
                    self.cfg.alpha * y + (1.0 - self.cfg.alpha) * (prev_level + self.trend);
                self.trend =
                    self.cfg.beta * (self.level - prev_level) + (1.0 - self.cfg.beta) * self.trend;
            }
        }
        self.level = self.level.clamp(-STATE_BOUND, STATE_BOUND);
        self.trend = self.trend.clamp(-STATE_BOUND, STATE_BOUND);
        self.seen += 1;
    }

    /// Predicts the demand `horizon` ticks ahead of the last observation.
    /// Always finite and non-negative; with fewer than 2 observations it
    /// falls back to the last level (no trend extrapolation from a single
    /// sample).
    pub fn predict(&self, horizon: f64) -> f64 {
        let horizon = if horizon.is_finite() {
            horizon.max(0.0)
        } else {
            0.0
        };
        let raw = if self.seen < 2 {
            self.level
        } else {
            self.level + horizon * self.trend
        };
        raw.clamp(0.0, STATE_BOUND)
    }
}

/// Dead-band policy on monitor-rate changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hysteresis {
    /// Relative dead-band: a candidate configuration is installed only if
    /// `max_i |p'_i − p_i| / max_i p_i` exceeds this. Zero installs every
    /// solve.
    pub dead_band: f64,
}

impl Hysteresis {
    /// Whether `candidate` differs enough from `installed` to be worth
    /// installing. Vectors must have equal length.
    pub fn should_install(&self, installed: &[f64], candidate: &[f64]) -> bool {
        debug_assert_eq!(installed.len(), candidate.len());
        if self.dead_band <= 0.0 {
            return true;
        }
        let scale = installed
            .iter()
            .fold(0.0_f64, |m, &p| m.max(p.abs()))
            .max(f64::MIN_POSITIVE);
        let max_delta = installed
            .iter()
            .zip(candidate)
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()));
        max_delta / scale > self.dead_band
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_a_linear_ramp() {
        let mut f = HoltForecaster::new(HoltConfig::default());
        for t in 0..50 {
            f.observe(100.0 + 10.0 * t as f64);
        }
        // One step ahead of the last sample (590): the trend is learned.
        let pred = f.predict(1.0);
        assert!((pred - 600.0).abs() < 10.0, "predicted {pred}");
        // The trend extrapolates with the horizon.
        assert!(f.predict(5.0) > f.predict(1.0));
    }

    #[test]
    fn constant_series_predicts_itself() {
        let mut f = HoltForecaster::new(HoltConfig::default());
        for _ in 0..20 {
            f.observe(42.0);
        }
        for h in [0.0, 1.0, 10.0] {
            assert!((f.predict(h) - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_zero_is_trendless() {
        let mut f = HoltForecaster::new(HoltConfig {
            alpha: 0.5,
            beta: 0.0,
        });
        // The initial first-difference seeds the trend even with β = 0,
        // so feed equal first samples and ramp afterwards.
        f.observe(100.0);
        f.observe(100.0);
        for t in 0..20 {
            f.observe(100.0 + 10.0 * t as f64);
        }
        assert_eq!(f.predict(1.0), f.predict(100.0));
    }

    #[test]
    fn hostile_samples_are_contained() {
        let mut f = HoltForecaster::new(HoltConfig::default());
        for y in [f64::NAN, f64::INFINITY, -5.0, f64::MAX, 1e-300] {
            f.observe(y);
        }
        let p = f.predict(f64::INFINITY);
        assert!(p.is_finite() && p >= 0.0);
    }

    #[test]
    fn dead_band_filters_small_moves() {
        let h = Hysteresis { dead_band: 0.05 };
        let installed = [0.5, 0.2, 0.0];
        assert!(!h.should_install(&installed, &[0.51, 0.2, 0.0])); // 2% of max
        assert!(h.should_install(&installed, &[0.6, 0.2, 0.0])); // 20% of max
        let off = Hysteresis { dead_band: 0.0 };
        assert!(off.should_install(&installed, &installed));
    }
}
