//! The JSON-lines trace format: a typed, replayable event stream of
//! day-long demand evolution. See `docs/FORMATS.md` ("Trace files").
//!
//! A trace is a header line followed by one line per tick:
//!
//! ```text
//! {"trace":"nws-trace","version":1,"seed":42,"ticks":48,"ods":[["JANET-NL",10800000],…]}
//! {"t":0,"demands":[["JANET-NL",10523126.7],…],"events":[]}
//! {"t":7,"demands":[…],"events":[{"op":"fail_link","a":"FR","b":"LU"}]}
//! ```
//!
//! Each tick carries a *full* demand snapshot — every tracked OD with its
//! size for that interval — so a replayer turns one tick into exactly one
//! batched `update_demands` transaction, plus zero or more link events.
//! Encoding uses the service's shortest-roundtrip `f64` formatting, so a
//! generate → encode → parse cycle reproduces every demand bit-exactly.

use nws_service::json::{obj, parse, Json};
use nws_service::Request;

/// Metadata line at the top of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// RNG seed the generator was run with (provenance only).
    pub seed: u64,
    /// Number of tick lines that follow.
    pub ticks: u64,
    /// Tracked ODs and their *base* (mean) sizes, in tracking order.
    pub ods: Vec<(String, f64)>,
}

/// A topology event inside a tick.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEvent {
    /// Fail the fibre between two PoPs (both directions).
    Fail {
        /// One endpoint node name.
        a: String,
        /// The other endpoint node name.
        b: String,
    },
    /// Restore a previously failed fibre.
    Restore {
        /// One endpoint node name.
        a: String,
        /// The other endpoint node name.
        b: String,
    },
}

impl LinkEvent {
    /// The wire name of the event (matches the `"op"` field).
    pub fn op(&self) -> &'static str {
        match self {
            LinkEvent::Fail { .. } => "fail_link",
            LinkEvent::Restore { .. } => "restore_link",
        }
    }

    /// The control-plane request this event maps to.
    pub fn to_request(&self) -> Request {
        match self {
            LinkEvent::Fail { a, b } => Request::FailLink {
                a: a.clone(),
                b: b.clone(),
            },
            LinkEvent::Restore { a, b } => Request::RestoreLink {
                a: a.clone(),
                b: b.clone(),
            },
        }
    }

    fn to_json(&self) -> Json {
        let (LinkEvent::Fail { a, b } | LinkEvent::Restore { a, b }) = self;
        obj(vec![
            ("op", Json::Str(self.op().into())),
            ("a", Json::Str(a.clone())),
            ("b", Json::Str(b.clone())),
        ])
    }
}

/// One tick: a full demand snapshot plus any link events.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTick {
    /// Tick index, starting at 0 and strictly increasing.
    pub t: u64,
    /// `(od name, size)` for every tracked OD this interval.
    pub demands: Vec<(String, f64)>,
    /// Link events applied this tick (before the tick is scored).
    pub events: Vec<LinkEvent>,
}

/// A parsed trace: header plus all ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The metadata line.
    pub header: TraceHeader,
    /// All ticks in order.
    pub ticks: Vec<TraceTick>,
}

fn pairs_to_json(pairs: &[(String, f64)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(name, size)| Json::Arr(vec![Json::Str(name.clone()), Json::Num(*size)]))
            .collect(),
    )
}

fn pairs_from_json(v: &Json, key: &str) -> Result<Vec<(String, f64)>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array '{key}'"))?;
    let mut out: Vec<(String, f64)> = Vec::with_capacity(arr.len());
    for (i, entry) in arr.iter().enumerate() {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{key}[{i}] must be a 2-element [name, size] array"))?;
        let name = pair[0]
            .as_str()
            .ok_or_else(|| format!("{key}[{i}] name must be a string"))?;
        let size = pair[1]
            .as_f64()
            .ok_or_else(|| format!("{key}[{i}] size must be numeric"))?;
        if !size.is_finite() || size <= 1.0 {
            return Err(format!(
                "{key}[{i}] ('{name}') must be a finite size > 1 packet, got {size}"
            ));
        }
        if out.iter().any(|(seen, _)| seen == name) {
            return Err(format!("{key}[{i}] duplicates OD '{name}'"));
        }
        out.push((name.to_string(), size));
    }
    Ok(out)
}

impl Trace {
    /// Serializes the trace to its JSON-lines form (trailing newline
    /// included).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &obj(vec![
                ("trace", Json::Str("nws-trace".into())),
                ("version", Json::UInt(1)),
                ("seed", Json::UInt(self.header.seed)),
                ("ticks", Json::UInt(self.header.ticks)),
                ("ods", pairs_to_json(&self.header.ods)),
            ])
            .encode(),
        );
        out.push('\n');
        for tick in &self.ticks {
            out.push_str(
                &obj(vec![
                    ("t", Json::UInt(tick.t)),
                    ("demands", pairs_to_json(&tick.demands)),
                    (
                        "events",
                        Json::Arr(tick.events.iter().map(LinkEvent::to_json).collect()),
                    ),
                ])
                .encode(),
            );
            out.push('\n');
        }
        out
    }

    /// Parses a trace from its JSON-lines form, validating the schema:
    /// header magic/version, tick count, strictly increasing tick indices
    /// from 0, finite sizes > 1 packet, known event ops. Blank lines are
    /// ignored.
    ///
    /// # Errors
    /// A human-readable message naming the offending line.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines.next().ok_or("empty trace file")?;
        let head = parse(first).map_err(|e| format!("header: {e}"))?;
        if head.get("trace").and_then(Json::as_str) != Some("nws-trace") {
            return Err("header: missing '\"trace\":\"nws-trace\"' magic".into());
        }
        match head.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            other => {
                return Err(format!(
                    "header: unsupported version {other:?} (expected 1)"
                ))
            }
        }
        let header = TraceHeader {
            seed: head
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("header: missing integer 'seed'")?,
            ticks: head
                .get("ticks")
                .and_then(Json::as_u64)
                .ok_or("header: missing integer 'ticks'")?,
            ods: pairs_from_json(&head, "ods").map_err(|e| format!("header: {e}"))?,
        };
        if header.ods.is_empty() {
            return Err("header: OD set must not be empty".into());
        }

        let mut ticks = Vec::new();
        for (lineno, line) in lines {
            let lineno = lineno + 1;
            let v = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let t = v
                .get("t")
                .and_then(Json::as_u64)
                .ok_or(format!("line {lineno}: missing integer 't'"))?;
            if t != ticks.len() as u64 {
                return Err(format!(
                    "line {lineno}: tick {t} out of order (expected {})",
                    ticks.len()
                ));
            }
            let demands =
                pairs_from_json(&v, "demands").map_err(|e| format!("line {lineno}: {e}"))?;
            if demands.is_empty() {
                return Err(format!("line {lineno}: 'demands' must be non-empty"));
            }
            let events_arr = v
                .get("events")
                .and_then(Json::as_arr)
                .ok_or(format!("line {lineno}: missing 'events' array"))?;
            let mut events = Vec::with_capacity(events_arr.len());
            for (i, ev) in events_arr.iter().enumerate() {
                let field = |key: &str| {
                    ev.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("line {lineno}: events[{i}] missing string '{key}'"))
                };
                let op = field("op")?;
                let (a, b) = (field("a")?, field("b")?);
                events.push(match op.as_str() {
                    "fail_link" => LinkEvent::Fail { a, b },
                    "restore_link" => LinkEvent::Restore { a, b },
                    other => {
                        return Err(format!("line {lineno}: unknown event op '{other}'"));
                    }
                });
            }
            ticks.push(TraceTick { t, demands, events });
        }
        if ticks.len() as u64 != header.ticks {
            return Err(format!(
                "header declares {} ticks, file has {}",
                header.ticks,
                ticks.len()
            ));
        }
        Ok(Trace { header, ticks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Trace {
        Trace {
            header: TraceHeader {
                seed: 7,
                ticks: 2,
                ods: vec![("A-B".into(), 1000.0), ("B-C".into(), 2000.5)],
            },
            ticks: vec![
                TraceTick {
                    t: 0,
                    demands: vec![("A-B".into(), 1_234.000_000_1), ("B-C".into(), 1999.0)],
                    events: vec![],
                },
                TraceTick {
                    t: 1,
                    demands: vec![("A-B".into(), 900.0), ("B-C".into(), 2100.0)],
                    events: vec![
                        LinkEvent::Fail {
                            a: "FR".into(),
                            b: "LU".into(),
                        },
                        LinkEvent::Restore {
                            a: "FR".into(),
                            b: "LU".into(),
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let trace = tiny();
        let text = trace.encode();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
        // Encoding is canonical: a second cycle is byte-identical.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn malformed_traces_rejected() {
        let good = tiny().encode();
        let cases: Vec<String> = vec![
            String::new(),
            "not json\n".into(),
            good.replacen("nws-trace", "other", 1),
            good.replacen("\"version\":1", "\"version\":2", 1),
            good.replacen("\"ticks\":2", "\"ticks\":3", 1),
            good.replacen("\"t\":1", "\"t\":5", 1),
            good.replacen("fail_link", "explode_link", 1),
            good.replacen("[\"A-B\",900]", "[\"A-B\",0.5]", 1),
            good.replacen("[\"A-B\",900]", "[\"A-B\",\"many\"]", 1),
            // Duplicate OD within one tick's demand snapshot.
            good.replacen("[\"B-C\",1999]", "[\"A-B\",1999]", 1),
        ];
        for bad in cases {
            assert!(Trace::parse(&bad).is_err(), "accepted {bad:?}");
        }
        assert!(Trace::parse(&good).is_ok());
    }
}
