//! Dynamic-traffic scenario engine: seeded trace generation, daemon
//! replay under a re-solve budget, oracle-scored delivered accuracy, and
//! Holt-style demand forecasting with hysteresis.
//!
//! The paper's placement is only optimal for the traffic matrix it was
//! solved against; real demand moves. This crate measures what that
//! movement costs: a [`generate::generate_trace`] day (diurnal sinusoid,
//! flash crowds, link flaps) is replayed tick by tick through a
//! [`nws_service::ServiceState`] whose re-solve cadence is throttled by a
//! [`replay::ReplayPolicy`], and every tick the *delivered* objective of
//! the (possibly stale) installed rates is compared against an oracle
//! that re-solves each tick ([`replay::oracle_series`]). The result is an
//! accuracy-versus-reoptimization-budget curve, and the
//! [`replay::Mode::Forecast`] variant shows how much of the gap a
//! demand predictor claws back at the same budget. See `DESIGN.md` §13.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod forecast;
pub mod generate;
pub mod replay;
pub mod trace;

pub use forecast::{HoltConfig, HoltForecaster, Hysteresis};
pub use generate::{flappable_fibres, generate_trace, GeneratorConfig};
pub use replay::{
    oracle_series, run_replay, Mode, OracleTick, ReplayOutcome, ReplayPolicy, TickScore,
};
pub use trace::{LinkEvent, Trace, TraceHeader, TraceTick};

use nws_obs::Recorder;
use nws_service::json::{obj, Json};
use nws_service::{ServiceError, ServiceState};

/// One row of the accuracy-vs-budget sweep.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The replay outcome.
    pub outcome: ReplayOutcome,
    /// Wall time of the replay run in milliseconds (reporting only — every
    /// accuracy number in the outcome is deterministic).
    pub wall_ms: f64,
}

/// Replays `trace` once per `(mode, budget)` combination — reactive and
/// forecast at every budget in `budgets` — against the shared `oracle`
/// (from [`oracle_series`] on the same trace), and returns the rows in
/// deterministic order (budgets as given, reactive before forecast).
///
/// # Errors
/// Any spec or solver error from a replay run.
pub fn run_sweep(
    base: &ServiceState,
    trace: &Trace,
    oracle: &[OracleTick],
    budgets: &[u64],
    hysteresis: f64,
    recorder: &Recorder,
) -> Result<Vec<SweepEntry>, ServiceError> {
    let mut entries = Vec::with_capacity(budgets.len() * 2);
    for &n in budgets {
        for policy in [ReplayPolicy::reactive(n), {
            let mut p = ReplayPolicy::forecast(n);
            p.hysteresis = hysteresis;
            p
        }] {
            let t0 = std::time::Instant::now();
            let outcome = run_replay(base, trace, &policy, oracle, recorder)?;
            entries.push(SweepEntry {
                outcome,
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    Ok(entries)
}

/// Assembles the `BENCH_replay.json` document from a sweep: trace
/// provenance, oracle summary, and one curve row per `(mode, budget)`.
pub fn bench_report(trace: &Trace, oracle: &[OracleTick], entries: &[SweepEntry]) -> Json {
    let oracle_mean = if oracle.is_empty() {
        0.0
    } else {
        oracle.iter().map(|o| o.objective).sum::<f64>() / oracle.len() as f64
    };
    let curves: Vec<Json> = entries
        .iter()
        .map(|e| {
            let o = &e.outcome;
            let mut pairs = vec![
                ("mode", Json::Str(o.policy.mode.name().into())),
                ("resolve_every", Json::UInt(o.policy.resolve_every)),
                ("hysteresis", Json::Num(o.policy.hysteresis)),
                ("resolves", Json::UInt(o.resolves)),
                ("suppressed", Json::UInt(o.suppressed)),
                ("mean_gap", Json::Num(o.mean_gap)),
                ("max_gap", Json::Num(o.max_gap)),
                ("final_gap", Json::Num(o.final_gap)),
                ("err_p50", Json::Num(o.err_p50)),
                ("err_p90", Json::Num(o.err_p90)),
                ("err_p99", Json::Num(o.err_p99)),
                ("rate_churn", Json::Num(o.rate_churn)),
                ("wall_ms", Json::Num(e.wall_ms)),
            ];
            if let Some(mae) = o.forecast_mae {
                pairs.push(("forecast_mae", Json::Num(mae)));
            }
            obj(pairs)
        })
        .collect();
    obj(vec![
        ("bench", Json::Str("replay".into())),
        (
            "trace",
            obj(vec![
                ("seed", Json::UInt(trace.header.seed)),
                ("ticks", Json::UInt(trace.header.ticks)),
                ("ods", Json::UInt(trace.header.ods.len() as u64)),
                (
                    "link_events",
                    Json::UInt(
                        trace
                            .ticks
                            .iter()
                            .map(|t| t.events.len() as u64)
                            .sum::<u64>(),
                    ),
                ),
            ]),
        ),
        (
            "oracle",
            obj(vec![
                ("mean_objective", Json::Num(oracle_mean)),
                ("resolves", Json::UInt(oracle.len() as u64)),
            ]),
        ),
        ("curves", Json::Arr(curves)),
    ])
}
