//! Seeded day-long trace generation: diurnal demand with staggered peaks,
//! multiplicative per-OD noise, flash crowds with exponential decay, and
//! link flaps on fibres proven safe to fail.
//!
//! Everything is drawn from one `StdRng` in a fixed order, so a given
//! `(base state, config)` pair always produces the identical trace — the
//! replay acceptance gate depends on this.

use crate::trace::{LinkEvent, Trace, TraceHeader, TraceTick};
use nws_service::{Request, ServiceState};
use nws_traffic::dist::LogNormal;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Demands below this floor are clamped up so every generated size passes
/// the protocol's `size > 1` packet bound with margin.
const MIN_SIZE: f64 = 1.5;

/// Shape of the generated day.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of ticks (measurement intervals) to generate.
    pub ticks: u64,
    /// Diurnal period in ticks (48 ticks of 30 min = one day).
    pub period: u64,
    /// Peak-to-trough demand ratio of the sinusoid (≥ 1; 1 = flat).
    pub diurnal_swing: f64,
    /// Coefficient of variation of the per-(tick, OD) lognormal noise.
    pub noise_cv: f64,
    /// Fraction of the period the OD peaks are staggered across (time
    /// zones): OD `k` of `n` peaks `phase_spread·k/n` periods later.
    pub phase_spread: f64,
    /// Number of flash-crowd surges to inject.
    pub flash_crowds: u64,
    /// Demand multiplier at the instant a flash crowd starts (≥ 1).
    pub flash_magnitude: f64,
    /// Exponential decay rate of a surge per tick (factor
    /// `1 + (m−1)·e^{−decay·Δt}`).
    pub flash_decay: f64,
    /// Number of link flaps (`fail_link` … `restore_link`) to inject.
    pub link_flaps: u64,
    /// Ticks between a flap's fail and restore events.
    pub flap_duration: u64,
    /// RNG seed; same seed → byte-identical trace.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            ticks: 48,
            period: 48,
            diurnal_swing: 3.0,
            noise_cv: 0.05,
            phase_spread: 0.25,
            flash_crowds: 2,
            flash_magnitude: 4.0,
            flash_decay: 0.5,
            link_flaps: 1,
            flap_duration: 6,
            seed: 42,
        }
    }
}

/// One scheduled flash crowd.
struct Flash {
    start: u64,
    ods: Vec<usize>,
}

/// One scheduled link flap (fail at `start`, restore at `start + duration`).
struct Flap {
    fibre: (String, String),
    start: u64,
    end: u64,
}

/// Fibres whose solo failure leaves every tracked OD routable *and* the
/// placement solvable — the safe targets for generated flaps. Each
/// candidate is proven by failing it on a scratch copy and re-solving.
pub fn flappable_fibres(base: &ServiceState) -> Vec<(String, String)> {
    base.fibres()
        .into_iter()
        .filter(|(a, b)| {
            let mut probe = base.clone();
            probe
                .mutate_spec(&Request::FailLink {
                    a: a.clone(),
                    b: b.clone(),
                })
                .is_ok()
                && probe.resolve(false).is_ok()
        })
        .collect()
}

/// Generates a trace for `base`'s OD set under `cfg`. Flash crowds and
/// link flaps are placed randomly but deterministically; flaps only land
/// on [`flappable_fibres`] and never overlap in time, so a replayer can
/// apply the stream without ever hitting an unsolvable epoch. If fewer
/// safe slots exist than requested, the surplus flaps are dropped.
///
/// # Panics
/// Panics on a degenerate config (`ticks`/`period` of 0, swing < 1).
pub fn generate_trace(base: &ServiceState, cfg: &GeneratorConfig) -> Trace {
    assert!(cfg.ticks > 0, "need at least one tick");
    assert!(cfg.period > 0, "period must be positive");
    assert!(cfg.diurnal_swing >= 1.0, "diurnal swing must be ≥ 1");
    assert!(cfg.flash_magnitude >= 1.0, "flash magnitude must be ≥ 1");
    assert!(cfg.flap_duration > 0, "flap duration must be positive");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let noise = LogNormal::from_mean_cv(1.0, cfg.noise_cv.max(0.0));
    let ods: Vec<(String, f64)> = base
        .ods()
        .iter()
        .map(|o| (o.name.clone(), o.size))
        .collect();
    let n = ods.len();

    // Schedule flash crowds: random start, a random non-empty OD subset.
    let mut flashes: Vec<Flash> = Vec::new();
    for _ in 0..cfg.flash_crowds {
        let start = rng.random_range(1..cfg.ticks.max(2));
        let mut members: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.25)).collect();
        if members.is_empty() {
            members.push(rng.random_range(0..n));
        }
        flashes.push(Flash {
            start,
            ods: members,
        });
    }

    // Schedule link flaps on provably safe fibres, non-overlapping in time
    // (concurrent failures are not individually proven safe).
    let mut flaps: Vec<Flap> = Vec::new();
    if cfg.link_flaps > 0 && cfg.ticks > cfg.flap_duration + 1 {
        let candidates = flappable_fibres(base);
        if !candidates.is_empty() {
            let mut attempts = 0;
            while (flaps.len() as u64) < cfg.link_flaps && attempts < 64 {
                attempts += 1;
                let fibre = candidates[rng.random_range(0..candidates.len())].clone();
                let start = rng.random_range(1..cfg.ticks - cfg.flap_duration);
                let end = start + cfg.flap_duration;
                let clear = flaps.iter().all(|f| end + 1 < f.start || start > f.end + 1);
                if clear {
                    flaps.push(Flap { fibre, start, end });
                }
            }
        }
    }

    let diurnal = |phase: f64| -> f64 {
        1.0 + (cfg.diurnal_swing - 1.0) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
    };

    let mut ticks = Vec::with_capacity(cfg.ticks as usize);
    for t in 0..cfg.ticks {
        let phase = (t % cfg.period) as f64 / cfg.period as f64;
        let demands: Vec<(String, f64)> = ods
            .iter()
            .enumerate()
            .map(|(k, (name, size))| {
                let offset = cfg.phase_spread * k as f64 / n.max(1) as f64;
                let mut factor = diurnal(phase + offset);
                for flash in &flashes {
                    if t >= flash.start && flash.ods.contains(&k) {
                        let dt = (t - flash.start) as f64;
                        factor *= 1.0 + (cfg.flash_magnitude - 1.0) * (-cfg.flash_decay * dt).exp();
                    }
                }
                let sample = size * factor * noise.sample(&mut rng);
                (name.clone(), sample.max(MIN_SIZE))
            })
            .collect();
        let mut events = Vec::new();
        for flap in &flaps {
            let (a, b) = flap.fibre.clone();
            if flap.start == t {
                events.push(LinkEvent::Fail { a, b });
            } else if flap.end == t {
                events.push(LinkEvent::Restore { a, b });
            }
        }
        ticks.push(TraceTick { t, demands, events });
    }

    Trace {
        header: TraceHeader {
            seed: cfg.seed,
            ticks: cfg.ticks,
            ods,
        },
        ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_core::scenarios::janet_task;
    use nws_core::PlacementConfig;

    fn base() -> ServiceState {
        ServiceState::from_task(&janet_task(), PlacementConfig::default())
    }

    #[test]
    fn same_seed_same_trace() {
        let s = base();
        let cfg = GeneratorConfig::default();
        let a = generate_trace(&s, &cfg);
        let b = generate_trace(&s, &cfg);
        assert_eq!(a.encode(), b.encode(), "generation must be deterministic");
        let other = generate_trace(
            &s,
            &GeneratorConfig {
                seed: 43,
                ..cfg.clone()
            },
        );
        assert_ne!(a.encode(), other.encode());
    }

    #[test]
    fn trace_shape_matches_config() {
        let s = base();
        let cfg = GeneratorConfig::default();
        let trace = generate_trace(&s, &cfg);
        assert_eq!(trace.ticks.len() as u64, cfg.ticks);
        assert_eq!(trace.header.ods.len(), s.ods().len());
        for tick in &trace.ticks {
            assert_eq!(tick.demands.len(), s.ods().len());
            for (_, size) in &tick.demands {
                assert!(size.is_finite() && *size > 1.0);
            }
        }
        // Fail/restore events are paired and ordered.
        let fails: Vec<&TraceTick> = trace
            .ticks
            .iter()
            .filter(|t| t.events.iter().any(|e| matches!(e, LinkEvent::Fail { .. })))
            .collect();
        let restores: Vec<&TraceTick> = trace
            .ticks
            .iter()
            .filter(|t| {
                t.events
                    .iter()
                    .any(|e| matches!(e, LinkEvent::Restore { .. }))
            })
            .collect();
        assert_eq!(fails.len(), restores.len());
        assert_eq!(fails.len() as u64, cfg.link_flaps);
        for (f, r) in fails.iter().zip(&restores) {
            assert_eq!(r.t - f.t, cfg.flap_duration);
        }
    }

    #[test]
    fn flash_crowds_surge_and_decay() {
        let s = base();
        let cfg = GeneratorConfig {
            noise_cv: 0.0,
            flash_crowds: 1,
            flash_magnitude: 10.0,
            link_flaps: 0,
            ..GeneratorConfig::default()
        };
        let trace = generate_trace(&s, &cfg);
        // Without noise, the only difference from a flash-free day is the
        // surge itself: per-OD ratios against the flash-free baseline jump
        // at the surge start and decay back towards 1.
        let calm = generate_trace(
            &s,
            &GeneratorConfig {
                flash_crowds: 0,
                ..cfg.clone()
            },
        );
        let ratios: Vec<f64> = trace
            .ticks
            .iter()
            .zip(&calm.ticks)
            .map(|(a, b)| {
                a.demands
                    .iter()
                    .zip(&b.demands)
                    .map(|((_, x), (_, y))| x / y)
                    .fold(1.0_f64, f64::max)
            })
            .collect();
        let peak = ratios.iter().fold(1.0_f64, |m, &r| m.max(r));
        assert!(
            peak > cfg.flash_magnitude * 0.8,
            "no surge visible: peak ratio {peak}"
        );
        // After the peak, the surge decays monotonically back under 2×.
        let peak_at = ratios.iter().position(|&r| r == peak).unwrap();
        if peak_at + 6 < ratios.len() {
            assert!(ratios[peak_at + 6] < peak / 2.0, "surge failed to decay");
        }
    }

    #[test]
    fn flappable_fibres_exclude_stranding_cuts() {
        let s = base();
        let safe = flappable_fibres(&s);
        assert!(!safe.is_empty(), "GEANT must have safe fibres");
        // FR–LU is the session fixtures' known-safe failure.
        assert!(safe.contains(&("FR".to_string(), "LU".to_string())));
        // Every safe fibre really does re-solve when failed.
        for (a, b) in safe.iter().take(3) {
            let mut probe = s.clone();
            probe
                .mutate_spec(&Request::FailLink {
                    a: a.clone(),
                    b: b.clone(),
                })
                .unwrap();
            probe.resolve(false).unwrap();
        }
    }
}
