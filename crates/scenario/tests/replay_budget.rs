//! End-to-end replay coverage: determinism for a fixed seed, the
//! accuracy-vs-budget ordering the CI gate asserts, forecast-vs-reactive
//! at equal budget, and the observability counters a replay emits.

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_obs::Recorder;
use nws_scenario::{
    bench_report, generate_trace, oracle_series, run_replay, run_sweep, GeneratorConfig, Mode,
    ReplayPolicy, Trace,
};
use nws_service::ServiceState;

fn base() -> ServiceState {
    ServiceState::from_task(&janet_task(), PlacementConfig::default())
}

fn day() -> Trace {
    // One full diurnal cycle at the bench shape (period 48), with a surge
    // and a flap. The period matters: the forecaster's linear trend step
    // only helps while the horizon is a small fraction of the wave.
    generate_trace(
        &base(),
        &GeneratorConfig {
            flash_crowds: 1,
            link_flaps: 1,
            flap_duration: 4,
            seed: 4242,
            ..GeneratorConfig::default()
        },
    )
}

#[test]
fn replay_is_deterministic_for_a_fixed_seed() {
    let s = base();
    let trace = day();
    // The trace itself round-trips through its file form.
    let trace2 = Trace::parse(&trace.encode()).unwrap();
    assert_eq!(trace2, trace);

    let oracle = oracle_series(&s, &trace).unwrap();
    let policy = ReplayPolicy::reactive(4);
    let rec = Recorder::disabled();
    let a = run_replay(&s, &trace, &policy, &oracle, &rec).unwrap();
    let b = run_replay(&s, &trace2, &policy, &oracle, &rec).unwrap();
    assert_eq!(a.resolves, b.resolves);
    assert_eq!(a.mean_gap.to_bits(), b.mean_gap.to_bits());
    for (x, y) in a.per_tick.iter().zip(&b.per_tick) {
        assert_eq!(x.delivered.to_bits(), y.delivered.to_bits());
        assert_eq!(x.oracle.to_bits(), y.oracle.to_bits());
        assert_eq!(x.resolved, y.resolved);
    }
}

#[test]
fn oracle_gap_grows_as_the_budget_shrinks() {
    let s = base();
    let trace = day();
    let rec = Recorder::disabled();
    let oracle = oracle_series(&s, &trace).unwrap();
    let entries = run_sweep(&s, &trace, &oracle, &[1, 4, 12], 0.0, &rec).unwrap();
    assert_eq!(entries.len(), 6);

    let gap = |mode: &Mode, n: u64| {
        entries
            .iter()
            .find(|e| e.outcome.policy.mode == *mode && e.outcome.policy.resolve_every == n)
            .map(|e| e.outcome.mean_gap)
            .unwrap()
    };
    // Re-solving every tick tracks the oracle to solver tolerance.
    assert!(
        gap(&Mode::Reactive, 1).abs() < 1e-6,
        "full-budget gap {}",
        gap(&Mode::Reactive, 1)
    );
    // Tolerance-padded monotonicity, same shape the CI gate enforces.
    let pad = 1e-4;
    for mode in [Mode::Reactive, Mode::Forecast] {
        assert!(
            gap(&mode, 1) <= gap(&mode, 4) + pad,
            "{}: {} vs {}",
            mode.name(),
            gap(&mode, 1),
            gap(&mode, 4)
        );
        assert!(
            gap(&mode, 4) <= gap(&mode, 12) + pad,
            "{}: {} vs {}",
            mode.name(),
            gap(&mode, 4),
            gap(&mode, 12)
        );
    }
    // Prediction beats reaction (or ties) at every starved budget.
    for n in [4u64, 12] {
        assert!(
            gap(&Mode::Forecast, n) <= gap(&Mode::Reactive, n) * 1.05 + pad,
            "forecast worse at N={n}: {} vs {}",
            gap(&Mode::Forecast, n),
            gap(&Mode::Reactive, n)
        );
    }
    // Equal budgets really were equal (no hysteresis here).
    for n in [1u64, 4, 12] {
        let pick = |mode: &Mode| {
            entries
                .iter()
                .find(|e| e.outcome.policy.mode == *mode && e.outcome.policy.resolve_every == n)
                .unwrap()
        };
        assert_eq!(
            pick(&Mode::Reactive).outcome.resolves,
            pick(&Mode::Forecast).outcome.resolves
        );
    }

    // The bench document carries one curve row per (mode, budget).
    let report = bench_report(&trace, &oracle, &entries);
    let curves = report.get("curves").unwrap().as_arr().unwrap();
    assert_eq!(curves.len(), 6);
    for row in curves {
        assert!(row.get("mean_gap").unwrap().as_f64().unwrap().is_finite());
        assert!(row.get("resolves").unwrap().as_u64().unwrap() > 0);
    }
}

#[test]
fn replay_counters_land_in_the_recorder() {
    let s = base();
    let trace = day();
    let oracle = oracle_series(&s, &trace).unwrap();
    let recorder = Recorder::enabled();
    run_replay(&s, &trace, &ReplayPolicy::forecast(4), &oracle, &recorder).unwrap();
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("replay_ticks_total"), Some(48));
    let solved = snap.counter("replay_resolves_total").unwrap_or(0);
    let skipped = snap.counter("replay_resolves_skipped_total").unwrap_or(0);
    assert!(solved >= 48 / 4, "scheduled solves missing: {solved}");
    assert_eq!(
        solved + skipped,
        48,
        "every tick either solves or is counted as skipped"
    );
    // The forecast error histogram has been fed.
    let expo = snap.exposition(false);
    assert!(
        expo.contains("replay_forecast_rel_error_pct"),
        "missing forecast error histogram:\n{expo}"
    );
}
