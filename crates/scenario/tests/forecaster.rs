//! Forecaster safety and hysteresis behaviour: predictions stay finite
//! and non-negative for arbitrary finite histories (the replay loop feeds
//! them straight into the solver as demand sizes), and the dead-band
//! suppresses monitor-rate churn on a constant-plus-noise day.

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_obs::Recorder;
use nws_scenario::{
    generate_trace, oracle_series, run_replay, GeneratorConfig, HoltConfig, HoltForecaster,
    ReplayPolicy,
};
use nws_service::ServiceState;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A hostile-but-finite sample: magnitudes from 1e-300 to 1e300, both
/// signs, and exact zeros.
fn arb_sample(rng: &mut StdRng) -> f64 {
    match rng.random_range(0u32..6) {
        0 => 0.0,
        1 => rng.random_range(0.0..1e6),
        2 => -rng.random_range(0.0..1e6),
        3 => rng.random_range(0.0..1.0) * 1e300,
        4 => -rng.random_range(0.0..1.0) * 1e300,
        _ => rng.random_range(0.0..1.0) * 1e-300,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any finite history and any smoothing factors, every prediction
    /// at any horizon is finite and non-negative.
    #[test]
    fn predictions_finite_and_nonnegative(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = HoltConfig {
            alpha: rng.random_range(0.0..=1.0),
            beta: rng.random_range(0.0..=1.0),
        };
        let mut f = HoltForecaster::new(cfg);
        let len = rng.random_range(0usize..64);
        for _ in 0..len {
            f.observe(arb_sample(&mut rng));
            for h in [0.0, 0.5, 1.0, 24.0, 1e9] {
                let p = f.predict(h);
                prop_assert!(
                    p.is_finite() && p >= 0.0,
                    "prediction {p} at horizon {h} after {} samples",
                    f.observations()
                );
            }
        }
    }
}

#[test]
fn hysteresis_suppresses_churn_on_constant_plus_noise() {
    // A flat day (swing 1) with 5% noise: the optimum jitters a little
    // every tick, so an every-tick installer keeps reconfiguring monitors
    // for nothing. The dead-band must absorb most of that churn without
    // giving up meaningful accuracy.
    let base = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let cfg = GeneratorConfig {
        ticks: 24,
        diurnal_swing: 1.0,
        noise_cv: 0.05,
        flash_crowds: 0,
        link_flaps: 0,
        ..GeneratorConfig::default()
    };
    let trace = generate_trace(&base, &cfg);
    let oracle = oracle_series(&base, &trace).unwrap();
    let recorder = Recorder::disabled();

    let nervous = run_replay(
        &base,
        &trace,
        &ReplayPolicy::forecast(1),
        &oracle,
        &recorder,
    )
    .unwrap();
    let mut damped_policy = ReplayPolicy::forecast(1);
    damped_policy.hysteresis = 0.05;
    let damped = run_replay(&base, &trace, &damped_policy, &oracle, &recorder).unwrap();

    assert_eq!(nervous.suppressed, 0);
    assert!(nervous.rate_churn > 0.0, "noise must move the optimum");
    assert!(
        damped.suppressed > 0,
        "dead-band never engaged: churn {}",
        damped.rate_churn
    );
    assert!(
        damped.rate_churn < nervous.rate_churn * 0.5,
        "churn {} not suppressed vs {}",
        damped.rate_churn,
        nervous.rate_churn
    );
    // The accuracy cost of standing still inside the dead-band is small.
    assert!(
        damped.mean_gap < nervous.mean_gap + 0.02,
        "dead-band ruined accuracy: {} vs {}",
        damped.mean_gap,
        nervous.mean_gap
    );
}
