//! # nws-core — optimal network-wide sampling
//!
//! A faithful reproduction of **"Reformulating the Monitor Placement
//! Problem: Optimal Network-Wide Sampling"** (Cantieni, Iannaccone, Barakat,
//! Diot, Thiran — CoNEXT 2006), as a reusable library.
//!
//! Given a network where *every* backbone link could host a sampling monitor
//! (NetFlow-style), the method answers, in one convex program: **which
//! monitors should be activated, and at which sampling rate**, to measure a
//! set of origin–destination (OD) pairs with maximum accuracy under a
//! network-wide resource budget `θ`.
//!
//! ## The pieces
//!
//! * [`MeasurementTask`] — the problem instance: topology, tracked OD set
//!   `F`, routing matrix `R`, per-link loads `U`, capacity `θ`, rate caps `α`.
//! * [`SreUtility`] — the paper's utility `M(ρ)`: mean squared relative
//!   accuracy of the inverted size estimator, C²-spliced to be zero at zero.
//! * [`solve_placement`] — the optimizer: gradient projection with
//!   active-set management and KKT certification (via `nws-solver`); `p_i=0`
//!   in the answer means monitor `i` stays off.
//! * [`evaluate_accuracy`] — the paper's Monte-Carlo evaluation protocol.
//! * [`baseline`] — the naïve strategies the paper compares against
//!   (access-link-only, UK-links-only, uniform-everywhere) plus a
//!   two-phase heuristic in the spirit of Suh et al.
//! * [`maxmin`] — the max–min fairness objective the paper discusses as an
//!   alternative (§III), via smooth soft-min approximation.
//! * [`multi`] — composite multi-task optimization: several measurement
//!   tasks (e.g. traffic engineering + anomaly coverage) sharing one budget,
//!   the deployment §I motivates.
//! * [`planning`] — capacity planning: the minimal `θ` reaching a target
//!   worst-OD utility (the inverse of Figure 2).
//! * [`scenarios`] — the reconstructed GEANT/JANET workload of §V.
//! * [`simulate`] — multi-interval closed-loop simulation of evolving
//!   traffic vs re-optimization policies (§I's dynamic argument).
//! * [`taskfile`] — a plain-text task-specification format so the optimizer
//!   can be driven from the command line (see the `nws-cli` crate).
//! * [`report`] — Table I / Figure 2 style text and CSV rendering.
//!
//! ## Quickstart
//!
//! ```
//! use nws_core::{solve_placement, MeasurementTask, PlacementConfig};
//! use nws_routing::OdPair;
//!
//! let topo = nws_topo::geant();
//! let janet = topo.require_node("JANET").unwrap();
//! let nl = topo.require_node("NL").unwrap();
//! let task = MeasurementTask::builder(topo)
//!     .track("JANET-NL", OdPair::new(janet, nl), 9.0e6)
//!     .theta(10_000.0)
//!     .build()
//!     .unwrap();
//! let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
//! assert!(sol.kkt_verified);
//! assert!(!sol.active_monitors.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
mod error;
mod eval;
mod formulation;
pub mod maxmin;
pub mod multi;
mod placement;
pub mod planning;
mod pool;
pub mod report;
pub mod scenarios;
pub mod simulate;
mod task;
pub mod taskfile;
mod utility;

pub use error::CoreError;
pub use eval::{evaluate_accuracy, summarize, AccuracySummary, OdAccuracy};
pub use formulation::{
    build_problem, FusedEval, ParallelConfig, PlacementObjective, RateModel, ReducedIndex,
};
pub use placement::{
    evaluate_rates, solve_placement, solve_placement_observed, solve_placement_warm,
    solve_placement_warm_observed, Degraded, PlacementConfig, PlacementSolution,
    ACTIVATION_THRESHOLD,
};
pub use pool::{ChunkOut, ChunkTask, EvalPool, PoolError, PoolStats};
pub use task::{MeasurementTask, TaskBuilder, TrackedOd};
pub use utility::{LogUtility, SreUtility, Utility};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
