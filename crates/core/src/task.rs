//! Measurement-task definition.

use crate::CoreError;
use nws_routing::{OdPair, RoutingMatrix};
use nws_topo::{LinkId, Topology};

/// One OD pair the operator wants to track, with its ground-truth size.
#[derive(Debug, Clone)]
pub struct TrackedOd {
    /// Display name, e.g. `"JANET-NL"`.
    pub name: String,
    /// The pair itself.
    pub od: OdPair,
    /// Ground-truth size in packets per measurement interval (`S_k`).
    pub size: f64,
    /// `c_k = E[1/S_k]` driving the utility; defaults to `1/size`.
    pub inv_mean_size: f64,
}

/// A fully specified instance of the paper's placement problem:
/// topology, tracked OD set `F`, routing matrix `R`, link loads `U`,
/// capacity `θ` and per-link rate caps `α` (paper §III).
///
/// Built through [`TaskBuilder`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct MeasurementTask {
    topo: Topology,
    ods: Vec<TrackedOd>,
    routing: RoutingMatrix,
    link_loads: Vec<f64>,
    theta: f64,
    alpha: Vec<f64>,
    candidate_links: Vec<LinkId>,
}

/// Incremental construction of a [`MeasurementTask`].
#[derive(Debug)]
pub struct TaskBuilder {
    topo: Topology,
    ods: Vec<TrackedOd>,
    background_loads: Vec<f64>,
    theta: f64,
    alpha_uniform: f64,
    restriction: Option<Vec<LinkId>>,
}

impl MeasurementTask {
    /// Starts building a task over `topo`.
    pub fn builder(topo: Topology) -> TaskBuilder {
        let n_links = topo.num_links();
        TaskBuilder {
            topo,
            ods: Vec::new(),
            background_loads: vec![0.0; n_links],
            theta: 0.0,
            alpha_uniform: 1.0,
            restriction: None,
        }
    }

    /// The topology the task is defined over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The tracked OD pairs (the set `F`).
    pub fn ods(&self) -> &[TrackedOd] {
        &self.ods
    }

    /// The routing matrix `R` of the tracked pairs.
    pub fn routing(&self) -> &RoutingMatrix {
        &self.routing
    }

    /// Total per-link loads `U_i` in packets per interval (background plus
    /// tracked traffic).
    pub fn link_loads(&self) -> &[f64] {
        &self.link_loads
    }

    /// The system sampling capacity `θ` (max sampled packets per interval).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Per-link maximum sampling rates `α_i`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Links eligible to host a monitor for this task: monitorable
    /// (backbone) links that carry at least one tracked OD and have positive
    /// load, intersected with any user restriction — the set `L` of §III.
    pub fn candidate_links(&self) -> &[LinkId] {
        &self.candidate_links
    }

    /// Returns a copy of this task with a different capacity `θ` — the
    /// parameter swept by the paper's Figure 2.
    ///
    /// # Errors
    /// [`CoreError::InvalidTask`] if `new_theta` is not positive and finite.
    pub fn with_theta(&self, new_theta: f64) -> Result<MeasurementTask, CoreError> {
        if !(new_theta.is_finite() && new_theta > 0.0) {
            return Err(CoreError::InvalidTask(format!(
                "theta must be positive and finite, got {new_theta}"
            )));
        }
        let mut t = self.clone();
        t.theta = new_theta;
        Ok(t)
    }

    /// Returns a copy restricted to candidate links within `allowed` — used
    /// by the paper's "UK links only" comparison (§V-C).
    ///
    /// # Errors
    /// [`CoreError::InvalidTask`] if the intersection is empty.
    pub fn restricted_to(&self, allowed: &[LinkId]) -> Result<MeasurementTask, CoreError> {
        let filtered: Vec<LinkId> = self
            .candidate_links
            .iter()
            .copied()
            .filter(|l| allowed.contains(l))
            .collect();
        if filtered.is_empty() {
            return Err(CoreError::InvalidTask(
                "link restriction leaves no candidate monitors".into(),
            ));
        }
        let mut t = self.clone();
        t.candidate_links = filtered;
        Ok(t)
    }
}

impl TaskBuilder {
    /// Adds a tracked OD pair with ground-truth `size` packets/interval and
    /// the default `c = 1/size`.
    pub fn track(mut self, name: impl Into<String>, od: OdPair, size: f64) -> Self {
        let name = name.into();
        self.ods.push(TrackedOd {
            name,
            od,
            size,
            inv_mean_size: 1.0 / size,
        });
        self
    }

    /// Adds a tracked OD pair with an explicit `c = E[1/S]` (when the OD size
    /// fluctuates across intervals, `E[1/S] ≠ 1/E[S]`).
    pub fn track_with_c(
        mut self,
        name: impl Into<String>,
        od: OdPair,
        size: f64,
        inv_mean_size: f64,
    ) -> Self {
        self.ods.push(TrackedOd {
            name: name.into(),
            od,
            size,
            inv_mean_size,
        });
        self
    }

    /// Adds background load (packets per interval per link), e.g. from
    /// [`nws_traffic::demand::DemandMatrix::link_loads`].
    ///
    /// # Panics
    /// Panics if the vector length does not match the topology.
    pub fn background_loads(mut self, loads: &[f64]) -> Self {
        assert_eq!(
            loads.len(),
            self.background_loads.len(),
            "background load vector length mismatch"
        );
        for (acc, &l) in self.background_loads.iter_mut().zip(loads) {
            *acc += l;
        }
        self
    }

    /// Sets the sampling capacity `θ` in packets per interval.
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets a uniform per-link maximum sampling rate `α` (default 1.0 — no
    /// cap, as in the paper's Table I experiment).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha_uniform = alpha;
        self
    }

    /// Restricts candidate monitors to the given links (on top of the
    /// built-in monitorability and coverage filters).
    pub fn restrict_links(mut self, links: Vec<LinkId>) -> Self {
        self.restriction = Some(links);
        self
    }

    /// Validates and assembles the task.
    ///
    /// # Errors
    /// [`CoreError::InvalidTask`] for empty OD sets, non-positive sizes or
    /// `c ∉ (0,1)`, bad `θ`/`α`, unroutable OD pairs, or an empty candidate
    /// monitor set.
    pub fn build(self) -> Result<MeasurementTask, CoreError> {
        if self.ods.is_empty() {
            return Err(CoreError::InvalidTask("no tracked OD pairs".into()));
        }
        if !(self.theta.is_finite() && self.theta > 0.0) {
            return Err(CoreError::InvalidTask(format!(
                "theta must be positive and finite, got {}",
                self.theta
            )));
        }
        if !(self.alpha_uniform.is_finite()
            && self.alpha_uniform > 0.0
            && self.alpha_uniform <= 1.0)
        {
            return Err(CoreError::InvalidTask(format!(
                "alpha must be in (0,1], got {}",
                self.alpha_uniform
            )));
        }
        for od in &self.ods {
            if !(od.size.is_finite() && od.size > 1.0) {
                return Err(CoreError::InvalidTask(format!(
                    "OD {} size must exceed 1 packet/interval, got {}",
                    od.name, od.size
                )));
            }
            if !(od.inv_mean_size.is_finite() && od.inv_mean_size > 0.0 && od.inv_mean_size < 1.0) {
                return Err(CoreError::InvalidTask(format!(
                    "OD {} has E[1/S] = {} outside (0,1)",
                    od.name, od.inv_mean_size
                )));
            }
        }

        let pairs: Vec<OdPair> = self.ods.iter().map(|o| o.od).collect();
        let routing = RoutingMatrix::build(&self.topo, &pairs);
        for (k, od) in self.ods.iter().enumerate() {
            if routing.links_of_od(k).is_empty() {
                return Err(CoreError::InvalidTask(format!(
                    "OD {} is unroutable (no path)",
                    od.name
                )));
            }
        }

        // Total loads: background + the tracked traffic itself.
        let sizes: Vec<f64> = self.ods.iter().map(|o| o.size).collect();
        let tracked_loads = routing.link_loads(&sizes);
        let link_loads: Vec<f64> = self
            .background_loads
            .iter()
            .zip(&tracked_loads)
            .map(|(b, t)| b + t)
            .collect();

        // Candidate set L: monitorable, covered by F, positive load, within
        // restriction.
        let candidate_links: Vec<LinkId> = routing
            .covered_links()
            .into_iter()
            .filter(|&l| self.topo.link(l).monitorable())
            .filter(|&l| link_loads[l.index()] > 0.0)
            .filter(|&l| self.restriction.as_ref().is_none_or(|r| r.contains(&l)))
            .collect();
        if candidate_links.is_empty() {
            return Err(CoreError::InvalidTask(
                "no candidate monitor links (check monitorability/restriction)".into(),
            ));
        }

        let alpha = vec![self.alpha_uniform; self.topo.num_links()];
        Ok(MeasurementTask {
            topo: self.topo,
            ods: self.ods,
            routing,
            link_loads,
            theta: self.theta,
            alpha,
            candidate_links,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::geant;

    fn janet_pair(topo: &Topology, dst: &str) -> OdPair {
        OdPair::new(
            topo.require_node("JANET").unwrap(),
            topo.require_node(dst).unwrap(),
        )
    }

    #[test]
    fn build_small_task() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let lu = janet_pair(&topo, "LU");
        let task = MeasurementTask::builder(topo)
            .track("JANET-NL", nl, 9e6)
            .track("JANET-LU", lu, 6000.0)
            .theta(100_000.0)
            .build()
            .unwrap();
        assert_eq!(task.ods().len(), 2);
        assert_eq!(task.theta(), 100_000.0);
        // Candidates: UK-NL, UK-FR, FR-LU (access link excluded).
        assert_eq!(task.candidate_links().len(), 3);
        for &l in task.candidate_links() {
            assert!(task.topology().link(l).monitorable());
        }
        // Loads include the tracked traffic itself.
        let uk = task.topology().require_node("UK").unwrap();
        let nl_node = task.topology().require_node("NL").unwrap();
        let uk_nl = task.topology().link_between(uk, nl_node).unwrap();
        assert!(task.link_loads()[uk_nl.index()] >= 9e6);
    }

    #[test]
    fn background_adds_to_loads() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let n_links = topo.num_links();
        let bg = vec![1000.0; n_links];
        let task = MeasurementTask::builder(topo)
            .track("JANET-NL", nl, 9e6)
            .background_loads(&bg)
            .theta(1e4)
            .build()
            .unwrap();
        for &l in task.candidate_links() {
            assert!(task.link_loads()[l.index()] >= 1000.0);
        }
    }

    #[test]
    fn c_defaults_to_inverse_size() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let task = MeasurementTask::builder(topo)
            .track("JANET-NL", nl, 10_000.0)
            .theta(100.0)
            .build()
            .unwrap();
        assert!((task.ods()[0].inv_mean_size - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn empty_od_set_rejected() {
        let err = MeasurementTask::builder(geant())
            .theta(10.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }

    #[test]
    fn bad_theta_rejected() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let err = MeasurementTask::builder(topo)
            .track("x", nl, 1000.0)
            .theta(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }

    #[test]
    fn bad_alpha_rejected() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let err = MeasurementTask::builder(topo)
            .track("x", nl, 1000.0)
            .theta(10.0)
            .alpha(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }

    #[test]
    fn tiny_size_rejected() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let err = MeasurementTask::builder(topo)
            .track("x", nl, 0.5)
            .theta(10.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }

    #[test]
    fn restriction_applied_and_validated() {
        let topo = geant();
        let uk = topo.require_node("UK").unwrap();
        let nl_node = topo.require_node("NL").unwrap();
        let uk_nl = topo.link_between(uk, nl_node).unwrap();
        let nl = janet_pair(&topo, "NL");
        let lu = janet_pair(&topo, "LU");

        let task = MeasurementTask::builder(topo)
            .track("JANET-NL", nl, 9e6)
            .track("JANET-LU", lu, 6000.0)
            .theta(1e4)
            .restrict_links(vec![uk_nl])
            .build()
            .unwrap();
        assert_eq!(task.candidate_links(), &[uk_nl]);

        // restricted_to on an already-built task.
        let err = task.restricted_to(&[]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }

    #[test]
    fn with_theta_copies() {
        let topo = geant();
        let nl = janet_pair(&topo, "NL");
        let task = MeasurementTask::builder(topo)
            .track("x", nl, 1e6)
            .theta(100.0)
            .build()
            .unwrap();
        let t2 = task.with_theta(500.0).unwrap();
        assert_eq!(t2.theta(), 500.0);
        assert_eq!(task.theta(), 100.0);
        assert!(task.with_theta(-1.0).is_err());
    }
}
