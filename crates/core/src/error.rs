//! Error type of the core placement API.

use std::fmt;

/// Errors produced by task construction and placement optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The measurement task is malformed (described in the message).
    InvalidTask(String),
    /// The underlying optimization failed or was infeasible.
    Solver(nws_solver::SolverError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidTask(m) => write!(f, "invalid measurement task: {m}"),
            CoreError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nws_solver::SolverError> for CoreError {
    fn from(e: nws_solver::SolverError) -> Self {
        CoreError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidTask("oops".into());
        assert_eq!(e.to_string(), "invalid measurement task: oops");
        use std::error::Error;
        assert!(e.source().is_none());

        let s: CoreError = nws_solver::SolverError::InvalidProblem("bad".into()).into();
        assert!(s.to_string().contains("solver error"));
        assert!(s.source().is_some());
    }
}
