//! Translation of a [`MeasurementTask`] into a solver problem.
//!
//! The objective stores its per-OD sparse routing rows in CSR (compressed
//! sparse row) form — one flat `(variable, fraction)` array plus row offsets
//! — and evaluates value/gradient/curvature either serially or fanned out
//! across a persistent [`EvalPool`]. Chunk partials are merged in chunk
//! order, so results are deterministic for a fixed worker count. A fused
//! single-pass kernel ([`PlacementObjective::eval_fused`]) produces value,
//! gradient, and both directional derivatives from one CSR sweep — the
//! line-search hot path touches each row once instead of three times.

use crate::pool::{ChunkOut, ChunkTask};
use crate::{CoreError, EvalPool, MeasurementTask, PoolError, SreUtility, Utility};
use nws_linalg::Vector;
use nws_obs::Recorder;
use nws_solver::{BoxLinearProblem, Objective};
use nws_topo::LinkId;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How the effective sampling rate `ρ_k(p)` is modelled inside the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateModel {
    /// The paper's working approximation `ρ_k = Σ_i r_{k,i}·p_i` (eq. (7)) —
    /// linear, keeps the objective strictly concave, and accurate in the
    /// low-rate/few-monitors regime the solution lives in (§IV-B).
    #[default]
    Approximate,
    /// The exact union probability `ρ_k = 1 − Π_i (1 − p_i)^{r_{k,i}}`
    /// (eq. (1)). Exact for unique paths (binary `r`); under ECMP the
    /// fractional exponent is a geometric-interpolation approximation.
    ///
    /// Note: composed with the utility this is *not* guaranteed concave over
    /// the whole box, so KKT certification only attests stationarity; in the
    /// low-rate regime the curvature from `M''` dominates and the solver
    /// behaves identically. Provided for the §V-B validation ablation.
    Exact,
}

/// How a [`PlacementObjective`] fans evaluation out across threads.
///
/// Evaluation is embarrassingly parallel over OD rows: each worker reduces a
/// contiguous chunk of rows into a private partial (a scalar for value and
/// curvature, a scratch gradient buffer for gradients) and the partials are
/// merged in chunk order. The fan-out runs on a persistent [`EvalPool`] —
/// workers are spawned once when the config is attached
/// ([`PlacementObjective::with_parallel`]) and parked between calls, so an
/// evaluation pays only a channel handoff. Two cutoffs keep small work on
/// the serial path: `min_ods_per_thread` bounds the chunk count by available
/// rows, and `min_nnz_parallel` routes whole instances below a CSR-size
/// floor (e.g. GEANT, Abilene) straight to the serial kernels, where even a
/// single handoff would cost more than the row sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads: `1` forces the serial path (the default), `0` uses
    /// one worker per available core, any other value is taken literally
    /// (but never more pool workers than cores — oversubscribing CPU-bound
    /// row sweeps only adds scheduler churn).
    pub threads: usize,
    /// Minimum OD rows per worker; the effective worker count is capped at
    /// `num_ods / min_ods_per_thread` so handoff overhead never dominates
    /// small tasks.
    pub min_ods_per_thread: usize,
    /// Auto-serial cutoff: instances with fewer CSR entries than this never
    /// use the pool at all. At the default, a serial sweep costs on the
    /// order of a channel handoff, so parallelism cannot win below it.
    pub min_nnz_parallel: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            min_ods_per_thread: 256,
            min_nnz_parallel: 4096,
        }
    }
}

impl ParallelConfig {
    /// A config with the given worker count (`0` = auto) and the default
    /// serial-fallback thresholds.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..ParallelConfig::default()
        }
    }

    /// The worker count this config requests for a task of `num_ods` rows
    /// (before the core-count cap applied when the pool is resolved).
    pub fn workers_for(&self, num_ods: usize) -> usize {
        let requested = match self.threads {
            0 => available_cores(),
            t => t,
        };
        let by_work = num_ods / self.min_ods_per_thread.max(1);
        requested.min(by_work).max(1)
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A reusable pool of gradient scratch buffers, shared across evaluations so
/// the per-chunk partials do not reallocate every solver iteration.
#[derive(Debug, Default)]
struct ScratchPool {
    buffers: Mutex<Vec<Vec<f64>>>,
}

impl ScratchPool {
    /// Pops a pooled buffer (or allocates one) and zeroes it to `len`.
    fn take(&self, len: usize) -> Vec<f64> {
        let mut buf = self
            .buffers
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool.
    fn put(&self, buf: Vec<f64>) {
        self.buffers
            .lock()
            .expect("scratch pool poisoned")
            .push(buf);
    }
}

/// Mapping between the task's candidate links and dense variable indices.
#[derive(Debug, Clone)]
pub struct ReducedIndex {
    links: Vec<LinkId>,
    pos: HashMap<LinkId, usize>,
}

impl ReducedIndex {
    /// Builds the index over the task's candidate links.
    pub fn new(task: &MeasurementTask) -> Self {
        let links = task.candidate_links().to_vec();
        let pos = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        ReducedIndex { links, pos }
    }

    /// Number of optimization variables.
    pub fn dim(&self) -> usize {
        self.links.len()
    }

    /// The link of variable `v`.
    pub fn link(&self, v: usize) -> LinkId {
        self.links[v]
    }

    /// The variable of `link`, if it is a candidate.
    pub fn var(&self, link: LinkId) -> Option<usize> {
        self.pos.get(&link).copied()
    }

    /// Expands a reduced rate vector to a full per-topology-link vector
    /// (zero on non-candidate links).
    pub fn expand(&self, reduced: &Vector, num_links: usize) -> Vec<f64> {
        let mut full = vec![0.0; num_links];
        for (v, &l) in self.links.iter().enumerate() {
            full[l.index()] = reduced[v];
        }
        full
    }
}

/// Result of a fused single-pass evaluation
/// ([`PlacementObjective::eval_fused`]): objective value plus the first and
/// second directional derivatives along the probe direction (zero when no
/// direction was given).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedEval {
    /// Objective value `f(p)`.
    pub value: f64,
    /// First directional derivative `∇f(p)·s` (`0.0` without a direction).
    pub derivative: f64,
    /// Second directional derivative `sᵀ∇²f(p)s` (`0.0` without a direction).
    pub curvature: f64,
}

/// The immutable evaluation data of a [`PlacementObjective`] — utilities,
/// weights, CSR rows, rate model — shared by reference with pool workers
/// (`Arc`), so chunk tasks are `'static` without copying the matrix.
struct ObjectiveCore<U> {
    utilities: Vec<U>,
    /// Per-OD nonnegative weights (1 for the paper's formulation; composite
    /// multi-task problems weight their sub-tasks).
    weights: Vec<f64>,
    /// CSR row offsets: OD `k`'s entries span
    /// `row_entries[row_offsets[k]..row_offsets[k + 1]]`.
    row_offsets: Vec<usize>,
    /// Flattened `(variable, r_{k,i})` pairs of all ODs, grouped by OD.
    row_entries: Vec<(usize, f64)>,
    rate_model: RateModel,
    dim: usize,
}

impl<U: Utility> ObjectiveCore<U> {
    fn num_ods(&self) -> usize {
        self.row_offsets.len() - 1
    }

    fn row(&self, k: usize) -> &[(usize, f64)] {
        &self.row_entries[self.row_offsets[k]..self.row_offsets[k + 1]]
    }

    fn effective_rate(&self, k: usize, p: &Vector) -> f64 {
        match self.rate_model {
            RateModel::Approximate => self
                .row(k)
                .iter()
                .map(|&(v, r)| r * p[v])
                .sum::<f64>()
                .clamp(0.0, 1.0),
            RateModel::Exact => {
                let miss: f64 = self
                    .row(k)
                    .iter()
                    .map(|&(v, r)| (1.0 - p[v]).powf(r))
                    .product();
                (1.0 - miss).clamp(0.0, 1.0)
            }
        }
    }

    /// Objective value restricted to the OD rows in `ks`.
    fn value_over(&self, ks: Range<usize>, p: &Vector) -> f64 {
        ks.map(|k| self.weights[k] * self.utilities[k].value(self.effective_rate(k, p)))
            .sum()
    }

    /// Adds the gradient contributions of the OD rows in `ks` onto `out`.
    fn accumulate_gradient_over(&self, ks: Range<usize>, p: &Vector, out: &mut [f64]) {
        for k in ks {
            let rho = self.effective_rate(k, p);
            let m1 = self.weights[k] * self.utilities[k].d1(rho);
            match self.rate_model {
                RateModel::Approximate => {
                    for &(v, r) in self.row(k) {
                        out[v] += m1 * r;
                    }
                }
                RateModel::Exact => {
                    // ∂ρ/∂p_v = r·(1−ρ)/(1−p_v)
                    let miss = 1.0 - rho;
                    for &(v, r) in self.row(k) {
                        let denom = (1.0 - p[v]).max(1e-12);
                        out[v] += m1 * r * miss / denom;
                    }
                }
            }
        }
    }

    /// Second directional derivative restricted to the OD rows in `ks`.
    fn curvature_over(&self, ks: Range<usize>, p: &Vector, s: &Vector) -> f64 {
        let mut total = 0.0;
        for k in ks {
            let rho = self.effective_rate(k, p);
            let w = self.weights[k];
            let (m1, m2) = (w * self.utilities[k].d1(rho), w * self.utilities[k].d2(rho));
            match self.rate_model {
                RateModel::Approximate => {
                    let drho: f64 = self.row(k).iter().map(|&(v, r)| r * s[v]).sum();
                    total += m2 * drho * drho;
                }
                RateModel::Exact => {
                    // With m(t) = Π(1−p_v−t·s_v)^r = 1−ρ(t):
                    //   ρ'  = m·σ₁,   ρ'' = m·(σ₂ − σ₁²)
                    // where σ₁ = Σ r·s_v/(1−p_v), σ₂ = Σ r·s_v²/(1−p_v)².
                    let miss = 1.0 - rho;
                    let mut s1 = 0.0;
                    let mut s2 = 0.0;
                    for &(v, r) in self.row(k) {
                        let q = (1.0 - p[v]).max(1e-12);
                        s1 += r * s[v] / q;
                        s2 += r * s[v] * s[v] / (q * q);
                    }
                    let drho = miss * s1;
                    let ddrho = miss * (s2 - s1 * s1);
                    total += m2 * drho * drho + m1 * ddrho;
                }
            }
        }
        total
    }

    /// First directional derivative restricted to the OD rows in `ks`.
    /// Algebraically identical to contracting the row's gradient with `s`,
    /// but without materializing a gradient vector.
    fn dir_derivative_over(&self, ks: Range<usize>, p: &Vector, s: &Vector) -> f64 {
        ks.map(|k| {
            let rho = self.effective_rate(k, p);
            let m1 = self.weights[k] * self.utilities[k].d1(rho);
            match self.rate_model {
                RateModel::Approximate => {
                    m1 * self.row(k).iter().map(|&(v, r)| r * s[v]).sum::<f64>()
                }
                RateModel::Exact => {
                    let miss = 1.0 - rho;
                    m1 * miss
                        * self
                            .row(k)
                            .iter()
                            .map(|&(v, r)| r * s[v] / (1.0 - p[v]).max(1e-12))
                            .sum::<f64>()
                }
            }
        })
        .sum()
    }

    /// Fused single-pass kernel over the OD rows in `ks`: value, `φ'(0)` and
    /// `φ''(0)` along `s` (when given), and the gradient accumulated into
    /// `grad` (when given) — with `ρ_k`, `M'`, `M''` computed **once** per
    /// row instead of once per kernel. Returns `(value, derivative,
    /// curvature)`.
    ///
    /// Memory-traffic argument: for nnz-dominated instances each of the four
    /// separate kernels streams the whole CSR entry array through the cache;
    /// the fused kernel streams it once and amortizes the utility-derivative
    /// evaluations, so a Newton line-search probe (`φ'` + `φ''`) costs one
    /// sweep instead of two, and the solver's per-iteration value+gradient
    /// costs one instead of two.
    fn fused_over(
        &self,
        ks: Range<usize>,
        p: &Vector,
        s: Option<&Vector>,
        mut grad: Option<&mut [f64]>,
    ) -> (f64, f64, f64) {
        let (mut value, mut derivative, mut curvature) = (0.0_f64, 0.0_f64, 0.0_f64);
        for k in ks {
            let rho = self.effective_rate(k, p);
            let w = self.weights[k];
            let u = &self.utilities[k];
            value += w * u.value(rho);
            let m1 = w * u.d1(rho);
            let m2 = w * u.d2(rho);
            match self.rate_model {
                RateModel::Approximate => {
                    let mut drho = 0.0;
                    for &(v, r) in self.row(k) {
                        if let Some(g) = grad.as_deref_mut() {
                            g[v] += m1 * r;
                        }
                        if let Some(s) = s {
                            drho += r * s[v];
                        }
                    }
                    derivative += m1 * drho;
                    curvature += m2 * drho * drho;
                }
                RateModel::Exact => {
                    let miss = 1.0 - rho;
                    let (mut s1, mut s2) = (0.0_f64, 0.0_f64);
                    for &(v, r) in self.row(k) {
                        let q = (1.0 - p[v]).max(1e-12);
                        if let Some(g) = grad.as_deref_mut() {
                            g[v] += m1 * r * miss / q;
                        }
                        if let Some(s) = s {
                            s1 += r * s[v] / q;
                            s2 += r * s[v] * s[v] / (q * q);
                        }
                    }
                    let drho = miss * s1;
                    let ddrho = miss * (s2 - s1 * s1);
                    derivative += m1 * drho;
                    curvature += m2 * drho * drho + m1 * ddrho;
                }
            }
        }
        (value, derivative, curvature)
    }
}

/// Which kernel a pooled chunk task runs.
#[derive(Debug, Clone, Copy)]
enum KernelKind {
    Value,
    DirDerivative,
    Curvature,
    Gradient,
    Fused { grad: bool },
}

/// The paper's objective `Σ_k w_k·M_k(ρ_k(p))` over the reduced variables,
/// generic over the per-OD utility type (the paper's [`SreUtility`] by
/// default; any [`Utility`] works — §VI anticipates anomaly-detection and
/// performance-analysis utilities).
pub struct PlacementObjective<U: Utility = SreUtility> {
    core: Arc<ObjectiveCore<U>>,
    parallel: ParallelConfig,
    scratch: ScratchPool,
    /// Resolved worker pool; `None` means every evaluation is serial. Set by
    /// [`PlacementObjective::with_parallel`] (auto, capped at the core
    /// count) or [`PlacementObjective::with_pool`] (explicit).
    pool: Option<EvalPool>,
    /// Whether `pool` was attached explicitly (and must survive later
    /// `with_parallel` calls).
    pool_forced: bool,
    /// The most recent pool failure, kept for diagnosis: the infallible
    /// [`Objective`] surface reports pool errors as NaN results (which the
    /// solver turns into a typed `NonFiniteObjective` error) and parks the
    /// underlying cause here.
    last_pool_error: Mutex<Option<PoolError>>,
    /// Observability sink (disabled by default — a single branch per
    /// evaluation). See [`PlacementObjective::with_recorder`].
    recorder: Recorder,
}

impl PlacementObjective<SreUtility> {
    /// Builds the paper's objective for `task` under the given rate model.
    pub fn new(task: &MeasurementTask, index: &ReducedIndex, rate_model: RateModel) -> Self {
        let utilities: Vec<SreUtility> = task
            .ods()
            .iter()
            .map(|o| SreUtility::new(o.inv_mean_size))
            .collect();
        let rows = task_rows(task, index);
        let weights = vec![1.0; utilities.len()];
        PlacementObjective::from_parts(utilities, weights, rows, rate_model, index.dim())
    }
}

/// The sparse `(variable, r_{k,i})` rows of a task against an index.
pub(crate) fn task_rows(task: &MeasurementTask, index: &ReducedIndex) -> Vec<Vec<(usize, f64)>> {
    (0..task.ods().len())
        .map(|k| {
            task.routing()
                .links_of_od(k)
                .into_iter()
                .filter_map(|l| index.var(l).map(|v| (v, task.routing().entry(k, l))))
                .collect()
        })
        .collect()
}

impl<U: Utility> PlacementObjective<U> {
    /// Builds an objective from explicit parts: per-OD utilities, weights,
    /// sparse routing rows and the variable count. Used by composite
    /// multi-task problems and custom measurement tasks.
    ///
    /// # Panics
    /// Panics if lengths disagree, a weight is negative, or a row references
    /// a variable ≥ `dim`.
    pub fn from_parts(
        utilities: Vec<U>,
        weights: Vec<f64>,
        rows: Vec<Vec<(usize, f64)>>,
        rate_model: RateModel,
        dim: usize,
    ) -> Self {
        assert_eq!(
            utilities.len(),
            rows.len(),
            "utilities/rows length mismatch"
        );
        assert_eq!(
            utilities.len(),
            weights.len(),
            "utilities/weights length mismatch"
        );
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be ≥ 0");
        for row in &rows {
            for &(v, r) in row {
                assert!(v < dim, "row references variable {v} ≥ dim {dim}");
                assert!(
                    (0.0..=1.0).contains(&r),
                    "routing fraction {r} out of [0,1]"
                );
            }
        }
        // Flatten to CSR: one contiguous entry array plus row offsets.
        let mut row_offsets = Vec::with_capacity(rows.len() + 1);
        let mut row_entries = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        row_offsets.push(0);
        for row in rows {
            row_entries.extend(row);
            row_offsets.push(row_entries.len());
        }
        PlacementObjective {
            core: Arc::new(ObjectiveCore {
                utilities,
                weights,
                row_offsets,
                row_entries,
                rate_model,
                dim,
            }),
            parallel: ParallelConfig::default(),
            scratch: ScratchPool::default(),
            pool: None,
            pool_forced: false,
            last_pool_error: Mutex::new(None),
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the evaluation fan-out configuration (builder style; the default
    /// is serial) and resolves the worker pool for it: when the config
    /// requests more than one worker for this instance — after the
    /// `min_nnz_parallel` cutoff and a cap at the machine's core count — a
    /// process-wide [`EvalPool`] of that size is attached (created on first
    /// use, shared across objectives). Threads are therefore created once
    /// per configuration, not once per evaluation.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        if !self.pool_forced {
            self.pool = self.auto_pool();
        }
        self
    }

    /// Attaches an explicit worker pool (builder style), bypassing the
    /// core-count cap of [`PlacementObjective::with_parallel`] — the hook
    /// tests and benchmarks use to exercise real multi-worker fan-out on
    /// any machine. The `min_ods_per_thread` / `min_nnz_parallel` cutoffs
    /// of the current [`ParallelConfig`] still apply per call.
    pub fn with_pool(mut self, pool: EvalPool) -> Self {
        self.pool = Some(pool);
        self.pool_forced = true;
        self
    }

    /// The pool serving this instance's parallel path, if any.
    pub fn pool(&self) -> Option<&EvalPool> {
        self.pool.as_ref()
    }

    /// The most recent worker-pool failure, if any. The [`Objective`]
    /// methods are infallible, so a pool failure (worker panic,
    /// disconnected channel) yields NaN results — which the solver reports
    /// as [`nws_solver::SolverError::NonFiniteObjective`] — and the typed
    /// cause is retained here.
    pub fn last_pool_error(&self) -> Option<PoolError> {
        self.last_pool_error
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Resolves the shared pool the current config warrants for this
    /// instance, or `None` for the serial path.
    fn auto_pool(&self) -> Option<EvalPool> {
        if self.core.row_entries.len() < self.parallel.min_nnz_parallel {
            return None;
        }
        let workers = self
            .parallel
            .workers_for(self.core.num_ods())
            .min(available_cores());
        (workers > 1).then(|| EvalPool::global(workers))
    }

    /// Attaches an observability recorder (builder style; the default is the
    /// disabled no-op sink). With a live recorder, every evaluation bumps
    /// `eval_calls_total` (fused-kernel calls additionally
    /// `eval_fused_calls_total`), and the parallel fan-out records the
    /// worker count (`eval_workers` gauge), chunk totals
    /// (`eval_chunks_total`, `pool_tasks_dispatched_total`), worker
    /// park/wake cycles (`pool_wake_cycles_total`) and per-chunk wall time
    /// (`eval_chunk_ms` histogram) — the utilization signal: even chunk
    /// times mean the fan-out is balanced.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The current evaluation fan-out configuration.
    pub fn parallel_config(&self) -> ParallelConfig {
        self.parallel
    }

    /// Number of OD rows.
    pub fn num_ods(&self) -> usize {
        self.core.num_ods()
    }

    /// Total `(variable, fraction)` entries across all rows.
    pub fn nnz(&self) -> usize {
        self.core.row_entries.len()
    }

    /// Number of optimization variables.
    pub fn dim(&self) -> usize {
        self.core.dim
    }

    /// The per-OD utilities.
    pub fn utilities(&self) -> &[U] {
        &self.core.utilities
    }

    /// The per-OD weights.
    pub fn weights(&self) -> &[f64] {
        &self.core.weights
    }

    /// The sparse routing row of OD `k`: `(variable, r_{k,i})` pairs over
    /// the candidate links it traverses.
    pub fn row(&self, k: usize) -> &[(usize, f64)] {
        self.core.row(k)
    }

    /// Effective sampling rate of OD `k` at rates `p` under this objective's
    /// rate model, clamped into `[0, 1]`.
    pub fn effective_rate(&self, k: usize, p: &Vector) -> f64 {
        self.core.effective_rate(k, p)
    }

    /// All per-OD effective rates at `p`.
    pub fn effective_rates(&self, p: &Vector) -> Vec<f64> {
        (0..self.num_ods())
            .map(|k| self.effective_rate(k, p))
            .collect()
    }
}

impl<U: Utility + Send + Sync + 'static> PlacementObjective<U> {
    /// The per-call fan-out plan: the pool plus the chunk ranges, or `None`
    /// when this evaluation should run serially (no pool attached, instance
    /// below the `min_nnz_parallel` cutoff, or too few rows per worker).
    fn plan(&self) -> Option<(&EvalPool, Vec<Range<usize>>)> {
        let pool = self.pool.as_ref()?;
        let n = self.core.num_ods();
        if self.core.row_entries.len() < self.parallel.min_nnz_parallel {
            return None;
        }
        let by_work = (n / self.parallel.min_ods_per_thread.max(1)).max(1);
        let chunks = pool.threads().min(by_work).min(n.max(1));
        if chunks <= 1 {
            return None;
        }
        let chunk = n.div_ceil(chunks);
        let num_chunks = n.div_ceil(chunk);
        let ranges = (0..num_chunks)
            .map(|w| w * chunk..((w + 1) * chunk).min(n))
            .collect();
        Some((pool, ranges))
    }

    /// Builds the `'static` chunk task for one evaluation: an `Arc` of the
    /// shared core plus owned copies of the O(dim) inputs `p`/`s` — cheap
    /// next to the O(nnz) row sweep, and what keeps the engine free of
    /// `unsafe` lifetime plumbing under `forbid(unsafe_code)`.
    fn chunk_task(&self, kind: KernelKind, p: &Vector, s: Option<&Vector>) -> ChunkTask {
        let core = Arc::clone(&self.core);
        let p = p.clone();
        let s = s.cloned();
        let rec = self.recorder.clone();
        let enabled = rec.is_enabled();
        Arc::new(move |range: Range<usize>, scratch: &mut [f64]| {
            let t0 = enabled.then(Instant::now);
            let out = match kind {
                KernelKind::Value => ChunkOut {
                    value: core.value_over(range, &p),
                    ..ChunkOut::default()
                },
                KernelKind::DirDerivative => ChunkOut {
                    derivative: core.dir_derivative_over(range, &p, s.as_ref().expect("direction")),
                    ..ChunkOut::default()
                },
                KernelKind::Curvature => ChunkOut {
                    curvature: core.curvature_over(range, &p, s.as_ref().expect("direction")),
                    ..ChunkOut::default()
                },
                KernelKind::Gradient => {
                    core.accumulate_gradient_over(range, &p, scratch);
                    ChunkOut {
                        grad_in_scratch: true,
                        ..ChunkOut::default()
                    }
                }
                KernelKind::Fused { grad } => {
                    let gslice = if grad { Some(&mut *scratch) } else { None };
                    let (value, derivative, curvature) =
                        core.fused_over(range, &p, s.as_ref(), gslice);
                    ChunkOut {
                        value,
                        derivative,
                        curvature,
                        grad_in_scratch: grad,
                    }
                }
            };
            if let Some(t0) = t0 {
                rec.observe("eval_chunk_ms", t0.elapsed().as_secs_f64() * 1e3);
            }
            out
        })
    }

    /// Records the fan-out shape of one parallel evaluation.
    fn record_fanout(&self, num_chunks: usize) {
        self.recorder.gauge_set("eval_workers", num_chunks as f64);
        self.recorder
            .counter_add("eval_chunks_total", num_chunks as u64);
        self.recorder
            .counter_add("pool_tasks_dispatched_total", num_chunks as u64);
    }

    /// Dispatches chunk tasks to the pool, recording wake cycles. The wake
    /// delta is read off the shared pool's counters, so concurrent
    /// dispatchers may inflate each other's attribution slightly — the
    /// totals stay exact.
    fn run_pooled(
        &self,
        pool: &EvalPool,
        ranges: &[Range<usize>],
        task: ChunkTask,
        scratch_for: impl FnMut(usize) -> Vec<f64>,
    ) -> Result<Vec<(ChunkOut, Vec<f64>)>, PoolError> {
        self.record_fanout(ranges.len());
        let wakes_before = self.recorder.is_enabled().then(|| pool.stats().wakes);
        let result = pool.run(ranges, task, scratch_for);
        if let Some(before) = wakes_before {
            self.recorder.counter_add(
                "pool_wake_cycles_total",
                pool.stats().wakes.saturating_sub(before),
            );
        }
        result
    }

    /// Registers a pool failure and returns the NaN the infallible
    /// [`Objective`] surface reports (the solver converts it into a typed
    /// [`nws_solver::SolverError::NonFiniteObjective`]).
    fn poison(&self, err: PoolError) -> f64 {
        self.recorder.counter_add("eval_pool_errors_total", 1);
        *self
            .last_pool_error
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(err);
        f64::NAN
    }

    /// Reduces one scalar kernel over all OD rows, fanning out to the pool
    /// when the plan warrants it. Chunk partials are summed in chunk order,
    /// so the result is deterministic for a fixed worker count.
    fn eval_scalar(&self, kind: KernelKind, p: &Vector, s: Option<&Vector>) -> f64 {
        self.recorder.counter_add("eval_calls_total", 1);
        let n = self.core.num_ods();
        let Some((pool, ranges)) = self.plan() else {
            return match kind {
                KernelKind::Value => self.core.value_over(0..n, p),
                KernelKind::DirDerivative => {
                    self.core
                        .dir_derivative_over(0..n, p, s.expect("direction"))
                }
                KernelKind::Curvature => self.core.curvature_over(0..n, p, s.expect("direction")),
                KernelKind::Gradient | KernelKind::Fused { .. } => {
                    unreachable!("scalar kernels only")
                }
            };
        };
        match self.run_pooled(pool, &ranges, self.chunk_task(kind, p, s), |_| Vec::new()) {
            Ok(outs) => outs
                .iter()
                .map(|(o, _)| match kind {
                    KernelKind::Value => o.value,
                    KernelKind::DirDerivative => o.derivative,
                    KernelKind::Curvature => o.curvature,
                    KernelKind::Gradient | KernelKind::Fused { .. } => {
                        unreachable!("scalar kernels only")
                    }
                })
                .sum(),
            Err(err) => self.poison(err),
        }
    }

    /// Writes the full gradient into `out` (length `dim`), reusing pooled
    /// per-chunk scratch buffers in the parallel path.
    fn gradient_into_slice(&self, p: &Vector, out: &mut [f64]) {
        self.recorder.counter_add("eval_calls_total", 1);
        out.fill(0.0);
        let n = self.core.num_ods();
        let Some((pool, ranges)) = self.plan() else {
            self.core.accumulate_gradient_over(0..n, p, out);
            return;
        };
        let dim = self.core.dim;
        let task = self.chunk_task(KernelKind::Gradient, p, None);
        match self.run_pooled(pool, &ranges, task, |_| self.scratch.take(dim)) {
            Ok(outs) => {
                // Merge in chunk order — deterministic for a fixed worker count.
                for (_, buf) in outs {
                    for (o, b) in out.iter_mut().zip(&buf) {
                        *o += b;
                    }
                    self.scratch.put(buf);
                }
            }
            Err(err) => {
                self.poison(err);
                out.fill(f64::NAN);
            }
        }
    }

    /// Fused single-CSR-pass evaluation: the objective value, the first and
    /// second directional derivatives along `s` (when given), and the full
    /// gradient written into `grad` (when given) — all from **one** sweep
    /// over the rows, with `ρ_k` and the utility derivatives computed once
    /// per row. The solver's Newton line search uses this for its `φ'`/`φ''`
    /// probes and the solve loop for its value+gradient iterations, halving
    /// the CSR traffic of the hot path.
    pub fn eval_fused(
        &self,
        p: &Vector,
        s: Option<&Vector>,
        mut grad: Option<&mut Vector>,
    ) -> FusedEval {
        self.recorder.counter_add("eval_calls_total", 1);
        self.recorder.counter_add("eval_fused_calls_total", 1);
        let n = self.core.num_ods();
        let dim = self.core.dim;
        if let Some(g) = grad.as_mut() {
            if g.len() != dim {
                **g = Vector::zeros(dim);
            } else {
                g.as_mut_slice().fill(0.0);
            }
        }
        let Some((pool, ranges)) = self.plan() else {
            let gslice = grad.map(|g| &mut g.as_mut_slice()[..]);
            let (value, derivative, curvature) = self.core.fused_over(0..n, p, s, gslice);
            return FusedEval {
                value,
                derivative,
                curvature,
            };
        };
        let want_grad = grad.is_some();
        let task = self.chunk_task(KernelKind::Fused { grad: want_grad }, p, s);
        let scratch_len = if want_grad { dim } else { 0 };
        match self.run_pooled(pool, &ranges, task, |_| self.scratch.take(scratch_len)) {
            Ok(outs) => {
                let (mut value, mut derivative, mut curvature) = (0.0, 0.0, 0.0);
                for (out, buf) in outs {
                    value += out.value;
                    derivative += out.derivative;
                    curvature += out.curvature;
                    if out.grad_in_scratch {
                        if let Some(g) = grad.as_mut() {
                            for (o, b) in g.as_mut_slice().iter_mut().zip(&buf) {
                                *o += b;
                            }
                        }
                    }
                    self.scratch.put(buf);
                }
                FusedEval {
                    value,
                    derivative,
                    curvature,
                }
            }
            Err(err) => {
                let nan = self.poison(err);
                if let Some(g) = grad.as_mut() {
                    g.as_mut_slice().fill(nan);
                }
                FusedEval {
                    value: nan,
                    derivative: nan,
                    curvature: nan,
                }
            }
        }
    }
}

impl<U: Utility + Send + Sync + 'static> Objective for PlacementObjective<U> {
    fn value(&self, p: &Vector) -> f64 {
        self.eval_scalar(KernelKind::Value, p, None)
    }

    fn gradient(&self, p: &Vector) -> Vector {
        let mut g = Vector::zeros(self.core.dim);
        self.gradient_into_slice(p, g.as_mut_slice());
        g
    }

    fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
        self.eval_scalar(KernelKind::Curvature, p, Some(s))
    }

    fn gradient_into(&self, p: &Vector, out: &mut Vector) {
        if out.len() != self.core.dim {
            *out = Vector::zeros(self.core.dim);
        }
        self.gradient_into_slice(p, out.as_mut_slice());
    }

    fn directional_derivative(&self, p: &Vector, s: &Vector) -> f64 {
        self.eval_scalar(KernelKind::DirDerivative, p, Some(s))
    }

    fn derivatives_along(&self, p: &Vector, s: &Vector) -> (f64, f64) {
        let fused = self.eval_fused(p, Some(s), None);
        (fused.derivative, fused.curvature)
    }

    fn value_and_gradient_into(&self, p: &Vector, out: &mut Vector) -> f64 {
        self.eval_fused(p, None, Some(out)).value
    }
}

/// Builds the reduced [`BoxLinearProblem`] (bounds `α`, loads `U`, capacity
/// `θ`) for `task`.
///
/// # Errors
/// Propagates [`nws_solver::SolverError`] — notably `Infeasible` when
/// `θ > Σ α_i·U_i` over the candidate links, i.e. the capacity exceeds what
/// the candidate monitors could ever sample.
pub fn build_problem(
    task: &MeasurementTask,
    index: &ReducedIndex,
) -> Result<BoxLinearProblem, CoreError> {
    let upper: Vector = (0..index.dim())
        .map(|v| task.alpha()[index.link(v).index()])
        .collect();
    let loads: Vector = (0..index.dim())
        .map(|v| task.link_loads()[index.link(v).index()])
        .collect();
    Ok(BoxLinearProblem::new(upper, loads, task.theta())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_routing::OdPair;
    use nws_topo::geant;

    fn small_task() -> MeasurementTask {
        let topo = geant();
        let janet = topo.require_node("JANET").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let lu = topo.require_node("LU").unwrap();
        MeasurementTask::builder(topo)
            .track("JANET-NL", OdPair::new(janet, nl), 9e6)
            .track("JANET-LU", OdPair::new(janet, lu), 6e3)
            .theta(50_000.0)
            .build()
            .unwrap()
    }

    /// A config that disables both auto-serial cutoffs, so an explicitly
    /// attached pool is actually exercised on toy instances.
    fn force_parallel(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            min_ods_per_thread: 1,
            min_nnz_parallel: 0,
        }
    }

    #[test]
    fn reduced_index_roundtrip() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        assert_eq!(idx.dim(), task.candidate_links().len());
        for v in 0..idx.dim() {
            assert_eq!(idx.var(idx.link(v)), Some(v));
        }
        // Access link is not in the index.
        let access = nws_topo::janet_access_link(task.topology());
        assert_eq!(idx.var(access), None);

        let reduced: Vector = (0..idx.dim()).map(|v| v as f64 + 1.0).collect();
        let full = idx.expand(&reduced, task.topology().num_links());
        assert_eq!(full.len(), task.topology().num_links());
        for v in 0..idx.dim() {
            assert_eq!(full[idx.link(v).index()], v as f64 + 1.0);
        }
        assert_eq!(full[access.index()], 0.0);
    }

    #[test]
    fn effective_rates_models_agree_at_low_rates() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let approx = PlacementObjective::new(&task, &idx, RateModel::Approximate);
        let exact = PlacementObjective::new(&task, &idx, RateModel::Exact);
        let p = Vector::filled(idx.dim(), 1e-3);
        for k in 0..2 {
            let ra = approx.effective_rate(k, &p);
            let re = exact.effective_rate(k, &p);
            // Union bound, modulo one-ulp float noise on single-link paths.
            assert!(ra >= re - 1e-12, "union bound: {ra} < {re}");
            assert!((ra - re) / re < 1e-2, "k={k}: {ra} vs {re}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences_both_models() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p: Vector = (0..idx.dim()).map(|v| 1e-3 * (v as f64 + 1.0)).collect();
            let g = obj.gradient(&p);
            for v in 0..idx.dim() {
                let h = 1e-9;
                let mut pp = p.clone();
                pp[v] += h;
                let mut pm = p.clone();
                pm[v] -= h;
                let fd = (obj.value(&pp) - obj.value(&pm)) / (2.0 * h);
                assert!(
                    (fd - g[v]).abs() <= 1e-4 * g[v].abs().max(1.0),
                    "{model:?} var {v}: fd {fd} vs g {}",
                    g[v]
                );
            }
        }
    }

    #[test]
    fn curvature_matches_finite_differences_both_models() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p: Vector = (0..idx.dim()).map(|v| 2e-3 * (v as f64 + 1.0)).collect();
            let s: Vector = (0..idx.dim())
                .map(|v| if v % 2 == 0 { 1e-3 } else { -5e-4 })
                .collect();
            let c = obj.curvature_along(&p, &s);
            let h = 1e-3;
            let at = |t: f64| {
                let mut x = p.clone();
                x.axpy(t, &s);
                obj.value(&x)
            };
            let fd = (at(h) - 2.0 * at(0.0) + at(-h)) / (h * h);
            assert!(
                (fd - c).abs() <= 1e-3 * c.abs().max(1e-9),
                "{model:?}: fd {fd} vs curvature {c}"
            );
        }
    }

    #[test]
    fn curvature_negative_in_operating_regime() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p = Vector::filled(idx.dim(), 5e-3);
            let s = Vector::filled(idx.dim(), 1.0);
            assert!(obj.curvature_along(&p, &s) < 0.0, "{model:?}");
        }
    }

    #[test]
    fn workers_capped_by_row_count() {
        let cfg = ParallelConfig {
            threads: 8,
            min_ods_per_thread: 10,
            ..ParallelConfig::default()
        };
        assert_eq!(cfg.workers_for(5), 1, "too little work: serial");
        assert_eq!(cfg.workers_for(25), 2);
        assert_eq!(cfg.workers_for(10_000), 8);
        assert_eq!(ParallelConfig::default().workers_for(1_000_000), 1);
        assert!(ParallelConfig::with_threads(0).workers_for(1 << 20) >= 1);
    }

    #[test]
    fn nnz_cutoff_keeps_tiny_instances_serial() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        // Defaults: GEANT-sized nnz sits far below `min_nnz_parallel`, so
        // even an 8-thread request resolves to the serial path.
        let obj = PlacementObjective::new(&task, &idx, RateModel::Approximate)
            .with_parallel(ParallelConfig::with_threads(8));
        assert!(obj.nnz() < ParallelConfig::default().min_nnz_parallel);
        assert!(obj.pool().is_none(), "tiny instance must stay serial");
        // An explicitly attached pool still respects the per-call cutoff:
        // with the default config it is never actually used.
        let forced = PlacementObjective::new(&task, &idx, RateModel::Approximate)
            .with_pool(EvalPool::new(2));
        let p = Vector::filled(idx.dim(), 1e-3);
        let dispatches_before = forced.pool().unwrap().stats().dispatches;
        forced.value(&p);
        assert_eq!(forced.pool().unwrap().stats().dispatches, dispatches_before);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let p: Vector = (0..idx.dim()).map(|v| 2e-3 * (v as f64 + 1.0)).collect();
        let s: Vector = (0..idx.dim())
            .map(|v| if v % 2 == 0 { 1.0 } else { -0.5 })
            .collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let serial = PlacementObjective::new(&task, &idx, model);
            for threads in [2, 4, 8] {
                let par = PlacementObjective::new(&task, &idx, model)
                    .with_parallel(force_parallel(threads))
                    .with_pool(EvalPool::new(threads));
                let (v0, v1) = (serial.value(&p), par.value(&p));
                assert!(
                    (v0 - v1).abs() <= 1e-12 * v0.abs().max(1.0),
                    "{model:?} x{threads}: value {v0} vs {v1}"
                );
                let (g0, g1) = (serial.gradient(&p), par.gradient(&p));
                for v in 0..idx.dim() {
                    assert!(
                        (g0[v] - g1[v]).abs() <= 1e-12 * g0[v].abs().max(1.0),
                        "{model:?} x{threads} var {v}: {} vs {}",
                        g0[v],
                        g1[v]
                    );
                }
                let (c0, c1) = (serial.curvature_along(&p, &s), par.curvature_along(&p, &s));
                assert!(
                    (c0 - c1).abs() <= 1e-12 * c0.abs().max(1.0),
                    "{model:?} x{threads}: curvature {c0} vs {c1}"
                );
            }
        }
    }

    #[test]
    fn fused_kernel_matches_separate_kernels() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let p: Vector = (0..idx.dim()).map(|v| 2e-3 * (v as f64 + 1.0)).collect();
        let s: Vector = (0..idx.dim())
            .map(|v| if v % 3 == 0 { 1.0 } else { -0.4 })
            .collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            for threads in [1, 4] {
                let obj = if threads == 1 {
                    PlacementObjective::new(&task, &idx, model)
                } else {
                    PlacementObjective::new(&task, &idx, model)
                        .with_parallel(force_parallel(threads))
                        .with_pool(EvalPool::new(threads))
                };
                let mut grad = Vector::zeros(idx.dim());
                let fused = obj.eval_fused(&p, Some(&s), Some(&mut grad));
                let tol = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
                assert!(
                    tol(fused.value, obj.value(&p)),
                    "{model:?} x{threads} value"
                );
                assert!(
                    tol(fused.derivative, obj.directional_derivative(&p, &s)),
                    "{model:?} x{threads} derivative: {} vs {}",
                    fused.derivative,
                    obj.directional_derivative(&p, &s)
                );
                assert!(
                    tol(fused.curvature, obj.curvature_along(&p, &s)),
                    "{model:?} x{threads} curvature"
                );
                let g = obj.gradient(&p);
                for v in 0..idx.dim() {
                    assert!(tol(grad[v], g[v]), "{model:?} x{threads} grad var {v}");
                }
                // Trait-level fused entry points agree too.
                let (d, c) = obj.derivatives_along(&p, &s);
                assert!(tol(d, fused.derivative) && tol(c, fused.curvature));
                let mut g2 = Vector::zeros(idx.dim());
                let v2 = obj.value_and_gradient_into(&p, &mut g2);
                assert!(tol(v2, fused.value));
                assert_eq!(g2, obj.gradient(&p));
            }
        }
    }

    #[test]
    fn gradient_into_reuses_buffer_and_matches() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model)
                .with_parallel(force_parallel(4))
                .with_pool(EvalPool::new(4));
            let mut out = Vector::zeros(idx.dim());
            for step in 1..4 {
                let p = Vector::filled(idx.dim(), 1e-3 * step as f64);
                obj.gradient_into(&p, &mut out);
                assert_eq!(out, obj.gradient(&p), "{model:?} step {step}");
            }
            // Wrong-size buffers are resized rather than rejected.
            let mut small = Vector::zeros(1);
            let p = Vector::filled(idx.dim(), 1e-3);
            obj.gradient_into(&p, &mut small);
            assert_eq!(small.len(), idx.dim());
        }
    }

    #[test]
    fn directional_derivative_matches_gradient_contraction() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let p: Vector = (0..idx.dim()).map(|v| 1e-3 * (v as f64 + 1.0)).collect();
        let s: Vector = (0..idx.dim()).map(|v| (v as f64) - 3.0).collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let direct = obj.directional_derivative(&p, &s);
            let contracted = obj.gradient(&p).dot(&s);
            assert!(
                (direct - contracted).abs() <= 1e-10 * contracted.abs().max(1.0),
                "{model:?}: {direct} vs {contracted}"
            );
        }
    }

    #[test]
    fn csr_rows_match_task_traversals() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let obj = PlacementObjective::new(&task, &idx, RateModel::Approximate);
        assert_eq!(obj.num_ods(), task.ods().len());
        assert_eq!(obj.dim(), idx.dim());
        let total: usize = (0..obj.num_ods()).map(|k| obj.row(k).len()).sum();
        assert_eq!(obj.nnz(), total);
        for k in 0..obj.num_ods() {
            for &(v, r) in obj.row(k) {
                let link = idx.link(v);
                assert!(task.routing().traverses(k, link));
                assert_eq!(r, task.routing().entry(k, link));
            }
        }
    }

    #[test]
    fn problem_construction_and_infeasibility() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let pb = build_problem(&task, &idx).unwrap();
        assert_eq!(pb.dim(), idx.dim());
        assert_eq!(pb.eq_rhs(), 50_000.0);

        // θ larger than all candidate loads combined → infeasible.
        let total: f64 = task
            .candidate_links()
            .iter()
            .map(|l| task.link_loads()[l.index()])
            .sum();
        let too_big = task.with_theta(total * 1.01).unwrap();
        let err = build_problem(&too_big, &ReducedIndex::new(&too_big)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Solver(nws_solver::SolverError::Infeasible { .. })
        ));
    }
}
