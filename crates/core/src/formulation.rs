//! Translation of a [`MeasurementTask`] into a solver problem.

use crate::{CoreError, MeasurementTask, SreUtility, Utility};
use nws_linalg::Vector;
use nws_solver::{BoxLinearProblem, Objective};
use nws_topo::LinkId;
use std::collections::HashMap;

/// How the effective sampling rate `ρ_k(p)` is modelled inside the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateModel {
    /// The paper's working approximation `ρ_k = Σ_i r_{k,i}·p_i` (eq. (7)) —
    /// linear, keeps the objective strictly concave, and accurate in the
    /// low-rate/few-monitors regime the solution lives in (§IV-B).
    #[default]
    Approximate,
    /// The exact union probability `ρ_k = 1 − Π_i (1 − p_i)^{r_{k,i}}`
    /// (eq. (1)). Exact for unique paths (binary `r`); under ECMP the
    /// fractional exponent is a geometric-interpolation approximation.
    ///
    /// Note: composed with the utility this is *not* guaranteed concave over
    /// the whole box, so KKT certification only attests stationarity; in the
    /// low-rate regime the curvature from `M''` dominates and the solver
    /// behaves identically. Provided for the §V-B validation ablation.
    Exact,
}

/// Mapping between the task's candidate links and dense variable indices.
#[derive(Debug, Clone)]
pub struct ReducedIndex {
    links: Vec<LinkId>,
    pos: HashMap<LinkId, usize>,
}

impl ReducedIndex {
    /// Builds the index over the task's candidate links.
    pub fn new(task: &MeasurementTask) -> Self {
        let links = task.candidate_links().to_vec();
        let pos = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        ReducedIndex { links, pos }
    }

    /// Number of optimization variables.
    pub fn dim(&self) -> usize {
        self.links.len()
    }

    /// The link of variable `v`.
    pub fn link(&self, v: usize) -> LinkId {
        self.links[v]
    }

    /// The variable of `link`, if it is a candidate.
    pub fn var(&self, link: LinkId) -> Option<usize> {
        self.pos.get(&link).copied()
    }

    /// Expands a reduced rate vector to a full per-topology-link vector
    /// (zero on non-candidate links).
    pub fn expand(&self, reduced: &Vector, num_links: usize) -> Vec<f64> {
        let mut full = vec![0.0; num_links];
        for (v, &l) in self.links.iter().enumerate() {
            full[l.index()] = reduced[v];
        }
        full
    }
}

/// The paper's objective `Σ_k w_k·M_k(ρ_k(p))` over the reduced variables,
/// generic over the per-OD utility type (the paper's [`SreUtility`] by
/// default; any [`Utility`] works — §VI anticipates anomaly-detection and
/// performance-analysis utilities).
pub struct PlacementObjective<U: Utility = SreUtility> {
    utilities: Vec<U>,
    /// Per-OD nonnegative weights (1 for the paper's formulation; composite
    /// multi-task problems weight their sub-tasks).
    weights: Vec<f64>,
    /// Per OD `k`: the `(variable, r_{k,i})` pairs of candidate links it
    /// traverses.
    rows: Vec<Vec<(usize, f64)>>,
    rate_model: RateModel,
    dim: usize,
}

impl PlacementObjective<SreUtility> {
    /// Builds the paper's objective for `task` under the given rate model.
    pub fn new(task: &MeasurementTask, index: &ReducedIndex, rate_model: RateModel) -> Self {
        let utilities: Vec<SreUtility> =
            task.ods().iter().map(|o| SreUtility::new(o.inv_mean_size)).collect();
        let rows = task_rows(task, index);
        let weights = vec![1.0; utilities.len()];
        PlacementObjective { utilities, weights, rows, rate_model, dim: index.dim() }
    }
}

/// The sparse `(variable, r_{k,i})` rows of a task against an index.
pub(crate) fn task_rows(
    task: &MeasurementTask,
    index: &ReducedIndex,
) -> Vec<Vec<(usize, f64)>> {
    (0..task.ods().len())
        .map(|k| {
            task.routing()
                .links_of_od(k)
                .into_iter()
                .filter_map(|l| index.var(l).map(|v| (v, task.routing().entry(k, l))))
                .collect()
        })
        .collect()
}

impl<U: Utility> PlacementObjective<U> {
    /// Builds an objective from explicit parts: per-OD utilities, weights,
    /// sparse routing rows and the variable count. Used by composite
    /// multi-task problems and custom measurement tasks.
    ///
    /// # Panics
    /// Panics if lengths disagree, a weight is negative, or a row references
    /// a variable ≥ `dim`.
    pub fn from_parts(
        utilities: Vec<U>,
        weights: Vec<f64>,
        rows: Vec<Vec<(usize, f64)>>,
        rate_model: RateModel,
        dim: usize,
    ) -> Self {
        assert_eq!(utilities.len(), rows.len(), "utilities/rows length mismatch");
        assert_eq!(utilities.len(), weights.len(), "utilities/weights length mismatch");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be ≥ 0");
        for row in &rows {
            for &(v, r) in row {
                assert!(v < dim, "row references variable {v} ≥ dim {dim}");
                assert!((0.0..=1.0).contains(&r), "routing fraction {r} out of [0,1]");
            }
        }
        PlacementObjective { utilities, weights, rows, rate_model, dim }
    }

    /// The per-OD utilities.
    pub fn utilities(&self) -> &[U] {
        &self.utilities
    }

    /// The per-OD weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The sparse routing row of OD `k`: `(variable, r_{k,i})` pairs over
    /// the candidate links it traverses.
    pub fn row(&self, k: usize) -> &[(usize, f64)] {
        &self.rows[k]
    }

    /// Effective sampling rate of OD `k` at rates `p` under this objective's
    /// rate model, clamped into `[0, 1]`.
    pub fn effective_rate(&self, k: usize, p: &Vector) -> f64 {
        match self.rate_model {
            RateModel::Approximate => self.rows[k]
                .iter()
                .map(|&(v, r)| r * p[v])
                .sum::<f64>()
                .clamp(0.0, 1.0),
            RateModel::Exact => {
                let miss: f64 =
                    self.rows[k].iter().map(|&(v, r)| (1.0 - p[v]).powf(r)).product();
                (1.0 - miss).clamp(0.0, 1.0)
            }
        }
    }

    /// All per-OD effective rates at `p`.
    pub fn effective_rates(&self, p: &Vector) -> Vec<f64> {
        (0..self.rows.len()).map(|k| self.effective_rate(k, p)).collect()
    }
}

impl<U: Utility> Objective for PlacementObjective<U> {
    fn value(&self, p: &Vector) -> f64 {
        (0..self.rows.len())
            .map(|k| self.weights[k] * self.utilities[k].value(self.effective_rate(k, p)))
            .sum()
    }

    fn gradient(&self, p: &Vector) -> Vector {
        let mut g = Vector::zeros(self.dim);
        for (k, row) in self.rows.iter().enumerate() {
            let rho = self.effective_rate(k, p);
            let m1 = self.weights[k] * self.utilities[k].d1(rho);
            match self.rate_model {
                RateModel::Approximate => {
                    for &(v, r) in row {
                        g[v] += m1 * r;
                    }
                }
                RateModel::Exact => {
                    // ∂ρ/∂p_v = r·(1−ρ)/(1−p_v)
                    let miss = 1.0 - rho;
                    for &(v, r) in row {
                        let denom = (1.0 - p[v]).max(1e-12);
                        g[v] += m1 * r * miss / denom;
                    }
                }
            }
        }
        g
    }

    fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
        let mut total = 0.0;
        for (k, row) in self.rows.iter().enumerate() {
            let rho = self.effective_rate(k, p);
            let w = self.weights[k];
            let (m1, m2) = (w * self.utilities[k].d1(rho), w * self.utilities[k].d2(rho));
            match self.rate_model {
                RateModel::Approximate => {
                    let drho: f64 = row.iter().map(|&(v, r)| r * s[v]).sum();
                    total += m2 * drho * drho;
                }
                RateModel::Exact => {
                    // With m(t) = Π(1−p_v−t·s_v)^r = 1−ρ(t):
                    //   ρ'  = m·σ₁,   ρ'' = m·(σ₂ − σ₁²)
                    // where σ₁ = Σ r·s_v/(1−p_v), σ₂ = Σ r·s_v²/(1−p_v)².
                    let miss = 1.0 - rho;
                    let mut s1 = 0.0;
                    let mut s2 = 0.0;
                    for &(v, r) in row {
                        let q = (1.0 - p[v]).max(1e-12);
                        s1 += r * s[v] / q;
                        s2 += r * s[v] * s[v] / (q * q);
                    }
                    let drho = miss * s1;
                    let ddrho = miss * (s2 - s1 * s1);
                    total += m2 * drho * drho + m1 * ddrho;
                }
            }
        }
        total
    }
}

/// Builds the reduced [`BoxLinearProblem`] (bounds `α`, loads `U`, capacity
/// `θ`) for `task`.
///
/// # Errors
/// Propagates [`nws_solver::SolverError`] — notably `Infeasible` when
/// `θ > Σ α_i·U_i` over the candidate links, i.e. the capacity exceeds what
/// the candidate monitors could ever sample.
pub fn build_problem(
    task: &MeasurementTask,
    index: &ReducedIndex,
) -> Result<BoxLinearProblem, CoreError> {
    let upper: Vector =
        (0..index.dim()).map(|v| task.alpha()[index.link(v).index()]).collect();
    let loads: Vector =
        (0..index.dim()).map(|v| task.link_loads()[index.link(v).index()]).collect();
    Ok(BoxLinearProblem::new(upper, loads, task.theta())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_routing::OdPair;
    use nws_topo::geant;

    fn small_task() -> MeasurementTask {
        let topo = geant();
        let janet = topo.require_node("JANET").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let lu = topo.require_node("LU").unwrap();
        MeasurementTask::builder(topo)
            .track("JANET-NL", OdPair::new(janet, nl), 9e6)
            .track("JANET-LU", OdPair::new(janet, lu), 6e3)
            .theta(50_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn reduced_index_roundtrip() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        assert_eq!(idx.dim(), task.candidate_links().len());
        for v in 0..idx.dim() {
            assert_eq!(idx.var(idx.link(v)), Some(v));
        }
        // Access link is not in the index.
        let access = nws_topo::janet_access_link(task.topology());
        assert_eq!(idx.var(access), None);

        let reduced: Vector = (0..idx.dim()).map(|v| v as f64 + 1.0).collect();
        let full = idx.expand(&reduced, task.topology().num_links());
        assert_eq!(full.len(), task.topology().num_links());
        for v in 0..idx.dim() {
            assert_eq!(full[idx.link(v).index()], v as f64 + 1.0);
        }
        assert_eq!(full[access.index()], 0.0);
    }

    #[test]
    fn effective_rates_models_agree_at_low_rates() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let approx = PlacementObjective::new(&task, &idx, RateModel::Approximate);
        let exact = PlacementObjective::new(&task, &idx, RateModel::Exact);
        let p = Vector::filled(idx.dim(), 1e-3);
        for k in 0..2 {
            let ra = approx.effective_rate(k, &p);
            let re = exact.effective_rate(k, &p);
            // Union bound, modulo one-ulp float noise on single-link paths.
            assert!(ra >= re - 1e-12, "union bound: {ra} < {re}");
            assert!((ra - re) / re < 1e-2, "k={k}: {ra} vs {re}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences_both_models() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p: Vector = (0..idx.dim()).map(|v| 1e-3 * (v as f64 + 1.0)).collect();
            let g = obj.gradient(&p);
            for v in 0..idx.dim() {
                let h = 1e-9;
                let mut pp = p.clone();
                pp[v] += h;
                let mut pm = p.clone();
                pm[v] -= h;
                let fd = (obj.value(&pp) - obj.value(&pm)) / (2.0 * h);
                assert!(
                    (fd - g[v]).abs() <= 1e-4 * g[v].abs().max(1.0),
                    "{model:?} var {v}: fd {fd} vs g {}",
                    g[v]
                );
            }
        }
    }

    #[test]
    fn curvature_matches_finite_differences_both_models() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p: Vector = (0..idx.dim()).map(|v| 2e-3 * (v as f64 + 1.0)).collect();
            let s: Vector = (0..idx.dim())
                .map(|v| if v % 2 == 0 { 1e-3 } else { -5e-4 })
                .collect();
            let c = obj.curvature_along(&p, &s);
            let h = 1e-3;
            let at = |t: f64| {
                let mut x = p.clone();
                x.axpy(t, &s);
                obj.value(&x)
            };
            let fd = (at(h) - 2.0 * at(0.0) + at(-h)) / (h * h);
            assert!(
                (fd - c).abs() <= 1e-3 * c.abs().max(1e-9),
                "{model:?}: fd {fd} vs curvature {c}"
            );
        }
    }

    #[test]
    fn curvature_negative_in_operating_regime() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p = Vector::filled(idx.dim(), 5e-3);
            let s = Vector::filled(idx.dim(), 1.0);
            assert!(obj.curvature_along(&p, &s) < 0.0, "{model:?}");
        }
    }

    #[test]
    fn problem_construction_and_infeasibility() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let pb = build_problem(&task, &idx).unwrap();
        assert_eq!(pb.dim(), idx.dim());
        assert_eq!(pb.eq_rhs(), 50_000.0);

        // θ larger than all candidate loads combined → infeasible.
        let total: f64 =
            task.candidate_links().iter().map(|l| task.link_loads()[l.index()]).sum();
        let too_big = task.with_theta(total * 1.01).unwrap();
        let err = build_problem(&too_big, &ReducedIndex::new(&too_big)).unwrap_err();
        assert!(matches!(err, CoreError::Solver(nws_solver::SolverError::Infeasible { .. })));
    }
}
