//! Translation of a [`MeasurementTask`] into a solver problem.
//!
//! The objective stores its per-OD sparse routing rows in CSR (compressed
//! sparse row) form — one flat `(variable, fraction)` array plus row offsets
//! — and evaluates value/gradient/curvature either serially or fanned out
//! across scoped threads ([`ParallelConfig`]). Chunk partials are merged in
//! chunk order, so results are deterministic for a fixed worker count.

use crate::{CoreError, MeasurementTask, SreUtility, Utility};
use nws_linalg::Vector;
use nws_obs::Recorder;
use nws_solver::{BoxLinearProblem, Objective};
use nws_topo::LinkId;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

/// How the effective sampling rate `ρ_k(p)` is modelled inside the objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RateModel {
    /// The paper's working approximation `ρ_k = Σ_i r_{k,i}·p_i` (eq. (7)) —
    /// linear, keeps the objective strictly concave, and accurate in the
    /// low-rate/few-monitors regime the solution lives in (§IV-B).
    #[default]
    Approximate,
    /// The exact union probability `ρ_k = 1 − Π_i (1 − p_i)^{r_{k,i}}`
    /// (eq. (1)). Exact for unique paths (binary `r`); under ECMP the
    /// fractional exponent is a geometric-interpolation approximation.
    ///
    /// Note: composed with the utility this is *not* guaranteed concave over
    /// the whole box, so KKT certification only attests stationarity; in the
    /// low-rate regime the curvature from `M''` dominates and the solver
    /// behaves identically. Provided for the §V-B validation ablation.
    Exact,
}

/// How a [`PlacementObjective`] fans evaluation out across threads.
///
/// Evaluation is embarrassingly parallel over OD rows: each worker reduces a
/// contiguous chunk of rows into a private partial (a scalar for value and
/// curvature, a scratch gradient buffer for gradients) and the partials are
/// merged in chunk order. The fan-out uses [`std::thread::scope`] — threads
/// are spawned per call, so parallelism only pays off once a task has enough
/// rows; `min_ods_per_thread` keeps small tasks on the serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads: `1` forces the serial path (the default), `0` uses
    /// one worker per available core, any other value is taken literally.
    pub threads: usize,
    /// Minimum OD rows per worker; the effective worker count is capped at
    /// `num_ods / min_ods_per_thread` so thread-spawn overhead never
    /// dominates small tasks.
    pub min_ods_per_thread: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            min_ods_per_thread: 256,
        }
    }
}

impl ParallelConfig {
    /// A config with the given worker count (`0` = auto) and the default
    /// serial-fallback threshold.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..ParallelConfig::default()
        }
    }

    /// The worker count actually used for a task of `num_ods` rows.
    pub fn workers_for(&self, num_ods: usize) -> usize {
        let requested = match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            t => t,
        };
        let by_work = num_ods / self.min_ods_per_thread.max(1);
        requested.min(by_work).max(1)
    }
}

/// A reusable pool of gradient scratch buffers, shared across evaluations so
/// the per-thread partials do not reallocate every solver iteration.
#[derive(Debug, Default)]
struct ScratchPool {
    buffers: Mutex<Vec<Vec<f64>>>,
}

impl ScratchPool {
    /// Pops a pooled buffer (or allocates one) and zeroes it to `len`.
    fn take(&self, len: usize) -> Vec<f64> {
        let mut buf = self
            .buffers
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool.
    fn put(&self, buf: Vec<f64>) {
        self.buffers
            .lock()
            .expect("scratch pool poisoned")
            .push(buf);
    }
}

/// Mapping between the task's candidate links and dense variable indices.
#[derive(Debug, Clone)]
pub struct ReducedIndex {
    links: Vec<LinkId>,
    pos: HashMap<LinkId, usize>,
}

impl ReducedIndex {
    /// Builds the index over the task's candidate links.
    pub fn new(task: &MeasurementTask) -> Self {
        let links = task.candidate_links().to_vec();
        let pos = links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        ReducedIndex { links, pos }
    }

    /// Number of optimization variables.
    pub fn dim(&self) -> usize {
        self.links.len()
    }

    /// The link of variable `v`.
    pub fn link(&self, v: usize) -> LinkId {
        self.links[v]
    }

    /// The variable of `link`, if it is a candidate.
    pub fn var(&self, link: LinkId) -> Option<usize> {
        self.pos.get(&link).copied()
    }

    /// Expands a reduced rate vector to a full per-topology-link vector
    /// (zero on non-candidate links).
    pub fn expand(&self, reduced: &Vector, num_links: usize) -> Vec<f64> {
        let mut full = vec![0.0; num_links];
        for (v, &l) in self.links.iter().enumerate() {
            full[l.index()] = reduced[v];
        }
        full
    }
}

/// The paper's objective `Σ_k w_k·M_k(ρ_k(p))` over the reduced variables,
/// generic over the per-OD utility type (the paper's [`SreUtility`] by
/// default; any [`Utility`] works — §VI anticipates anomaly-detection and
/// performance-analysis utilities).
pub struct PlacementObjective<U: Utility = SreUtility> {
    utilities: Vec<U>,
    /// Per-OD nonnegative weights (1 for the paper's formulation; composite
    /// multi-task problems weight their sub-tasks).
    weights: Vec<f64>,
    /// CSR row offsets: OD `k`'s entries span
    /// `row_entries[row_offsets[k]..row_offsets[k + 1]]`.
    row_offsets: Vec<usize>,
    /// Flattened `(variable, r_{k,i})` pairs of all ODs, grouped by OD.
    row_entries: Vec<(usize, f64)>,
    rate_model: RateModel,
    dim: usize,
    parallel: ParallelConfig,
    scratch: ScratchPool,
    /// Observability sink (disabled by default — a single branch per
    /// evaluation). See [`PlacementObjective::with_recorder`].
    recorder: Recorder,
}

impl PlacementObjective<SreUtility> {
    /// Builds the paper's objective for `task` under the given rate model.
    pub fn new(task: &MeasurementTask, index: &ReducedIndex, rate_model: RateModel) -> Self {
        let utilities: Vec<SreUtility> = task
            .ods()
            .iter()
            .map(|o| SreUtility::new(o.inv_mean_size))
            .collect();
        let rows = task_rows(task, index);
        let weights = vec![1.0; utilities.len()];
        PlacementObjective::from_parts(utilities, weights, rows, rate_model, index.dim())
    }
}

/// The sparse `(variable, r_{k,i})` rows of a task against an index.
pub(crate) fn task_rows(task: &MeasurementTask, index: &ReducedIndex) -> Vec<Vec<(usize, f64)>> {
    (0..task.ods().len())
        .map(|k| {
            task.routing()
                .links_of_od(k)
                .into_iter()
                .filter_map(|l| index.var(l).map(|v| (v, task.routing().entry(k, l))))
                .collect()
        })
        .collect()
}

impl<U: Utility> PlacementObjective<U> {
    /// Builds an objective from explicit parts: per-OD utilities, weights,
    /// sparse routing rows and the variable count. Used by composite
    /// multi-task problems and custom measurement tasks.
    ///
    /// # Panics
    /// Panics if lengths disagree, a weight is negative, or a row references
    /// a variable ≥ `dim`.
    pub fn from_parts(
        utilities: Vec<U>,
        weights: Vec<f64>,
        rows: Vec<Vec<(usize, f64)>>,
        rate_model: RateModel,
        dim: usize,
    ) -> Self {
        assert_eq!(
            utilities.len(),
            rows.len(),
            "utilities/rows length mismatch"
        );
        assert_eq!(
            utilities.len(),
            weights.len(),
            "utilities/weights length mismatch"
        );
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be ≥ 0");
        for row in &rows {
            for &(v, r) in row {
                assert!(v < dim, "row references variable {v} ≥ dim {dim}");
                assert!(
                    (0.0..=1.0).contains(&r),
                    "routing fraction {r} out of [0,1]"
                );
            }
        }
        // Flatten to CSR: one contiguous entry array plus row offsets.
        let mut row_offsets = Vec::with_capacity(rows.len() + 1);
        let mut row_entries = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        row_offsets.push(0);
        for row in rows {
            row_entries.extend(row);
            row_offsets.push(row_entries.len());
        }
        PlacementObjective {
            utilities,
            weights,
            row_offsets,
            row_entries,
            rate_model,
            dim,
            parallel: ParallelConfig::default(),
            scratch: ScratchPool::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the evaluation fan-out configuration (builder style; the default
    /// is serial).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches an observability recorder (builder style; the default is the
    /// disabled no-op sink). With a live recorder, every evaluation bumps
    /// `eval_calls_total`, and the parallel fan-out additionally records the
    /// worker count (`eval_workers` gauge), chunk totals
    /// (`eval_chunks_total`) and per-chunk wall time (`eval_chunk_ms`
    /// histogram) — the utilization signal: even chunk times mean the
    /// fan-out is balanced.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The current evaluation fan-out configuration.
    pub fn parallel_config(&self) -> ParallelConfig {
        self.parallel
    }

    /// Number of OD rows.
    pub fn num_ods(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Total `(variable, fraction)` entries across all rows.
    pub fn nnz(&self) -> usize {
        self.row_entries.len()
    }

    /// Number of optimization variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-OD utilities.
    pub fn utilities(&self) -> &[U] {
        &self.utilities
    }

    /// The per-OD weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The sparse routing row of OD `k`: `(variable, r_{k,i})` pairs over
    /// the candidate links it traverses.
    pub fn row(&self, k: usize) -> &[(usize, f64)] {
        &self.row_entries[self.row_offsets[k]..self.row_offsets[k + 1]]
    }

    /// Effective sampling rate of OD `k` at rates `p` under this objective's
    /// rate model, clamped into `[0, 1]`.
    pub fn effective_rate(&self, k: usize, p: &Vector) -> f64 {
        match self.rate_model {
            RateModel::Approximate => self
                .row(k)
                .iter()
                .map(|&(v, r)| r * p[v])
                .sum::<f64>()
                .clamp(0.0, 1.0),
            RateModel::Exact => {
                let miss: f64 = self
                    .row(k)
                    .iter()
                    .map(|&(v, r)| (1.0 - p[v]).powf(r))
                    .product();
                (1.0 - miss).clamp(0.0, 1.0)
            }
        }
    }

    /// All per-OD effective rates at `p`.
    pub fn effective_rates(&self, p: &Vector) -> Vec<f64> {
        (0..self.num_ods())
            .map(|k| self.effective_rate(k, p))
            .collect()
    }

    /// Objective value restricted to the OD rows in `ks`.
    fn value_over(&self, ks: Range<usize>, p: &Vector) -> f64 {
        ks.map(|k| self.weights[k] * self.utilities[k].value(self.effective_rate(k, p)))
            .sum()
    }

    /// Adds the gradient contributions of the OD rows in `ks` onto `out`.
    fn accumulate_gradient_over(&self, ks: Range<usize>, p: &Vector, out: &mut [f64]) {
        for k in ks {
            let rho = self.effective_rate(k, p);
            let m1 = self.weights[k] * self.utilities[k].d1(rho);
            match self.rate_model {
                RateModel::Approximate => {
                    for &(v, r) in self.row(k) {
                        out[v] += m1 * r;
                    }
                }
                RateModel::Exact => {
                    // ∂ρ/∂p_v = r·(1−ρ)/(1−p_v)
                    let miss = 1.0 - rho;
                    for &(v, r) in self.row(k) {
                        let denom = (1.0 - p[v]).max(1e-12);
                        out[v] += m1 * r * miss / denom;
                    }
                }
            }
        }
    }

    /// Second directional derivative restricted to the OD rows in `ks`.
    fn curvature_over(&self, ks: Range<usize>, p: &Vector, s: &Vector) -> f64 {
        let mut total = 0.0;
        for k in ks {
            let rho = self.effective_rate(k, p);
            let w = self.weights[k];
            let (m1, m2) = (w * self.utilities[k].d1(rho), w * self.utilities[k].d2(rho));
            match self.rate_model {
                RateModel::Approximate => {
                    let drho: f64 = self.row(k).iter().map(|&(v, r)| r * s[v]).sum();
                    total += m2 * drho * drho;
                }
                RateModel::Exact => {
                    // With m(t) = Π(1−p_v−t·s_v)^r = 1−ρ(t):
                    //   ρ'  = m·σ₁,   ρ'' = m·(σ₂ − σ₁²)
                    // where σ₁ = Σ r·s_v/(1−p_v), σ₂ = Σ r·s_v²/(1−p_v)².
                    let miss = 1.0 - rho;
                    let mut s1 = 0.0;
                    let mut s2 = 0.0;
                    for &(v, r) in self.row(k) {
                        let q = (1.0 - p[v]).max(1e-12);
                        s1 += r * s[v] / q;
                        s2 += r * s[v] * s[v] / (q * q);
                    }
                    let drho = miss * s1;
                    let ddrho = miss * (s2 - s1 * s1);
                    total += m2 * drho * drho + m1 * ddrho;
                }
            }
        }
        total
    }

    /// First directional derivative restricted to the OD rows in `ks`.
    /// Algebraically identical to contracting the row's gradient with `s`,
    /// but without materializing a gradient vector.
    fn dir_derivative_over(&self, ks: Range<usize>, p: &Vector, s: &Vector) -> f64 {
        ks.map(|k| {
            let rho = self.effective_rate(k, p);
            let m1 = self.weights[k] * self.utilities[k].d1(rho);
            match self.rate_model {
                RateModel::Approximate => {
                    m1 * self.row(k).iter().map(|&(v, r)| r * s[v]).sum::<f64>()
                }
                RateModel::Exact => {
                    let miss = 1.0 - rho;
                    m1 * miss
                        * self
                            .row(k)
                            .iter()
                            .map(|&(v, r)| r * s[v] / (1.0 - p[v]).max(1e-12))
                            .sum::<f64>()
                }
            }
        })
        .sum()
    }
}

impl<U: Utility + Sync> PlacementObjective<U> {
    /// Reduces `eval` over all OD rows, fanning out across scoped threads
    /// when the [`ParallelConfig`] warrants it. Chunk partials are summed in
    /// chunk order, so the result is deterministic for a fixed worker count.
    fn par_reduce<F>(&self, eval: F) -> f64
    where
        F: Fn(Range<usize>) -> f64 + Sync,
    {
        let n = self.num_ods();
        let workers = self.parallel.workers_for(n);
        self.recorder.counter_add("eval_calls_total", 1);
        if workers <= 1 {
            return eval(0..n);
        }
        let chunk = n.div_ceil(workers);
        let num_chunks = n.div_ceil(chunk);
        self.record_fanout(num_chunks);
        let enabled = self.recorder.is_enabled();
        let mut partials = vec![0.0f64; num_chunks];
        std::thread::scope(|scope| {
            for (w, slot) in partials.iter_mut().enumerate() {
                let eval = &eval;
                let rec = &self.recorder;
                scope.spawn(move || {
                    let t0 = enabled.then(Instant::now);
                    *slot = eval(w * chunk..((w + 1) * chunk).min(n));
                    if let Some(t0) = t0 {
                        rec.observe("eval_chunk_ms", t0.elapsed().as_secs_f64() * 1e3);
                    }
                });
            }
        });
        partials.iter().sum()
    }

    /// Records the fan-out shape of one parallel evaluation.
    fn record_fanout(&self, num_chunks: usize) {
        self.recorder.gauge_set("eval_workers", num_chunks as f64);
        self.recorder
            .counter_add("eval_chunks_total", num_chunks as u64);
    }

    /// Writes the full gradient into `out` (length `dim`), reusing pooled
    /// per-worker scratch buffers in the parallel path.
    fn gradient_into_slice(&self, p: &Vector, out: &mut [f64]) {
        let n = self.num_ods();
        out.fill(0.0);
        let workers = self.parallel.workers_for(n);
        self.recorder.counter_add("eval_calls_total", 1);
        if workers <= 1 {
            self.accumulate_gradient_over(0..n, p, out);
            return;
        }
        let chunk = n.div_ceil(workers);
        let num_chunks = n.div_ceil(chunk);
        self.record_fanout(num_chunks);
        let enabled = self.recorder.is_enabled();
        let mut bufs: Vec<Vec<f64>> = (0..num_chunks)
            .map(|_| self.scratch.take(self.dim))
            .collect();
        std::thread::scope(|scope| {
            for (w, buf) in bufs.iter_mut().enumerate() {
                scope.spawn(move || {
                    let t0 = enabled.then(Instant::now);
                    self.accumulate_gradient_over(w * chunk..((w + 1) * chunk).min(n), p, buf);
                    if let Some(t0) = t0 {
                        self.recorder
                            .observe("eval_chunk_ms", t0.elapsed().as_secs_f64() * 1e3);
                    }
                });
            }
        });
        // Merge in chunk order — deterministic for a fixed worker count.
        for buf in bufs {
            for (o, b) in out.iter_mut().zip(&buf) {
                *o += b;
            }
            self.scratch.put(buf);
        }
    }
}

impl<U: Utility + Sync> Objective for PlacementObjective<U> {
    fn value(&self, p: &Vector) -> f64 {
        self.par_reduce(|ks| self.value_over(ks, p))
    }

    fn gradient(&self, p: &Vector) -> Vector {
        let mut g = Vector::zeros(self.dim);
        self.gradient_into_slice(p, g.as_mut_slice());
        g
    }

    fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
        self.par_reduce(|ks| self.curvature_over(ks, p, s))
    }

    fn gradient_into(&self, p: &Vector, out: &mut Vector) {
        if out.len() != self.dim {
            *out = Vector::zeros(self.dim);
        }
        self.gradient_into_slice(p, out.as_mut_slice());
    }

    fn directional_derivative(&self, p: &Vector, s: &Vector) -> f64 {
        self.par_reduce(|ks| self.dir_derivative_over(ks, p, s))
    }
}

/// Builds the reduced [`BoxLinearProblem`] (bounds `α`, loads `U`, capacity
/// `θ`) for `task`.
///
/// # Errors
/// Propagates [`nws_solver::SolverError`] — notably `Infeasible` when
/// `θ > Σ α_i·U_i` over the candidate links, i.e. the capacity exceeds what
/// the candidate monitors could ever sample.
pub fn build_problem(
    task: &MeasurementTask,
    index: &ReducedIndex,
) -> Result<BoxLinearProblem, CoreError> {
    let upper: Vector = (0..index.dim())
        .map(|v| task.alpha()[index.link(v).index()])
        .collect();
    let loads: Vector = (0..index.dim())
        .map(|v| task.link_loads()[index.link(v).index()])
        .collect();
    Ok(BoxLinearProblem::new(upper, loads, task.theta())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_routing::OdPair;
    use nws_topo::geant;

    fn small_task() -> MeasurementTask {
        let topo = geant();
        let janet = topo.require_node("JANET").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let lu = topo.require_node("LU").unwrap();
        MeasurementTask::builder(topo)
            .track("JANET-NL", OdPair::new(janet, nl), 9e6)
            .track("JANET-LU", OdPair::new(janet, lu), 6e3)
            .theta(50_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn reduced_index_roundtrip() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        assert_eq!(idx.dim(), task.candidate_links().len());
        for v in 0..idx.dim() {
            assert_eq!(idx.var(idx.link(v)), Some(v));
        }
        // Access link is not in the index.
        let access = nws_topo::janet_access_link(task.topology());
        assert_eq!(idx.var(access), None);

        let reduced: Vector = (0..idx.dim()).map(|v| v as f64 + 1.0).collect();
        let full = idx.expand(&reduced, task.topology().num_links());
        assert_eq!(full.len(), task.topology().num_links());
        for v in 0..idx.dim() {
            assert_eq!(full[idx.link(v).index()], v as f64 + 1.0);
        }
        assert_eq!(full[access.index()], 0.0);
    }

    #[test]
    fn effective_rates_models_agree_at_low_rates() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let approx = PlacementObjective::new(&task, &idx, RateModel::Approximate);
        let exact = PlacementObjective::new(&task, &idx, RateModel::Exact);
        let p = Vector::filled(idx.dim(), 1e-3);
        for k in 0..2 {
            let ra = approx.effective_rate(k, &p);
            let re = exact.effective_rate(k, &p);
            // Union bound, modulo one-ulp float noise on single-link paths.
            assert!(ra >= re - 1e-12, "union bound: {ra} < {re}");
            assert!((ra - re) / re < 1e-2, "k={k}: {ra} vs {re}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences_both_models() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p: Vector = (0..idx.dim()).map(|v| 1e-3 * (v as f64 + 1.0)).collect();
            let g = obj.gradient(&p);
            for v in 0..idx.dim() {
                let h = 1e-9;
                let mut pp = p.clone();
                pp[v] += h;
                let mut pm = p.clone();
                pm[v] -= h;
                let fd = (obj.value(&pp) - obj.value(&pm)) / (2.0 * h);
                assert!(
                    (fd - g[v]).abs() <= 1e-4 * g[v].abs().max(1.0),
                    "{model:?} var {v}: fd {fd} vs g {}",
                    g[v]
                );
            }
        }
    }

    #[test]
    fn curvature_matches_finite_differences_both_models() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p: Vector = (0..idx.dim()).map(|v| 2e-3 * (v as f64 + 1.0)).collect();
            let s: Vector = (0..idx.dim())
                .map(|v| if v % 2 == 0 { 1e-3 } else { -5e-4 })
                .collect();
            let c = obj.curvature_along(&p, &s);
            let h = 1e-3;
            let at = |t: f64| {
                let mut x = p.clone();
                x.axpy(t, &s);
                obj.value(&x)
            };
            let fd = (at(h) - 2.0 * at(0.0) + at(-h)) / (h * h);
            assert!(
                (fd - c).abs() <= 1e-3 * c.abs().max(1e-9),
                "{model:?}: fd {fd} vs curvature {c}"
            );
        }
    }

    #[test]
    fn curvature_negative_in_operating_regime() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let p = Vector::filled(idx.dim(), 5e-3);
            let s = Vector::filled(idx.dim(), 1.0);
            assert!(obj.curvature_along(&p, &s) < 0.0, "{model:?}");
        }
    }

    #[test]
    fn workers_capped_by_row_count() {
        let cfg = ParallelConfig {
            threads: 8,
            min_ods_per_thread: 10,
        };
        assert_eq!(cfg.workers_for(5), 1, "too little work: serial");
        assert_eq!(cfg.workers_for(25), 2);
        assert_eq!(cfg.workers_for(10_000), 8);
        assert_eq!(ParallelConfig::default().workers_for(1_000_000), 1);
        assert!(ParallelConfig::with_threads(0).workers_for(1 << 20) >= 1);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let p: Vector = (0..idx.dim()).map(|v| 2e-3 * (v as f64 + 1.0)).collect();
        let s: Vector = (0..idx.dim())
            .map(|v| if v % 2 == 0 { 1.0 } else { -0.5 })
            .collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let serial = PlacementObjective::new(&task, &idx, model);
            for threads in [2, 4, 8] {
                let par =
                    PlacementObjective::new(&task, &idx, model).with_parallel(ParallelConfig {
                        threads,
                        min_ods_per_thread: 1,
                    });
                let (v0, v1) = (serial.value(&p), par.value(&p));
                assert!(
                    (v0 - v1).abs() <= 1e-12 * v0.abs().max(1.0),
                    "{model:?} x{threads}: value {v0} vs {v1}"
                );
                let (g0, g1) = (serial.gradient(&p), par.gradient(&p));
                for v in 0..idx.dim() {
                    assert!(
                        (g0[v] - g1[v]).abs() <= 1e-12 * g0[v].abs().max(1.0),
                        "{model:?} x{threads} var {v}: {} vs {}",
                        g0[v],
                        g1[v]
                    );
                }
                let (c0, c1) = (serial.curvature_along(&p, &s), par.curvature_along(&p, &s));
                assert!(
                    (c0 - c1).abs() <= 1e-12 * c0.abs().max(1.0),
                    "{model:?} x{threads}: curvature {c0} vs {c1}"
                );
            }
        }
    }

    #[test]
    fn gradient_into_reuses_buffer_and_matches() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model).with_parallel(ParallelConfig {
                threads: 4,
                min_ods_per_thread: 1,
            });
            let mut out = Vector::zeros(idx.dim());
            for step in 1..4 {
                let p = Vector::filled(idx.dim(), 1e-3 * step as f64);
                obj.gradient_into(&p, &mut out);
                assert_eq!(out, obj.gradient(&p), "{model:?} step {step}");
            }
            // Wrong-size buffers are resized rather than rejected.
            let mut small = Vector::zeros(1);
            let p = Vector::filled(idx.dim(), 1e-3);
            obj.gradient_into(&p, &mut small);
            assert_eq!(small.len(), idx.dim());
        }
    }

    #[test]
    fn directional_derivative_matches_gradient_contraction() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let p: Vector = (0..idx.dim()).map(|v| 1e-3 * (v as f64 + 1.0)).collect();
        let s: Vector = (0..idx.dim()).map(|v| (v as f64) - 3.0).collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let obj = PlacementObjective::new(&task, &idx, model);
            let direct = obj.directional_derivative(&p, &s);
            let contracted = obj.gradient(&p).dot(&s);
            assert!(
                (direct - contracted).abs() <= 1e-10 * contracted.abs().max(1.0),
                "{model:?}: {direct} vs {contracted}"
            );
        }
    }

    #[test]
    fn csr_rows_match_task_traversals() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let obj = PlacementObjective::new(&task, &idx, RateModel::Approximate);
        assert_eq!(obj.num_ods(), task.ods().len());
        assert_eq!(obj.dim(), idx.dim());
        let total: usize = (0..obj.num_ods()).map(|k| obj.row(k).len()).sum();
        assert_eq!(obj.nnz(), total);
        for k in 0..obj.num_ods() {
            for &(v, r) in obj.row(k) {
                let link = idx.link(v);
                assert!(task.routing().traverses(k, link));
                assert_eq!(r, task.routing().entry(k, link));
            }
        }
    }

    #[test]
    fn problem_construction_and_infeasibility() {
        let task = small_task();
        let idx = ReducedIndex::new(&task);
        let pb = build_problem(&task, &idx).unwrap();
        assert_eq!(pb.dim(), idx.dim());
        assert_eq!(pb.eq_rhs(), 50_000.0);

        // θ larger than all candidate loads combined → infeasible.
        let total: f64 = task
            .candidate_links()
            .iter()
            .map(|l| task.link_loads()[l.index()])
            .sum();
        let too_big = task.with_theta(total * 1.01).unwrap();
        let err = build_problem(&too_big, &ReducedIndex::new(&too_big)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Solver(nws_solver::SolverError::Infeasible { .. })
        ));
    }
}
