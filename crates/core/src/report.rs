//! Text rendering of experiment outputs (Table I / Figure 2 style).

use crate::{MeasurementTask, OdAccuracy, PlacementSolution};
use nws_traffic::MEASUREMENT_INTERVAL_SECS;

/// Renders a Table-I-style report: one section for the activated monitors
/// (rate, load, contribution to θ) and one for the tracked OD pairs (size,
/// monitoring links, utility, accuracy).
///
/// `accuracies` must be the output of [`crate::evaluate_accuracy`] for the
/// same task and solution (same OD order).
///
/// # Panics
/// Panics if `accuracies` length differs from the task's OD count.
pub fn render_table1(
    task: &MeasurementTask,
    solution: &PlacementSolution,
    accuracies: &[OdAccuracy],
) -> String {
    assert_eq!(
        accuracies.len(),
        task.ods().len(),
        "accuracy vector mismatch"
    );
    let topo = task.topology();
    let mut out = String::new();

    out.push_str(&format!(
        "Optimal sampling configuration (theta = {} sampled pkts / {}s interval)\n",
        task.theta(),
        MEASUREMENT_INTERVAL_SECS
    ));
    out.push_str(&format!(
        "KKT verified: {} | iterations: {} | constraint releases: {}\n\n",
        solution.kkt_verified,
        solution.diagnostics.iterations,
        solution.diagnostics.constraint_releases
    ));

    out.push_str("Activated monitors (all other links have zero sampling rate):\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>16} {:>14}\n",
        "link", "rate", "load (pkt/s)", "contrib to θ"
    ));
    let usage = solution.capacity_usage(task);
    for &l in &solution.active_monitors {
        let load_pps = task.link_loads()[l.index()] / MEASUREMENT_INTERVAL_SECS;
        out.push_str(&format!(
            "{:<10} {:>12.6} {:>16.0} {:>13.1}%\n",
            topo.link_label(l),
            solution.rates[l.index()],
            load_pps,
            100.0 * usage[l.index()] / task.theta()
        ));
    }
    let total_usage: f64 = usage.iter().sum();
    out.push_str(&format!(
        "{:<10} {:>12} {:>16} {:>13.1}%\n\n",
        "total",
        "",
        "",
        100.0 * total_usage / task.theta()
    ));

    out.push_str("Tracked OD pairs:\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>9} {:>9} {:>9}  {}\n",
        "OD pair", "pkt/s", "ρ (eff.)", "utility", "accuracy", "monitored on"
    ));
    for (k, od) in task.ods().iter().enumerate() {
        let monitors = solution.monitors_of_od(task, k);
        let where_str: Vec<String> = monitors.iter().map(|&(l, _)| topo.link_label(l)).collect();
        out.push_str(&format!(
            "{:<12} {:>10.0} {:>9.6} {:>9.4} {:>9.4}  {}\n",
            od.name,
            od.size / MEASUREMENT_INTERVAL_SECS,
            solution.effective_rates_approx[k],
            solution.utilities[k],
            accuracies[k].stats.mean,
            where_str.join(", ")
        ));
    }
    out
}

/// Renders a CSV block: a header row then one row per record. All
/// experiment binaries print their figure series through this, so the
/// output is directly plottable.
pub fn render_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::janet_task_with;
    use crate::{evaluate_accuracy, solve_placement, PlacementConfig};

    #[test]
    fn table1_contains_key_sections() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let accs = evaluate_accuracy(&task, &sol, 5, 3);
        let text = render_table1(&task, &sol, &accs);
        assert!(text.contains("Activated monitors"));
        assert!(text.contains("Tracked OD pairs"));
        assert!(text.contains("JANET-NL"));
        assert!(text.contains("JANET-LU"));
        assert!(text.contains("KKT verified: true"));
        // Every active monitor appears with its label.
        for &l in &sol.active_monitors {
            assert!(text.contains(&task.topology().link_label(l)));
        }
    }

    #[test]
    fn csv_rendering() {
        let text = render_csv(
            &["theta", "mean", "worst"],
            &[vec![1000.0, 0.9, 0.5], vec![2000.0, 0.95, 0.7]],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "theta,mean,worst");
        assert_eq!(lines[1], "1000,0.9,0.5");
    }

    #[test]
    #[should_panic(expected = "accuracy vector mismatch")]
    fn table1_length_check() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let _ = render_table1(&task, &sol, &[]);
    }
}
