//! Capacity planning: sizing `θ` for a target measurement quality.
//!
//! The operator-facing inverse of the placement problem. The paper gives the
//! forward direction (θ in → accuracy out, Figure 2); operationally one asks
//! the other way: *how much sampling capacity do I need so that even the
//! worst-tracked OD pair reaches utility `u*`?* Because the optimal
//! worst-OD utility is nondecreasing in θ (more budget can only help —
//! verified by a dedicated test), bisection on θ answers this with a handful
//! of solves.

use crate::{solve_placement, CoreError, MeasurementTask, PlacementConfig};

/// Outcome of a capacity-planning query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningResult {
    /// The smallest capacity found meeting the target (within tolerance).
    pub theta: f64,
    /// The achieved worst-OD utility at that capacity.
    pub achieved_worst_utility: f64,
    /// Number of optimizer solves spent.
    pub solves: usize,
}

/// Finds the (approximately) minimal `θ` whose optimal placement gives every
/// tracked OD pair at least `target_utility`.
///
/// Searches `[theta_min, theta_max]` by bisection to a relative width of
/// `rel_tol` (e.g. `0.01` = size the budget to 1 %).
///
/// # Errors
/// [`CoreError::InvalidTask`] if the target is unreachable even at
/// `theta_max`, if it is already met at `theta_min` (widen the bracket), or
/// for nonsensical parameters. Solver errors propagate.
pub fn theta_for_target_utility(
    task: &MeasurementTask,
    target_utility: f64,
    theta_min: f64,
    theta_max: f64,
    rel_tol: f64,
    config: &PlacementConfig,
) -> Result<PlanningResult, CoreError> {
    if !(target_utility.is_finite() && (0.0..1.0).contains(&target_utility)) {
        return Err(CoreError::InvalidTask(format!(
            "target utility must be in [0,1), got {target_utility}"
        )));
    }
    if !(theta_min > 0.0 && theta_max > theta_min && rel_tol > 0.0) {
        return Err(CoreError::InvalidTask(
            "need 0 < theta_min < theta_max and rel_tol > 0".into(),
        ));
    }
    let mut solves = 0usize;
    let mut worst_at = |theta: f64| -> Result<f64, CoreError> {
        solves += 1;
        let sol = solve_placement(&task.with_theta(theta)?, config)?;
        Ok(sol.utilities.iter().cloned().fold(f64::INFINITY, f64::min))
    };

    let at_max = worst_at(theta_max)?;
    if at_max < target_utility {
        return Err(CoreError::InvalidTask(format!(
            "target {target_utility} unreachable: worst utility at theta_max is {at_max}"
        )));
    }
    let at_min = worst_at(theta_min)?;
    if at_min >= target_utility {
        return Ok(PlanningResult {
            theta: theta_min,
            achieved_worst_utility: at_min,
            solves,
        });
    }

    let (mut lo, mut hi) = (theta_min, theta_max);
    let mut achieved = at_max;
    while hi / lo > 1.0 + rel_tol {
        let mid = (lo * hi).sqrt(); // geometric midpoint: θ spans decades
        let w = worst_at(mid)?;
        if w >= target_utility {
            hi = mid;
            achieved = w;
        } else {
            lo = mid;
        }
    }
    Ok(PlanningResult {
        theta: hi,
        achieved_worst_utility: achieved,
        solves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::janet_task_with;

    fn base() -> MeasurementTask {
        janet_task_with(100_000.0, 1).unwrap()
    }

    #[test]
    fn finds_minimal_theta_for_target() {
        let task = base();
        let cfg = PlacementConfig::default();
        let plan = theta_for_target_utility(&task, 0.95, 1_000.0, 5_000_000.0, 0.02, &cfg).unwrap();
        assert!(plan.achieved_worst_utility >= 0.95);
        // Minimality: 5% less capacity misses the target.
        let sol = solve_placement(&task.with_theta(plan.theta / 1.05).unwrap(), &cfg).unwrap();
        let worst = sol.utilities.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            worst < 0.95,
            "theta {} is not near-minimal (worst at -5%: {worst})",
            plan.theta
        );
        assert!(plan.solves < 40, "too many solves: {}", plan.solves);
    }

    #[test]
    fn target_already_met_at_min() {
        let task = base();
        let cfg = PlacementConfig::default();
        let plan = theta_for_target_utility(&task, 0.1, 50_000.0, 1_000_000.0, 0.05, &cfg).unwrap();
        assert_eq!(plan.theta, 50_000.0);
    }

    #[test]
    fn unreachable_target_reported() {
        let task = base();
        let cfg = PlacementConfig::default();
        let err =
            theta_for_target_utility(&task, 0.99999, 1_000.0, 20_000.0, 0.05, &cfg).unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }

    #[test]
    fn bad_parameters_rejected() {
        let task = base();
        let cfg = PlacementConfig::default();
        assert!(theta_for_target_utility(&task, 1.5, 1.0, 2.0, 0.1, &cfg).is_err());
        assert!(theta_for_target_utility(&task, 0.5, 2.0, 1.0, 0.1, &cfg).is_err());
        assert!(theta_for_target_utility(&task, 0.5, 1.0, 2.0, 0.0, &cfg).is_err());
    }

    #[test]
    fn higher_targets_need_more_capacity() {
        let task = base();
        let cfg = PlacementConfig::default();
        let lo = theta_for_target_utility(&task, 0.90, 1_000.0, 5_000_000.0, 0.02, &cfg).unwrap();
        let hi = theta_for_target_utility(&task, 0.98, 1_000.0, 5_000_000.0, 0.02, &cfg).unwrap();
        assert!(hi.theta > lo.theta, "{} !> {}", hi.theta, lo.theta);
    }
}
