//! Baseline monitoring strategies the optimal method is compared against.
//!
//! §V-C of the paper contrasts the optimum with two naïve deployments —
//! monitoring only the customer's access link, and optimizing over just the
//! UK PoP's six links — and §I's option *(i)* is the ISP status quo of
//! enabling NetFlow everywhere at one low uniform rate. A greedy two-phase
//! heuristic in the spirit of Suh et al. (§II related work: first choose
//! links, then assign rates) completes the set.

use crate::{evaluate_rates, CoreError, MeasurementTask, PlacementSolution};
use nws_topo::LinkId;

/// Monitors **only the access link** of a single ingress (paper §V-C first
/// naïve solution): one monitor samples every tracked OD at the same rate
/// `p = θ / U_access`.
///
/// Note the access link is *not* in the task's candidate set (it is not
/// monitorable by the backbone operator) — that is the point of the
/// comparison. The returned solution carries the access-link rate so its
/// resource usage can be compared, and effective rates equal to `p` for all
/// ODs.
///
/// # Errors
/// [`CoreError::InvalidTask`] if the access link carries no load or the
/// implied rate exceeds 1.
pub fn access_link_only(
    task: &MeasurementTask,
    access_link: LinkId,
) -> Result<AccessLinkSolution, CoreError> {
    let load = task.link_loads()[access_link.index()];
    if load <= 0.0 {
        return Err(CoreError::InvalidTask(
            "access link carries no traffic".into(),
        ));
    }
    let rate = task.theta() / load;
    if rate > 1.0 {
        return Err(CoreError::InvalidTask(format!(
            "capacity {} exceeds access-link traffic {load}",
            task.theta()
        )));
    }
    Ok(AccessLinkSolution {
        access_link,
        rate,
        sampled_per_interval: task.theta(),
    })
}

/// Outcome of the access-link-only strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessLinkSolution {
    /// The monitored access link.
    pub access_link: LinkId,
    /// Uniform sampling rate on it (also every OD's effective rate).
    pub rate: f64,
    /// Sampled packets per interval (= θ, the budget is fully consumed).
    pub sampled_per_interval: f64,
}

impl AccessLinkSolution {
    /// Capacity the access-link monitor would need for every OD to reach the
    /// effective rate `target_rho` — the paper's §V-C accounting that shows
    /// a ~70 % overhead versus the network-wide optimum.
    pub fn capacity_for_rho(&self, task: &MeasurementTask, target_rho: f64) -> f64 {
        task.link_loads()[self.access_link.index()] * target_rho
    }
}

/// Enables NetFlow **everywhere** at one uniform rate (paper §I option (i)):
/// `p` is set on every candidate link such that the capacity is exactly
/// consumed: `p = θ / Σ U_i`.
///
/// # Errors
/// [`CoreError::InvalidTask`] if the uniform rate would exceed the `α` cap of
/// some candidate link.
pub fn uniform_everywhere(task: &MeasurementTask) -> Result<PlacementSolution, CoreError> {
    let total_load: f64 = task
        .candidate_links()
        .iter()
        .map(|&l| task.link_loads()[l.index()])
        .sum();
    let rate = task.theta() / total_load;
    for &l in task.candidate_links() {
        if rate > task.alpha()[l.index()] {
            return Err(CoreError::InvalidTask(format!(
                "uniform rate {rate} exceeds alpha on link {}",
                task.topology().link_label(l)
            )));
        }
    }
    let mut rates = vec![0.0; task.topology().num_links()];
    for &l in task.candidate_links() {
        rates[l.index()] = rate;
    }
    Ok(evaluate_rates(task, &rates))
}

/// A two-phase heuristic in the spirit of Suh et al. (phase 1: pick monitor
/// locations greedily; phase 2: assign rates separately) to contrast with
/// the paper's *joint* formulation.
///
/// * **Phase 1** greedily selects up to `max_monitors` candidate links, each
///   step taking the link covering the most not-yet-covered tracked traffic
///   (the "maximize the fraction of IP flows sampled" goal of the paper’s reference \[10\]).
/// * **Phase 2** splits the capacity `θ` across the chosen links in
///   proportion to the tracked traffic they cover, capped by `α`; leftover
///   capacity from capped links is redistributed once.
///
/// # Errors
/// [`CoreError::InvalidTask`] if `max_monitors == 0`.
pub fn two_phase_heuristic(
    task: &MeasurementTask,
    max_monitors: usize,
) -> Result<PlacementSolution, CoreError> {
    if max_monitors == 0 {
        return Err(CoreError::InvalidTask("need at least one monitor".into()));
    }
    let routing = task.routing();
    let num_ods = task.ods().len();

    // Phase 1: greedy coverage of tracked traffic.
    let mut covered = vec![false; num_ods];
    let mut chosen: Vec<LinkId> = Vec::new();
    while chosen.len() < max_monitors {
        let mut best: Option<(LinkId, f64)> = None;
        for &l in task.candidate_links() {
            if chosen.contains(&l) {
                continue;
            }
            let gain: f64 = (0..num_ods)
                .filter(|&k| !covered[k] && routing.traverses(k, l))
                .map(|k| task.ods()[k].size)
                .sum();
            if gain > 0.0 && best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((l, gain));
            }
        }
        match best {
            Some((l, _)) => {
                for (k, c) in covered.iter_mut().enumerate() {
                    if routing.traverses(k, l) {
                        *c = true;
                    }
                }
                chosen.push(l);
            }
            None => break, // everything covered (or no useful link left)
        }
    }

    // Phase 2: rate assignment proportional to covered tracked traffic.
    let weight: Vec<f64> = chosen
        .iter()
        .map(|&l| {
            (0..num_ods)
                .filter(|&k| routing.traverses(k, l))
                .map(|k| task.ods()[k].size)
                .sum::<f64>()
        })
        .collect();
    let total_weight: f64 = weight.iter().sum();
    let mut rates = vec![0.0; task.topology().num_links()];
    let mut leftover = 0.0;
    for (i, &l) in chosen.iter().enumerate() {
        let budget = task.theta() * weight[i] / total_weight;
        let load = task.link_loads()[l.index()];
        let rate = (budget / load).min(task.alpha()[l.index()]);
        leftover += budget - rate * load;
        rates[l.index()] = rate;
    }
    if leftover > 0.0 {
        // One redistribution round over uncapped links.
        let uncapped: Vec<&LinkId> = chosen
            .iter()
            .filter(|&&l| rates[l.index()] < task.alpha()[l.index()])
            .collect();
        if !uncapped.is_empty() {
            let extra_load: f64 = uncapped
                .iter()
                .map(|&&l| task.link_loads()[l.index()])
                .sum();
            for &&l in &uncapped {
                let bump = leftover / extra_load;
                rates[l.index()] = (rates[l.index()] + bump).min(task.alpha()[l.index()]);
            }
        }
    }
    Ok(evaluate_rates(task, &rates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::janet_task;
    use crate::{solve_placement, PlacementConfig};
    use nws_topo::janet_access_link;

    #[test]
    fn access_link_rate_and_capacity_accounting() {
        let task = janet_task();
        let access = janet_access_link(task.topology());
        let sol = access_link_only(&task, access).unwrap();
        // Access link carries exactly the tracked total: 57 933 pkt/s × 300.
        let load = task.link_loads()[access.index()];
        assert!((load - 57_933.0 * 300.0).abs() < 1e-6);
        assert!((sol.rate - task.theta() / load).abs() < 1e-15);

        // §V-C: reaching ρ = 1 % on the access link costs ~173 798 packets
        // per 5-minute interval (paper's number) — ~74 % above θ = 100 000.
        let needed = sol.capacity_for_rho(&task, 0.01);
        assert!(
            (needed - 173_799.0).abs() < 1.0,
            "expected ≈173 799 sampled pkts, got {needed}"
        );
        assert!(needed / task.theta() > 1.6);
    }

    #[test]
    fn access_link_infeasible_when_theta_huge() {
        let task = janet_task();
        let access = janet_access_link(task.topology());
        let load = task.link_loads()[access.index()];
        let big = task.with_theta(load * 1.5).unwrap();
        assert!(access_link_only(&big, access).is_err());
    }

    #[test]
    fn uniform_everywhere_consumes_budget() {
        let task = janet_task();
        let sol = uniform_everywhere(&task).unwrap();
        let used: f64 = sol.capacity_usage(&task).iter().sum();
        assert!((used / task.theta() - 1.0).abs() < 1e-9);
        // One identical rate on all candidates.
        let rates: Vec<f64> = task
            .candidate_links()
            .iter()
            .map(|&l| sol.rates[l.index()])
            .collect();
        for &r in &rates {
            assert!((r - rates[0]).abs() < 1e-15);
        }
    }

    #[test]
    fn optimal_beats_uniform() {
        let task = janet_task();
        let opt = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let uni = uniform_everywhere(&task).unwrap();
        assert!(
            opt.objective > uni.objective,
            "optimal {} !> uniform {}",
            opt.objective,
            uni.objective
        );
    }

    #[test]
    fn two_phase_covers_and_respects_budget() {
        let task = janet_task();
        let sol = two_phase_heuristic(&task, 6).unwrap();
        assert!(!sol.active_monitors.is_empty());
        assert!(sol.active_monitors.len() <= 6);
        let used: f64 = sol.capacity_usage(&task).iter().sum();
        assert!(used <= task.theta() * (1.0 + 1e-9), "used {used}");
        // With 6 greedy monitors, every OD pair should be observed (the UK
        // links alone cover everything).
        assert!(sol.effective_rates_approx.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn optimal_beats_two_phase() {
        let task = janet_task();
        let opt = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let heur = two_phase_heuristic(&task, 10).unwrap();
        assert!(
            opt.objective > heur.objective,
            "optimal {} !> two-phase {}",
            opt.objective,
            heur.objective
        );
    }

    #[test]
    fn two_phase_zero_monitors_rejected() {
        let task = janet_task();
        assert!(two_phase_heuristic(&task, 0).is_err());
    }

    #[test]
    fn two_phase_single_monitor_picks_biggest_cover() {
        let task = janet_task();
        let sol = two_phase_heuristic(&task, 1).unwrap();
        assert_eq!(sol.active_monitors.len(), 1);
        // The single best-coverage link is UK-NL (30 000 of 57 933 pkt/s).
        let topo = task.topology();
        let label = topo.link_label(sol.active_monitors[0]);
        assert_eq!(label, "UK-NL");
    }
}
