//! Composite multi-task optimization: several measurement tasks sharing one
//! sampling budget.
//!
//! The paper's introduction motivates exactly this: "very often network
//! operators do not have prior knowledge of the measurement tasks the
//! monitoring infrastructure will have to perform … a specific network
//! prefix that is below the radars for traffic engineering purposes may
//! play an important role in the early detection of anomalies" (§I). With
//! router-embedded monitors, one network-wide budget `θ` serves *all*
//! concurrent tasks; the natural formulation maximizes a weighted sum of
//! the tasks' utility sums:
//!
//! ```text
//! maximize Σ_t w_t · Σ_{k∈F_t} M_t(ρ_k(p))     s.t. the usual polytope
//! ```
//!
//! which stays concave because nonnegative combinations of concave
//! functions are concave — the same solver applies unchanged.

use crate::formulation::task_rows;
use crate::{
    CoreError, LogUtility, MeasurementTask, PlacementObjective, RateModel, SreUtility, Utility,
    ACTIVATION_THRESHOLD,
};
use nws_linalg::Vector;
use nws_solver::{BoxLinearProblem, Solver, SolverOptions};
use nws_topo::LinkId;

/// The utility family a sub-task scores its OD pairs with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtilityChoice {
    /// The paper's size-estimation utility (mean squared relative accuracy).
    SizeEstimation,
    /// Coverage utility for detection-flavoured tasks: `LogUtility` with the
    /// given curvature scale (smaller = rewards the first samples more).
    Coverage {
        /// Curvature scale `ε` of the log utility.
        eps: f64,
    },
}

/// Utility dispatch across the supported families.
///
/// A closed enum rather than `Box<dyn Utility>` keeps the objective `Sized`,
/// `Copy`-friendly and fast (no virtual dispatch in the solver hot loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyUtility {
    /// Size-estimation utility.
    Sre(SreUtility),
    /// Coverage (log) utility.
    Log(LogUtility),
}

impl Utility for AnyUtility {
    fn value(&self, rho: f64) -> f64 {
        match self {
            AnyUtility::Sre(u) => u.value(rho),
            AnyUtility::Log(u) => u.value(rho),
        }
    }
    fn d1(&self, rho: f64) -> f64 {
        match self {
            AnyUtility::Sre(u) => u.d1(rho),
            AnyUtility::Log(u) => u.d1(rho),
        }
    }
    fn d2(&self, rho: f64) -> f64 {
        match self {
            AnyUtility::Sre(u) => u.d2(rho),
            AnyUtility::Log(u) => u.d2(rho),
        }
    }
}

/// One task in a composite problem.
#[derive(Debug, Clone, Copy)]
pub struct SubTask<'a> {
    /// The task (topology, OD pairs, loads). All sub-tasks must be built
    /// over the same topology.
    pub task: &'a MeasurementTask,
    /// Relative importance `w_t ≥ 0` of this task's utilities.
    pub weight: f64,
    /// Which utility family scores this task's OD pairs.
    pub utility: UtilityChoice,
}

/// Solution of a composite problem.
#[derive(Debug, Clone)]
pub struct CompositeSolution {
    /// Sampling rate per topology link.
    pub rates: Vec<f64>,
    /// Activated monitors across all tasks.
    pub active_monitors: Vec<LinkId>,
    /// Per sub-task, per-OD utilities at the solution (unweighted).
    pub utilities: Vec<Vec<f64>>,
    /// Per sub-task, per-OD effective rates (approximate model).
    pub effective_rates: Vec<Vec<f64>>,
    /// The weighted objective value.
    pub objective: f64,
    /// Whether the KKT conditions were certified.
    pub kkt_verified: bool,
}

/// Solves several tasks jointly under one capacity `theta`.
///
/// Contract: every sub-task must be built over the same topology (same link
/// count); per-link loads may differ (each task typically includes its own
/// tracked traffic) and are combined conservatively by element-wise maximum
/// for the capacity constraint. Candidate monitors are the union of the
/// sub-tasks' candidate sets. The per-link cap `α` is the element-wise
/// minimum across sub-tasks.
///
/// # Errors
/// [`CoreError::InvalidTask`] for empty/inconsistent inputs;
/// [`CoreError::Solver`] for infeasible `theta`.
pub fn solve_composite(
    subtasks: &[SubTask<'_>],
    theta: f64,
    solver_options: SolverOptions,
) -> Result<CompositeSolution, CoreError> {
    if subtasks.is_empty() {
        return Err(CoreError::InvalidTask("no sub-tasks".into()));
    }
    let num_links = subtasks[0].task.topology().num_links();
    for st in subtasks {
        if st.task.topology().num_links() != num_links {
            return Err(CoreError::InvalidTask(
                "sub-tasks span different topologies".into(),
            ));
        }
        if !(st.weight.is_finite() && st.weight >= 0.0) {
            return Err(CoreError::InvalidTask(format!(
                "sub-task weight {} invalid",
                st.weight
            )));
        }
    }

    // Union candidate set, in link-id order.
    let mut union: Vec<LinkId> = subtasks
        .iter()
        .flat_map(|st| st.task.candidate_links().iter().copied())
        .collect();
    union.sort();
    union.dedup();
    let var_of = |l: LinkId| union.binary_search(&l).ok();

    // Conservative combined loads (max) and caps (min).
    let loads: Vector = union
        .iter()
        .map(|&l| {
            subtasks
                .iter()
                .map(|st| st.task.link_loads()[l.index()])
                .fold(0.0, f64::max)
        })
        .collect();
    let upper: Vector = union
        .iter()
        .map(|&l| {
            subtasks
                .iter()
                .map(|st| st.task.alpha()[l.index()])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let problem = BoxLinearProblem::new(upper, loads, theta)?;

    // Assemble utilities/weights/rows across tasks, remembering the span of
    // each task's ODs in the flat list.
    let mut utilities: Vec<AnyUtility> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for st in subtasks {
        let start = utilities.len();
        for od in st.task.ods() {
            utilities.push(match st.utility {
                UtilityChoice::SizeEstimation => AnyUtility::Sre(SreUtility::new(od.inv_mean_size)),
                UtilityChoice::Coverage { eps } => AnyUtility::Log(LogUtility::new(eps)),
            });
            weights.push(st.weight);
        }
        // Rebuild the task's rows against the union index.
        let index = crate::ReducedIndex::new(st.task);
        for row in task_rows(st.task, &index) {
            rows.push(
                row.into_iter()
                    .filter_map(|(v, r)| var_of(index.link(v)).map(|uv| (uv, r)))
                    .collect(),
            );
        }
        spans.push((start, utilities.len()));
    }

    let objective = PlacementObjective::from_parts(
        utilities,
        weights,
        rows,
        RateModel::Approximate,
        union.len(),
    );
    let sol = Solver::new(solver_options).maximize(&objective, &problem)?;

    // Expand and report per task.
    let mut rates = vec![0.0; num_links];
    for (v, &l) in union.iter().enumerate() {
        rates[l.index()] = sol.p[v];
    }
    let all_rhos = objective.effective_rates(&sol.p);
    let all_utils: Vec<f64> = all_rhos
        .iter()
        .enumerate()
        .map(|(k, &rho)| objective.utilities()[k].value(rho))
        .collect();
    let effective_rates: Vec<Vec<f64>> = spans
        .iter()
        .map(|&(a, b)| all_rhos[a..b].to_vec())
        .collect();
    let utilities_out: Vec<Vec<f64>> = spans
        .iter()
        .map(|&(a, b)| all_utils[a..b].to_vec())
        .collect();
    let active_monitors: Vec<LinkId> = union
        .iter()
        .copied()
        .filter(|&l| rates[l.index()] > ACTIVATION_THRESHOLD)
        .collect();

    Ok(CompositeSolution {
        rates,
        active_monitors,
        utilities: utilities_out,
        effective_rates,
        objective: sol.value,
        kkt_verified: sol.kkt_verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{janet_task_with, BACKGROUND_SEED};
    use crate::{solve_placement, PlacementConfig};
    use nws_routing::OdPair;

    /// A detection-flavoured second task over the same topology: watch two
    /// prefixes "below the radar" (tiny OD pairs).
    fn security_task() -> MeasurementTask {
        let base = janet_task_with(100_000.0, BACKGROUND_SEED).unwrap();
        let topo = base.topology().clone();
        let janet = topo.require_node("JANET").unwrap();
        let hr = topo.require_node("HR").unwrap();
        let ie = topo.require_node("IE").unwrap();
        let bg = base.link_loads().to_vec();
        MeasurementTask::builder(topo)
            .track("SEC-HR", OdPair::new(janet, hr), 1_500.0)
            .track("SEC-IE", OdPair::new(janet, ie), 900.0)
            .background_loads(&bg)
            .theta(100_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn composite_solves_and_certifies() {
        let te = janet_task_with(100_000.0, BACKGROUND_SEED).unwrap();
        let sec = security_task();
        let sol = solve_composite(
            &[
                SubTask {
                    task: &te,
                    weight: 1.0,
                    utility: UtilityChoice::SizeEstimation,
                },
                SubTask {
                    task: &sec,
                    weight: 2.0,
                    utility: UtilityChoice::Coverage { eps: 1e-4 },
                },
            ],
            100_000.0,
            SolverOptions::default(),
        )
        .unwrap();
        assert!(sol.kkt_verified);
        assert_eq!(sol.utilities.len(), 2);
        assert_eq!(sol.utilities[0].len(), 20);
        assert_eq!(sol.utilities[1].len(), 2);
        // Every OD of every task is observed.
        for rates in &sol.effective_rates {
            assert!(rates.iter().all(|&r| r > 0.0));
        }
        // The IE link (only used by the security task) is monitored.
        let topo = te.topology();
        let uk = topo.require_node("UK").unwrap();
        let ie = topo.require_node("IE").unwrap();
        let uk_ie = topo.link_between(uk, ie).unwrap();
        assert!(
            sol.rates[uk_ie.index()] > 0.0,
            "security-only link unmonitored"
        );
    }

    #[test]
    fn single_subtask_matches_plain_solve() {
        let te = janet_task_with(100_000.0, BACKGROUND_SEED).unwrap();
        let plain = solve_placement(&te, &PlacementConfig::default()).unwrap();
        let comp = solve_composite(
            &[SubTask {
                task: &te,
                weight: 1.0,
                utility: UtilityChoice::SizeEstimation,
            }],
            100_000.0,
            SolverOptions::default(),
        )
        .unwrap();
        assert!((comp.objective - plain.objective).abs() < 1e-6);
        for (a, b) in comp.rates.iter().zip(&plain.rates) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn weight_shifts_allocation() {
        let te = janet_task_with(100_000.0, BACKGROUND_SEED).unwrap();
        let sec = security_task();
        let solve_with = |w_sec: f64| {
            solve_composite(
                &[
                    SubTask {
                        task: &te,
                        weight: 1.0,
                        utility: UtilityChoice::SizeEstimation,
                    },
                    SubTask {
                        task: &sec,
                        weight: w_sec,
                        utility: UtilityChoice::Coverage { eps: 1e-4 },
                    },
                ],
                100_000.0,
                SolverOptions::default(),
            )
            .unwrap()
        };
        let lo = solve_with(0.1);
        let hi = solve_with(10.0);
        // More weight on the security task => at least as much effective
        // rate for its ODs.
        for (a, b) in hi.effective_rates[1].iter().zip(&lo.effective_rates[1]) {
            assert!(a >= &(b - 1e-9), "hi {a} < lo {b}");
        }
        assert!(hi.effective_rates[1][0] > lo.effective_rates[1][0]);
    }

    #[test]
    fn empty_and_mismatched_rejected() {
        assert!(solve_composite(&[], 1.0, SolverOptions::default()).is_err());
        let te = janet_task_with(100_000.0, BACKGROUND_SEED).unwrap();
        let other_topo_task = {
            let topo = nws_topo::abilene();
            let cust = topo.require_node("CUST").unwrap();
            let chin = topo.require_node("CHIN").unwrap();
            MeasurementTask::builder(topo)
                .track("X", OdPair::new(cust, chin), 1e6)
                .theta(100.0)
                .build()
                .unwrap()
        };
        let err = solve_composite(
            &[
                SubTask {
                    task: &te,
                    weight: 1.0,
                    utility: UtilityChoice::SizeEstimation,
                },
                SubTask {
                    task: &other_topo_task,
                    weight: 1.0,
                    utility: UtilityChoice::SizeEstimation,
                },
            ],
            1_000.0,
            SolverOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidTask(_)));
    }
}
