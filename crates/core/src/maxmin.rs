//! Max–min fairness objective (the alternative formulation of §III).
//!
//! The paper's objective maximizes the *sum* of utilities, noting that the
//! max–min alternative `max_p min_k M(ρ_k)` trades flexibility for fairness
//! and is not differentiable, which conflicts with the Newton line search
//! (§III). This module implements the standard smooth work-around the paper
//! leaves to future work: the **soft-min**
//!
//! ```text
//! f_β(p) = −(1/β)·ln Σ_k exp(−β·M_k(ρ_k(p)))
//! ```
//!
//! which is C², concave (log-sum-exp of concave arguments), within
//! `ln(F)/β` of the true minimum, and converges to it as `β → ∞`. A small
//! homotopy (increasing β, warm-starting each stage) keeps the smooth
//! problems well conditioned.

use crate::{
    build_problem, CoreError, MeasurementTask, PlacementObjective, RateModel, ReducedIndex, Utility,
};
use nws_linalg::Vector;
use nws_solver::{Objective, Solver, SolverOptions};
use nws_topo::LinkId;

/// Soft-min objective over the per-OD utilities, with the approximate
/// (linear) effective-rate model.
pub struct SoftMinObjective<'a> {
    inner: &'a PlacementObjective,
    beta: f64,
}

impl<'a> SoftMinObjective<'a> {
    /// Wraps a placement objective with soft-min sharpness `beta`.
    ///
    /// # Panics
    /// Panics unless `beta > 0`.
    pub fn new(inner: &'a PlacementObjective, beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "beta must be positive, got {beta}"
        );
        SoftMinObjective { inner, beta }
    }

    /// Per-OD soft-max weights `w_k ∝ exp(−β·M_k)` at `p` (they concentrate
    /// on the worst-off OD as β grows).
    fn weights(&self, utilities: &[f64]) -> Vec<f64> {
        let m_min = utilities.iter().copied().fold(f64::INFINITY, f64::min);
        let unnorm: Vec<f64> = utilities
            .iter()
            .map(|&m| (-self.beta * (m - m_min)).exp())
            .collect();
        let z: f64 = unnorm.iter().sum();
        unnorm.into_iter().map(|w| w / z).collect()
    }

    fn utilities_at(&self, p: &Vector) -> Vec<f64> {
        self.inner
            .effective_rates(p)
            .iter()
            .enumerate()
            .map(|(k, &rho)| self.inner.utilities()[k].value(rho))
            .collect()
    }
}

impl Objective for SoftMinObjective<'_> {
    fn value(&self, p: &Vector) -> f64 {
        let utilities = self.utilities_at(p);
        let m_min = utilities.iter().copied().fold(f64::INFINITY, f64::min);
        let z: f64 = utilities
            .iter()
            .map(|&m| (-self.beta * (m - m_min)).exp())
            .sum();
        m_min - z.ln() / self.beta
    }

    fn gradient(&self, p: &Vector) -> Vector {
        let rhos = self.inner.effective_rates(p);
        let utilities: Vec<f64> = rhos
            .iter()
            .enumerate()
            .map(|(k, &rho)| self.inner.utilities()[k].value(rho))
            .collect();
        let w = self.weights(&utilities);
        // ∂f/∂p_i = Σ_k w_k·M'_k(ρ_k)·r_{k,i}; reuse the inner objective's
        // sparse rows via a weighted gradient trick: evaluate per-OD.
        let mut g = Vector::zeros(p.len());
        for (k, &rho) in rhos.iter().enumerate() {
            let scale = w[k] * self.inner.utilities()[k].d1(rho);
            for (v, r) in self.inner.row(k) {
                g[*v] += scale * r;
            }
        }
        g
    }

    fn curvature_along(&self, p: &Vector, s: &Vector) -> f64 {
        let rhos = self.inner.effective_rates(p);
        let utilities: Vec<f64> = rhos
            .iter()
            .enumerate()
            .map(|(k, &rho)| self.inner.utilities()[k].value(rho))
            .collect();
        let w = self.weights(&utilities);
        // h_k' = M'·(r_k·s); h_k'' = M''·(r_k·s)².
        // f'' = Σ w_k h_k'' − β·Var_w(h_k')  (both terms ≤ 0).
        let mut mean_h1 = 0.0;
        let mut mean_h1_sq = 0.0;
        let mut sum_h2 = 0.0;
        for (k, &rho) in rhos.iter().enumerate() {
            let drho: f64 = self.inner.row(k).iter().map(|&(v, r)| r * s[v]).sum();
            let h1 = self.inner.utilities()[k].d1(rho) * drho;
            let h2 = self.inner.utilities()[k].d2(rho) * drho * drho;
            mean_h1 += w[k] * h1;
            mean_h1_sq += w[k] * h1 * h1;
            sum_h2 += w[k] * h2;
        }
        sum_h2 - self.beta * (mean_h1_sq - mean_h1 * mean_h1)
    }
}

/// Result of the max–min optimization.
#[derive(Debug, Clone)]
pub struct MaxMinSolution {
    /// Sampling rate per topology link.
    pub rates: Vec<f64>,
    /// Activated monitors.
    pub active_monitors: Vec<LinkId>,
    /// Per-OD utilities at the solution.
    pub utilities: Vec<f64>,
    /// The achieved minimum utility (the max–min objective value).
    pub min_utility: f64,
    /// Final soft-min sharpness used.
    pub final_beta: f64,
    /// Whether the final smooth stage reached a certified KKT point.
    pub kkt_verified: bool,
}

/// Solves the max–min placement by a soft-min homotopy over `betas`
/// (ascending), warm-starting each stage from the previous solution.
///
/// # Errors
/// [`CoreError::Solver`] for infeasible capacity or solver failures;
/// [`CoreError::InvalidTask`] if `betas` is empty or not ascending/positive.
pub fn solve_maxmin(
    task: &MeasurementTask,
    solver_options: SolverOptions,
    betas: &[f64],
) -> Result<MaxMinSolution, CoreError> {
    if betas.is_empty() {
        return Err(CoreError::InvalidTask("empty beta schedule".into()));
    }
    if betas.windows(2).any(|w| w[0] >= w[1]) || betas[0] <= 0.0 {
        return Err(CoreError::InvalidTask(
            "beta schedule must be positive and strictly ascending".into(),
        ));
    }
    let index = ReducedIndex::new(task);
    let inner = PlacementObjective::new(task, &index, RateModel::Approximate);
    let problem = build_problem(task, &index)?;
    let solver = Solver::new(solver_options);

    let mut start = problem.feasible_start();
    let mut last = None;
    for &beta in betas {
        let obj = SoftMinObjective::new(&inner, beta);
        let sol = solver.maximize_from(&obj, &problem, start.clone())?;
        start = sol.p.clone();
        last = Some((sol, beta));
    }
    let (sol, final_beta) = last.expect("non-empty schedule");

    let utilities: Vec<f64> = inner
        .effective_rates(&sol.p)
        .iter()
        .enumerate()
        .map(|(k, &rho)| inner.utilities()[k].value(rho))
        .collect();
    let min_utility = utilities.iter().copied().fold(f64::INFINITY, f64::min);
    let rates = index.expand(&sol.p, task.topology().num_links());
    let active_monitors: Vec<LinkId> = task
        .candidate_links()
        .iter()
        .copied()
        .filter(|&l| rates[l.index()] > crate::ACTIVATION_THRESHOLD)
        .collect();
    Ok(MaxMinSolution {
        rates,
        active_monitors,
        utilities,
        min_utility,
        final_beta,
        kkt_verified: sol.kkt_verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::janet_task_with;
    use crate::{solve_placement, PlacementConfig};

    fn betas() -> Vec<f64> {
        vec![50.0, 200.0, 1000.0]
    }

    #[test]
    fn softmin_value_below_true_min() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        let index = ReducedIndex::new(&task);
        let inner = PlacementObjective::new(&task, &index, RateModel::Approximate);
        let obj = SoftMinObjective::new(&inner, 100.0);
        let problem = build_problem(&task, &index).unwrap();
        let p = problem.feasible_start();
        let utilities: Vec<f64> = inner
            .effective_rates(&p)
            .iter()
            .enumerate()
            .map(|(k, &rho)| inner.utilities()[k].value(rho))
            .collect();
        let true_min = utilities.iter().copied().fold(f64::INFINITY, f64::min);
        let v = obj.value(&p);
        assert!(v <= true_min + 1e-12, "softmin {v} above min {true_min}");
        // Within ln(F)/β.
        assert!(true_min - v <= (20.0f64).ln() / 100.0 + 1e-12);
    }

    #[test]
    fn softmin_gradient_matches_finite_differences() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        let index = ReducedIndex::new(&task);
        let inner = PlacementObjective::new(&task, &index, RateModel::Approximate);
        let obj = SoftMinObjective::new(&inner, 80.0);
        let p: Vector = (0..index.dim()).map(|v| 1e-3 + 1e-4 * v as f64).collect();
        let g = obj.gradient(&p);
        for v in (0..index.dim()).step_by(5) {
            let h = 1e-8;
            let mut pp = p.clone();
            pp[v] += h;
            let mut pm = p.clone();
            pm[v] -= h;
            let fd = (obj.value(&pp) - obj.value(&pm)) / (2.0 * h);
            assert!(
                (fd - g[v]).abs() <= 1e-3 * g[v].abs().max(1e-6),
                "var {v}: fd {fd} vs {}",
                g[v]
            );
        }
    }

    #[test]
    fn maxmin_raises_worst_od() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        let sum_opt = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let mm = solve_maxmin(&task, SolverOptions::default(), &betas()).unwrap();
        let sum_min = sum_opt
            .utilities
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            mm.min_utility >= sum_min - 1e-6,
            "max-min worst {} < sum-opt worst {sum_min}",
            mm.min_utility
        );
        // And the spread tightens.
        let spread = |u: &[f64]| {
            u.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - u.iter().copied().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&mm.utilities) <= spread(&sum_opt.utilities) + 1e-9);
    }

    #[test]
    fn maxmin_sacrifices_total_utility() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        let sum_opt = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let mm = solve_maxmin(&task, SolverOptions::default(), &betas()).unwrap();
        let mm_total: f64 = mm.utilities.iter().sum();
        assert!(mm_total <= sum_opt.objective + 1e-9);
    }

    #[test]
    fn bad_beta_schedules_rejected() {
        let task = janet_task_with(50_000.0, 1).unwrap();
        assert!(solve_maxmin(&task, SolverOptions::default(), &[]).is_err());
        assert!(solve_maxmin(&task, SolverOptions::default(), &[10.0, 5.0]).is_err());
        assert!(solve_maxmin(&task, SolverOptions::default(), &[-1.0, 5.0]).is_err());
    }
}
