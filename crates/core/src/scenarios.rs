//! The reconstructed GEANT/JANET evaluation scenario of the paper's §V.
//!
//! The paper tracks the traffic JANET (UK research network, AS 786) sends to
//! each of 20 GEANT PoPs through the UK PoP, on flow data of November 22,
//! 2004, with capacity `θ = 100 000` sampled packets per 5-minute interval
//! and no per-link rate cap (`α_i = 1`).
//!
//! The real NetFlow feed is not public; this module reconstructs the
//! workload with the marginals the paper reports:
//!
//! * 20 OD pairs spanning the full size spectrum — JANET→NL above
//!   30 000 pkt/s down to JANET→LU at a mere 20 pkt/s;
//! * total tracked traffic of 57 933 pkt/s (paper footnote 2);
//! * JANET-SK and JANET-LU as the two smallest pairs;
//! * background cross-traffic from a gravity model, scaled so the UK links
//!   are heavily loaded relative to stub links like FR-LU and CZ-SK —
//!   the property that makes network-wide placement beat edge monitoring.

use crate::{CoreError, MeasurementTask};
use nws_routing::OdPair;
use nws_topo::{geant, LinkId, Topology};
use nws_traffic::demand::DemandMatrix;
use nws_traffic::MEASUREMENT_INTERVAL_SECS;

/// The 20 destination PoPs and their JANET-sourced rates in packets/second,
/// in the descending order of the paper's Table I. The values reproduce the
/// reported anchors (NL > 30 000 pkt/s, LU = 20 pkt/s, total = 57 933 pkt/s,
/// SK and LU smallest).
pub const JANET_OD_RATES: [(&str, f64); 20] = [
    ("NL", 30_000.0),
    ("NY", 9_000.0),
    ("DE", 5_500.0),
    ("SE", 3_500.0),
    ("CH", 2_500.0),
    ("FR", 2_000.0),
    ("PL", 1_500.0),
    ("GR", 1_100.0),
    ("ES", 800.0),
    ("SI", 600.0),
    ("IT", 450.0),
    ("AT", 350.0),
    ("CZ", 250.0),
    ("BE", 150.0),
    ("PT", 80.0),
    ("HU", 55.0),
    ("HR", 32.0),
    ("IL", 24.0),
    ("SK", 22.0),
    ("LU", 20.0),
];

/// The paper's capacity: at most 100 000 sampled packets per 5-minute
/// interval network-wide.
pub const PAPER_THETA: f64 = 100_000.0;

/// Total background (non-JANET) traffic injected into GEANT by the gravity
/// model, in packets/second. Chosen so that backbone link loads span the
/// few-thousands (stub links) to many-tens-of-thousands (UK/DE core links)
/// pkt/s range, matching the load spread Table I relies on.
pub const BACKGROUND_TOTAL_PKTS_PER_SEC: f64 = 1_200_000.0;

/// Deterministic seed of the background gravity matrix, fixed so that every
/// experiment in the workspace sees the same "November 22, 2004".
pub const BACKGROUND_SEED: u64 = 20041122;

/// Builds the full JANET measurement task: GEANT topology, the 20 tracked OD
/// pairs of [`JANET_OD_RATES`], gravity background, `θ =` [`PAPER_THETA`],
/// `α = 1`.
pub fn janet_task() -> MeasurementTask {
    janet_task_with(PAPER_THETA, BACKGROUND_SEED).expect("reference scenario is statically valid")
}

/// Builds the JANET task with a custom capacity and background seed — the
/// knobs swept by the Figure 2 and convergence experiments.
///
/// # Errors
/// [`CoreError::InvalidTask`] if `theta` is invalid.
pub fn janet_task_with(theta: f64, background_seed: u64) -> Result<MeasurementTask, CoreError> {
    let topo = geant();
    let background = DemandMatrix::gravity_capacity_weighted(
        &topo,
        BACKGROUND_TOTAL_PKTS_PER_SEC * MEASUREMENT_INTERVAL_SECS,
        0.5,
        background_seed,
    );
    let bg_loads = background.link_loads(&topo);
    janet_task_on(topo, &bg_loads, theta)
}

/// Builds the JANET task over a caller-supplied topology and background
/// load vector (packets per interval per link). Used by the re-routing
/// experiment, which rebuilds the task on a post-failure topology.
///
/// # Errors
/// [`CoreError::InvalidTask`] on invalid `theta` or if some destination PoP
/// is unreachable in `topo`.
pub fn janet_task_on(
    topo: Topology,
    background_loads: &[f64],
    theta: f64,
) -> Result<MeasurementTask, CoreError> {
    let janet = topo
        .node_by_name(nws_topo::JANET_NODE)
        .ok_or_else(|| CoreError::InvalidTask("topology lacks a JANET node".into()))?;
    // Resolve destinations before the builder takes ownership of `topo`
    // (node ids stay valid — the builder does not mutate the topology).
    let mut pairs = Vec::with_capacity(JANET_OD_RATES.len());
    for &(dst, rate) in &JANET_OD_RATES {
        let node = topo
            .node_by_name(dst)
            .ok_or_else(|| CoreError::InvalidTask(format!("missing PoP {dst}")))?;
        pairs.push((
            format!("JANET-{dst}"),
            OdPair::new(janet, node),
            rate * MEASUREMENT_INTERVAL_SECS,
        ));
    }
    let mut builder = MeasurementTask::builder(topo);
    for (name, od, size) in pairs {
        builder = builder.track(name, od, size);
    }
    builder
        .background_loads(background_loads)
        .theta(theta)
        .build()
}

/// The 10 destination PoPs and customer-sourced rates (packets/second) of
/// the Abilene cross-network scenario. Same spectrum shape as the JANET
/// task: one dominant pair, a heavy middle, and mice at the tail.
pub const ABILENE_OD_RATES: [(&str, f64); 10] = [
    ("CHIN", 18_000.0),
    ("WASH", 7_000.0),
    ("IPLS", 2_600.0),
    ("ATLA", 1_200.0),
    ("KSCY", 520.0),
    ("DNVR", 210.0),
    ("HSTN", 90.0),
    ("SNVA", 45.0),
    ("LOSA", 25.0),
    ("STTL", 15.0),
];

/// Builds the Abilene cross-network task: customer at the New York PoP
/// tracking 10 OD pairs, gravity background, capacity `theta`.
///
/// Used to check the paper's §V-C generality claim: the optimizer's
/// advantage is a property of backbone design, not of GEANT specifically.
///
/// # Errors
/// [`CoreError::InvalidTask`] if `theta` is invalid.
pub fn abilene_task(theta: f64, background_seed: u64) -> Result<MeasurementTask, CoreError> {
    let topo = nws_topo::abilene();
    // Abilene trunks are uniformly OC-192, so the load asymmetry the method
    // exploits must come from traffic locality, as it did in reality:
    // Internet2 traffic was strongly east-coast weighted. Base masses model
    // PoP size (order: STTL SNVA LOSA DNVR KSCY HSTN IPLS ATLA CHIN WASH
    // NYCM + external customer with zero gravity mass).
    let base_masses: Vec<f64> = nws_topo::ABILENE_POPS
        .iter()
        .map(|&pop| match pop {
            "NYCM" => 10.0,
            "CHIN" | "WASH" => 8.0,
            "ATLA" => 5.0,
            "IPLS" | "LOSA" => 4.0,
            "SNVA" | "HSTN" => 3.0,
            "KSCY" | "STTL" => 1.5,
            "DNVR" => 1.0,
            _ => 1.0,
        })
        .chain(std::iter::once(0.0)) // the external customer node
        .collect();
    let background = DemandMatrix::gravity_with_masses(
        &topo,
        600_000.0 * MEASUREMENT_INTERVAL_SECS,
        &base_masses,
        0.4,
        background_seed,
    );
    let bg_loads = background.link_loads(&topo);

    let cust = topo
        .node_by_name(nws_topo::ABILENE_CUSTOMER)
        .ok_or_else(|| CoreError::InvalidTask("missing customer node".into()))?;
    let mut pairs = Vec::with_capacity(ABILENE_OD_RATES.len());
    for &(dst, rate) in &ABILENE_OD_RATES {
        let node = topo
            .node_by_name(dst)
            .ok_or_else(|| CoreError::InvalidTask(format!("missing PoP {dst}")))?;
        pairs.push((
            format!("CUST-{dst}"),
            OdPair::new(cust, node),
            rate * MEASUREMENT_INTERVAL_SECS,
        ));
    }
    let mut builder = MeasurementTask::builder(topo);
    for (name, od, size) in pairs {
        builder = builder.track(name, od, size);
    }
    builder.background_loads(&bg_loads).theta(theta).build()
}

/// The ingress PoP's backbone links in the Abilene scenario (NYCM's trunks,
/// both directions) — the analogue of [`uk_links`] for the §V-C comparison.
pub fn nycm_links(topo: &Topology) -> Vec<LinkId> {
    let nycm = topo.require_node("NYCM").expect("NYCM present");
    topo.out_links(nycm)
        .chain(topo.in_links(nycm))
        .filter(|&l| topo.link(l).monitorable())
        .collect()
}

/// The six UK backbone links (both directions are returned; the outbound
/// direction is what the JANET OD pairs traverse) — the restricted monitor
/// set of the paper's §V-C comparison.
pub fn uk_links(topo: &Topology) -> Vec<LinkId> {
    let uk = topo.require_node("UK").expect("UK PoP present");
    topo.out_links(uk)
        .chain(topo.in_links(uk))
        .filter(|&l| topo.link(l).monitorable())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn od_rates_match_paper_anchors() {
        let total: f64 = JANET_OD_RATES.iter().map(|&(_, r)| r).sum();
        assert_eq!(total, 57_933.0, "paper footnote 2 total");
        assert_eq!(JANET_OD_RATES[0], ("NL", 30_000.0));
        assert_eq!(JANET_OD_RATES[19], ("LU", 20.0));
        assert_eq!(JANET_OD_RATES[18].0, "SK");
        // Strictly descending sizes.
        for w in JANET_OD_RATES.windows(2) {
            assert!(w[0].1 > w[1].1, "{} !> {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn task_builds_with_20_ods() {
        let task = janet_task();
        assert_eq!(task.ods().len(), 20);
        assert_eq!(task.theta(), PAPER_THETA);
        // Sizes are pkt/s × 300.
        assert_eq!(task.ods()[0].size, 30_000.0 * 300.0);
        // Roughly 20 candidate links (the paper reports 22 of 72).
        let n = task.candidate_links().len();
        assert!((15..=25).contains(&n), "candidate links: {n}");
    }

    #[test]
    fn uk_links_are_six_each_direction() {
        let task = janet_task();
        let links = uk_links(task.topology());
        assert_eq!(links.len(), 12); // 6 PoPs × 2 directions
    }

    #[test]
    fn background_loads_heavier_on_core() {
        let task = janet_task();
        let topo = task.topology();
        let load = |a: &str, b: &str| {
            let l = topo
                .link_between(topo.require_node(a).unwrap(), topo.require_node(b).unwrap())
                .unwrap();
            task.link_loads()[l.index()]
        };
        // UK-NL (core, plus 30k pkt/s of JANET traffic) must dwarf FR-LU.
        assert!(load("UK", "NL") > 10.0 * load("FR", "LU"));
        assert!(load("CZ", "SK") < load("UK", "FR"));
        // Every candidate link has positive load.
        for &l in task.candidate_links() {
            assert!(task.link_loads()[l.index()] > 0.0);
        }
    }

    #[test]
    fn deterministic_reconstruction() {
        let a = janet_task();
        let b = janet_task();
        assert_eq!(a.link_loads(), b.link_loads());
    }

    #[test]
    fn abilene_task_builds() {
        let task = abilene_task(40_000.0, 7).unwrap();
        assert_eq!(task.ods().len(), 10);
        assert!(task.candidate_links().len() >= 8);
        let links = nycm_links(task.topology());
        assert_eq!(links.len(), 4); // CHIN + WASH trunks, both directions
    }

    #[test]
    fn custom_theta_applies() {
        let t = janet_task_with(5_000.0, BACKGROUND_SEED).unwrap();
        assert_eq!(t.theta(), 5_000.0);
        assert!(janet_task_with(-1.0, BACKGROUND_SEED).is_err());
    }
}
