//! Persistent evaluation worker pool.
//!
//! The objective-evaluation engine is embarrassingly parallel over OD rows,
//! but a solver iteration performs many small evaluations (one per line-search
//! probe), so spawning threads per call — as the PR-1 engine did with
//! [`std::thread::scope`] — costs more than the row sweep it parallelizes.
//! [`EvalPool`] fixes the lifecycle: worker threads are created **once**,
//! park on their job channel between calls, and are fed chunk tasks through a
//! per-call reply channel. The dispatching thread collects one reply per
//! chunk and merges them in chunk order, so results are deterministic for a
//! fixed chunk count regardless of completion order.
//!
//! Failure contract: a panic inside a chunk task is caught on the worker
//! (`catch_unwind`), reported back as [`PoolError::WorkerPanicked`], and the
//! worker returns to its channel — the pool stays usable and the caller gets
//! a typed error instead of a hang or an aborted process. A worker that
//! disappears entirely (its channel disconnects) surfaces as
//! [`PoolError::Disconnected`].
//!
//! Dropping the last handle to a pool closes every job channel and joins the
//! workers — clean shutdown with no detached threads.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Partial result of one chunk evaluation, merged slot-by-slot by the
/// dispatcher. Scalar fields are summed across chunks; when
/// `grad_in_scratch` is set the chunk's scratch buffer holds a partial
/// gradient to accumulate (in slot order, for determinism).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChunkOut {
    /// Partial objective value.
    pub value: f64,
    /// Partial first directional derivative.
    pub derivative: f64,
    /// Partial second directional derivative.
    pub curvature: f64,
    /// Whether the scratch buffer carries a partial gradient.
    pub grad_in_scratch: bool,
}

/// A chunk task: evaluates one contiguous OD-row range into a [`ChunkOut`],
/// optionally accumulating a partial gradient into the scratch slice.
pub type ChunkTask = Arc<dyn Fn(Range<usize>, &mut [f64]) -> ChunkOut + Send + Sync>;

/// Typed pool failures. See the module docs for the failure contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A chunk task panicked on a worker; the panic was caught and the pool
    /// remains usable.
    WorkerPanicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// A worker's channel disconnected mid-evaluation (the worker thread
    /// died outside the catch-unwind guard, or the pool is shutting down).
    Disconnected,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::WorkerPanicked { message } => {
                write!(f, "evaluation worker panicked: {message}")
            }
            PoolError::Disconnected => write!(f, "evaluation worker channel disconnected"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Monotonic counters of one pool's lifetime activity (a snapshot; the pool
/// keeps counting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fan-out evaluations dispatched (one per `run` call).
    pub dispatches: u64,
    /// Chunk tasks handed to workers across all dispatches.
    pub tasks: u64,
    /// Worker park/wake cycles (a worker waking from its channel to run one
    /// task). Equals `tasks` unless jobs queue behind a busy worker.
    pub wakes: u64,
    /// Chunk tasks that panicked (caught and reported as typed errors).
    pub panics: u64,
}

#[derive(Default)]
struct StatCells {
    dispatches: AtomicU64,
    tasks: AtomicU64,
    wakes: AtomicU64,
    panics: AtomicU64,
}

struct Job {
    task: ChunkTask,
    range: Range<usize>,
    slot: usize,
    scratch: Vec<f64>,
    reply: Sender<Reply>,
}

struct Reply {
    slot: usize,
    out: Result<ChunkOut, String>,
    scratch: Vec<f64>,
}

struct PoolInner {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<StatCells>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        // Disconnect every job channel so workers fall out of `recv`, then
        // join them — shutdown leaves no detached threads behind.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A long-lived pool of evaluation workers. Cheap to clone (a handle); the
/// workers shut down when the last handle drops.
#[derive(Clone)]
pub struct EvalPool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalPool")
            .field("threads", &self.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(jobs: Receiver<Job>, stats: Arc<StatCells>) {
    while let Ok(job) = jobs.recv() {
        stats.wakes.fetch_add(1, Ordering::Relaxed);
        let Job {
            task,
            range,
            slot,
            mut scratch,
            reply,
        } = job;
        let out =
            catch_unwind(AssertUnwindSafe(|| task(range, &mut scratch))).map_err(panic_message);
        if out.is_err() {
            stats.panics.fetch_add(1, Ordering::Relaxed);
        }
        // A failed send means the dispatcher already gave up on this
        // evaluation (e.g. another chunk panicked); drop the reply.
        let _ = reply.send(Reply { slot, out, scratch });
    }
}

impl EvalPool {
    /// Spawns a pool of `threads` workers (at least one). The threads are
    /// created here, once — evaluations only pay a channel handoff.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let stats = Arc::new(StatCells::default());
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = channel::<Job>();
            let stats = Arc::clone(&stats);
            let handle = std::thread::Builder::new()
                .name(format!("nws-eval-{w}"))
                .spawn(move || worker_loop(rx, stats))
                .expect("spawn evaluation worker");
            senders.push(tx);
            handles.push(handle);
        }
        EvalPool {
            inner: Arc::new(PoolInner {
                senders,
                handles,
                stats,
            }),
        }
    }

    /// A process-wide shared pool of `threads` workers, created on first use
    /// and reused by every objective resolving the same worker count — so a
    /// daemon re-solving in a loop spawns its evaluation threads exactly
    /// once, not once per solve.
    pub fn global(threads: usize) -> EvalPool {
        static POOLS: OnceLock<Mutex<HashMap<usize, EvalPool>>> = OnceLock::new();
        let threads = threads.max(1);
        let mut pools = POOLS
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        pools
            .entry(threads)
            .or_insert_with(|| EvalPool::new(threads))
            .clone()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.senders.len()
    }

    /// Snapshot of the pool's activity counters.
    pub fn stats(&self) -> PoolStats {
        let s = &self.inner.stats;
        PoolStats {
            dispatches: s.dispatches.load(Ordering::Relaxed),
            tasks: s.tasks.load(Ordering::Relaxed),
            wakes: s.wakes.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
        }
    }

    /// Runs `task` over each range, one chunk per slot, and returns the
    /// per-chunk outputs **in slot order** together with their scratch
    /// buffers (pre-sized by `scratch_for`; zero-length for scalar kernels).
    ///
    /// Chunks are distributed round-robin over the workers; the call blocks
    /// until every chunk has replied.
    ///
    /// # Errors
    /// [`PoolError::WorkerPanicked`] if any chunk task panicked (the first
    /// panic message is reported; the pool itself remains usable), or
    /// [`PoolError::Disconnected`] if a worker vanished.
    pub fn run(
        &self,
        ranges: &[Range<usize>],
        task: ChunkTask,
        mut scratch_for: impl FnMut(usize) -> Vec<f64>,
    ) -> Result<Vec<(ChunkOut, Vec<f64>)>, PoolError> {
        let n = ranges.len();
        self.inner.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .tasks
            .fetch_add(n as u64, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel::<Reply>();
        for (slot, range) in ranges.iter().enumerate() {
            let job = Job {
                task: Arc::clone(&task),
                range: range.clone(),
                slot,
                scratch: scratch_for(slot),
                reply: reply_tx.clone(),
            };
            self.inner.senders[slot % self.inner.senders.len()]
                .send(job)
                .map_err(|_| PoolError::Disconnected)?;
        }
        // Drop our clone so the reply channel disconnects once every worker
        // has answered (or died) — `recv` can never hang.
        drop(reply_tx);
        let mut outs: Vec<Option<(ChunkOut, Vec<f64>)>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<String> = None;
        for _ in 0..n {
            match reply_rx.recv() {
                Ok(Reply { slot, out, scratch }) => match out {
                    Ok(chunk_out) => outs[slot] = Some((chunk_out, scratch)),
                    Err(message) => {
                        first_panic.get_or_insert(message);
                    }
                },
                Err(_) => break,
            }
        }
        if let Some(message) = first_panic {
            return Err(PoolError::WorkerPanicked { message });
        }
        outs.into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or(PoolError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_task() -> ChunkTask {
        Arc::new(|range: Range<usize>, _scratch: &mut [f64]| ChunkOut {
            value: range.map(|i| i as f64).sum(),
            ..ChunkOut::default()
        })
    }

    #[test]
    fn runs_chunks_and_merges_in_slot_order() {
        let pool = EvalPool::new(3);
        let ranges = vec![0..10, 10..20, 20..30, 30..40];
        let outs = pool.run(&ranges, sum_task(), |_| Vec::new()).unwrap();
        assert_eq!(outs.len(), 4);
        let total: f64 = outs.iter().map(|(o, _)| o.value).sum();
        assert_eq!(total, (0..40).sum::<usize>() as f64);
        // Slot order preserved: chunk 0 is the 0..10 partial.
        assert_eq!(outs[0].0.value, (0..10).sum::<usize>() as f64);
    }

    #[test]
    fn scratch_buffers_round_trip() {
        let pool = EvalPool::new(2);
        let task: ChunkTask = Arc::new(|range: Range<usize>, scratch: &mut [f64]| {
            for i in range {
                scratch[i % scratch.len()] += 1.0;
            }
            ChunkOut {
                grad_in_scratch: true,
                ..ChunkOut::default()
            }
        });
        let outs = pool.run(&[0..8, 8..16], task, |_| vec![0.0; 4]).unwrap();
        for (out, scratch) in &outs {
            assert!(out.grad_in_scratch);
            assert_eq!(scratch.iter().sum::<f64>(), 8.0);
        }
    }

    #[test]
    fn panic_is_typed_and_pool_survives() {
        let pool = EvalPool::new(2);
        let boom: ChunkTask = Arc::new(|range: Range<usize>, _s: &mut [f64]| {
            if range.start == 0 {
                panic!("chunk exploded");
            }
            ChunkOut::default()
        });
        let err = pool.run(&[0..1, 1..2], boom, |_| Vec::new()).unwrap_err();
        match &err {
            PoolError::WorkerPanicked { message } => {
                assert!(message.contains("chunk exploded"), "{message}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(err.to_string().contains("panicked"));
        assert_eq!(pool.stats().panics, 1);
        // Same pool, healthy task: still works.
        let outs = pool
            .run(&[0..5, 5..10], sum_task(), |_| Vec::new())
            .unwrap();
        assert_eq!(
            outs.iter().map(|(o, _)| o.value).sum::<f64>(),
            (0..10).sum::<usize>() as f64
        );
    }

    #[test]
    fn stats_count_dispatches_and_wakes() {
        let pool = EvalPool::new(2);
        for _ in 0..3 {
            pool.run(&[0..2, 2..4], sum_task(), |_| Vec::new()).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.dispatches, 3);
        assert_eq!(stats.tasks, 6);
        assert_eq!(stats.wakes, 6);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn global_pools_are_shared_per_size() {
        let a = EvalPool::global(3);
        let b = EvalPool::global(3);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        let c = EvalPool::global(2);
        assert!(!Arc::ptr_eq(&a.inner, &c.inner));
        assert_eq!(EvalPool::global(0).threads(), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = EvalPool::new(4);
        pool.run(&[0..50, 50..100], sum_task(), |_| Vec::new())
            .unwrap();
        drop(pool); // must not hang or leak: Drop disconnects + joins
    }
}
