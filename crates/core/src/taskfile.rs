//! Plain-text measurement-task specification files.
//!
//! Lets operators drive the optimizer from the command line without writing
//! Rust: a task file names the OD pairs of interest, the capacity, and the
//! background-traffic model. Paired with the topology format of
//! [`nws_topo::format`], a complete problem instance is two small text
//! files.
//!
//! ```text
//! # task file
//! theta 100000                     # sampled packets per interval
//! alpha 1.0                        # optional per-link rate cap (default 1)
//! od JANET NL 30000                # origin destination rate_pkts_per_sec
//! od JANET LU 20
//! background gravity 400000 0.5 7  # total_pkts_per_sec mass_cv seed
//! restrict UK FR                   # optional: only monitor links between
//! restrict UK NL                   #   the named node pairs (one per line)
//! ```
//!
//! Rates are packets/second; they are converted to packets per 5-minute
//! measurement interval internally, matching the paper's units.

use crate::{CoreError, MeasurementTask};
use nws_routing::OdPair;
use nws_topo::{LinkId, Topology};
use nws_traffic::demand::DemandMatrix;
use nws_traffic::MEASUREMENT_INTERVAL_SECS;

/// Background-traffic model named in a task file.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Background {
    /// No background traffic.
    None,
    /// Capacity-weighted gravity matrix: `(total pkt/s, mass cv, seed)`.
    Gravity(f64, f64, u64),
}

/// Parses a task file against `topo` and builds the measurement task.
///
/// # Errors
/// [`CoreError::InvalidTask`] with a line-numbered message for syntax
/// problems, unknown nodes, or semantic errors (missing `theta`, no ODs).
pub fn parse_task(topo: Topology, text: &str) -> Result<MeasurementTask, CoreError> {
    let err =
        |line: usize, msg: &str| CoreError::InvalidTask(format!("task file line {line}: {msg}"));

    let mut theta: Option<f64> = None;
    let mut alpha = 1.0;
    let mut ods: Vec<(String, OdPair, f64)> = Vec::new();
    let mut background = Background::None;
    let mut restrict_pairs: Vec<(String, String)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Strip trailing comments.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("theta") => {
                let v: f64 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "theta requires a value"))?
                    .parse()
                    .map_err(|_| err(lineno, "theta must be a number"))?;
                theta = Some(v);
            }
            Some("alpha") => {
                alpha = parts
                    .next()
                    .ok_or_else(|| err(lineno, "alpha requires a value"))?
                    .parse()
                    .map_err(|_| err(lineno, "alpha must be a number"))?;
            }
            Some("od") => {
                let src = parts
                    .next()
                    .ok_or_else(|| err(lineno, "od requires ORIGIN"))?;
                let dst = parts
                    .next()
                    .ok_or_else(|| err(lineno, "od requires DESTINATION"))?;
                let rate: f64 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "od requires RATE (pkt/s)"))?
                    .parse()
                    .map_err(|_| err(lineno, "RATE must be a number"))?;
                let s = topo
                    .node_by_name(src)
                    .ok_or_else(|| err(lineno, &format!("unknown node '{src}'")))?;
                let d = topo
                    .node_by_name(dst)
                    .ok_or_else(|| err(lineno, &format!("unknown node '{dst}'")))?;
                ods.push((
                    format!("{src}-{dst}"),
                    OdPair::new(s, d),
                    rate * MEASUREMENT_INTERVAL_SECS,
                ));
            }
            Some("background") => match parts.next() {
                Some("gravity") => {
                    let total: f64 = parts
                        .next()
                        .ok_or_else(|| err(lineno, "gravity requires TOTAL (pkt/s)"))?
                        .parse()
                        .map_err(|_| err(lineno, "TOTAL must be a number"))?;
                    let cv: f64 = parts
                        .next()
                        .ok_or_else(|| err(lineno, "gravity requires MASS_CV"))?
                        .parse()
                        .map_err(|_| err(lineno, "MASS_CV must be a number"))?;
                    let seed: u64 = parts
                        .next()
                        .ok_or_else(|| err(lineno, "gravity requires SEED"))?
                        .parse()
                        .map_err(|_| err(lineno, "SEED must be an integer"))?;
                    background = Background::Gravity(total, cv, seed);
                }
                Some("none") => background = Background::None,
                other => return Err(err(lineno, &format!("unknown background model {other:?}"))),
            },
            Some("restrict") => {
                let a = parts
                    .next()
                    .ok_or_else(|| err(lineno, "restrict requires NODE_A"))?;
                let b = parts
                    .next()
                    .ok_or_else(|| err(lineno, "restrict requires NODE_B"))?;
                restrict_pairs.push((a.to_string(), b.to_string()));
            }
            Some(other) => return Err(err(lineno, &format!("unknown directive '{other}'"))),
            None => unreachable!("blank lines filtered"),
        }
    }

    let theta = theta.ok_or_else(|| CoreError::InvalidTask("task file sets no theta".into()))?;
    if ods.is_empty() {
        return Err(CoreError::InvalidTask(
            "task file defines no OD pairs".into(),
        ));
    }

    let bg_loads = match background {
        Background::None => vec![0.0; topo.num_links()],
        Background::Gravity(total, cv, seed) => DemandMatrix::gravity_capacity_weighted(
            &topo,
            total * MEASUREMENT_INTERVAL_SECS,
            cv,
            seed,
        )
        .link_loads(&topo),
    };

    // Resolve restrictions against the topology (both directions per pair).
    let restriction: Option<Vec<LinkId>> = if restrict_pairs.is_empty() {
        None
    } else {
        let mut links = Vec::new();
        for (a, b) in &restrict_pairs {
            let na = topo
                .node_by_name(a)
                .ok_or_else(|| CoreError::InvalidTask(format!("unknown node '{a}'")))?;
            let nb = topo
                .node_by_name(b)
                .ok_or_else(|| CoreError::InvalidTask(format!("unknown node '{b}'")))?;
            for l in [topo.link_between(na, nb), topo.link_between(nb, na)]
                .into_iter()
                .flatten()
            {
                links.push(l);
            }
        }
        if links.is_empty() {
            return Err(CoreError::InvalidTask(
                "restrict lines match no links in the topology".into(),
            ));
        }
        Some(links)
    };

    let mut builder = MeasurementTask::builder(topo);
    for (name, od, size) in ods {
        builder = builder.track(name, od, size);
    }
    builder = builder
        .background_loads(&bg_loads)
        .theta(theta)
        .alpha(alpha);
    if let Some(links) = restriction {
        builder = builder.restrict_links(links);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_topo::geant;

    const GOOD: &str = "\
# JANET mini task
theta 50000
alpha 0.5
od JANET NL 30000   # elephant
od JANET LU 20      # mouse
background gravity 400000 0.5 7
";

    #[test]
    fn parse_good_file() {
        let task = parse_task(geant(), GOOD).unwrap();
        assert_eq!(task.theta(), 50_000.0);
        assert_eq!(task.ods().len(), 2);
        assert_eq!(task.ods()[0].name, "JANET-NL");
        assert_eq!(task.ods()[0].size, 30_000.0 * 300.0);
        assert_eq!(task.alpha()[0], 0.5);
        // Background present: loads exceed the tracked-only level somewhere.
        assert!(task.link_loads().iter().any(|&u| u > 0.0));
    }

    #[test]
    fn restrict_lines_limit_candidates() {
        let text = "\
theta 10000
od JANET NL 30000
od JANET LU 20
restrict UK NL
restrict UK FR
";
        let task = parse_task(geant(), text).unwrap();
        assert_eq!(task.candidate_links().len(), 2); // UK->NL and UK->FR only
    }

    #[test]
    fn missing_theta_rejected() {
        let e = parse_task(geant(), "od JANET NL 100\n").unwrap_err();
        assert!(e.to_string().contains("no theta"), "{e}");
    }

    #[test]
    fn no_ods_rejected() {
        let e = parse_task(geant(), "theta 100\n").unwrap_err();
        assert!(e.to_string().contains("no OD pairs"), "{e}");
    }

    #[test]
    fn unknown_node_rejected_with_line() {
        let e = parse_task(geant(), "theta 100\nod JANET MARS 5\n").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(e.to_string().contains("MARS"), "{e}");
    }

    #[test]
    fn bad_number_rejected() {
        let e = parse_task(geant(), "theta lots\n").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_task(geant(), "frobnicate 1\n").unwrap_err();
        assert!(e.to_string().contains("unknown directive"), "{e}");
    }

    #[test]
    fn background_none_explicit() {
        let text = "theta 1000\nod JANET NL 30000\nbackground none\n";
        let task = parse_task(geant(), text).unwrap();
        // Loads are exactly the tracked traffic on its path.
        let total: f64 = task.link_loads().iter().sum();
        // JANET->NL: access + UK-NL = 2 links × 9e6 pkts.
        assert!((total - 2.0 * 30_000.0 * 300.0).abs() < 1e-6);
    }

    #[test]
    fn parsed_task_solves() {
        let task = parse_task(geant(), GOOD).unwrap();
        let sol = crate::solve_placement(&task, &crate::PlacementConfig::default()).unwrap();
        assert!(sol.kkt_verified);
    }
}
