//! Monte-Carlo accuracy evaluation of a sampling configuration.
//!
//! Reproduces the paper's evaluation protocol (§V-B): simulate the random
//! sampling process with the configured rates against the ground-truth OD
//! sizes, invert the sampled counts with the *approximate* effective rate
//! (eq. (7)) exactly as the method would in deployment, and score each run
//! with the accuracy metric `1 − |x/ρ − s|/s`. Averaging over repeated runs
//! (the paper uses 20) gives the per-OD accuracy columns of Table I.

use crate::{MeasurementTask, PlacementSolution};
use nws_traffic::estimate::{accuracy, RunStats};
use nws_traffic::sampling::simulate_distinct_sampled;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-OD evaluation outcome.
#[derive(Debug, Clone)]
pub struct OdAccuracy {
    /// OD display name.
    pub name: String,
    /// Ground-truth size (packets/interval).
    pub size: f64,
    /// Effective rate used for inversion (approximate model, as deployed).
    pub rho: f64,
    /// Accuracy statistics over the simulation runs.
    pub stats: RunStats,
}

/// Simulates `runs` independent sampling experiments of `solution` against
/// `task` and returns per-OD accuracy statistics.
///
/// ODs whose effective rate is zero (unobserved by any active monitor) get
/// accuracy statistics of a constant 0 — estimating "no estimate" as size 0
/// has accuracy `1 − |0 − s|/s = 0`.
pub fn evaluate_accuracy(
    task: &MeasurementTask,
    solution: &PlacementSolution,
    runs: usize,
    seed: u64,
) -> Vec<OdAccuracy> {
    assert!(runs > 0, "need at least one run");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(task.ods().len());
    for (k, od) in task.ods().iter().enumerate() {
        // Ground-truth sampling follows the exact union process at the
        // solution's exact effective rate (which accounts for fractional
        // ECMP routing); inversion divides by the approximate ρ, exactly as
        // the deployed estimator would.
        let rho_exact = solution.effective_rates_exact[k];
        let rho = solution.effective_rates_approx[k];
        let size_pkts = od.size.round().max(0.0) as u64;
        let mut accs = Vec::with_capacity(runs);
        for _ in 0..runs {
            if rho <= 0.0 || rho_exact <= 0.0 {
                accs.push(0.0);
                continue;
            }
            let x = simulate_distinct_sampled(&mut rng, size_pkts, &[rho_exact]);
            let estimate = x as f64 / rho;
            accs.push(accuracy(estimate, od.size));
        }
        out.push(OdAccuracy {
            name: od.name.clone(),
            size: od.size,
            rho,
            stats: RunStats::from(&accs),
        });
    }
    out
}

/// Aggregate view over the per-OD accuracies: the mean over ODs of the mean
/// accuracy, plus the worst and best OD (the three series of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySummary {
    /// Mean over ODs of the per-OD mean accuracy.
    pub mean: f64,
    /// Smallest per-OD mean accuracy.
    pub worst: f64,
    /// Largest per-OD mean accuracy.
    pub best: f64,
}

/// Summarizes per-OD accuracies into the Figure 2 series.
///
/// # Panics
/// Panics if `per_od` is empty.
pub fn summarize(per_od: &[OdAccuracy]) -> AccuracySummary {
    assert!(!per_od.is_empty(), "no OD accuracies to summarize");
    let means: Vec<f64> = per_od.iter().map(|o| o.stats.mean).collect();
    AccuracySummary {
        mean: means.iter().sum::<f64>() / means.len() as f64,
        worst: means.iter().copied().fold(f64::INFINITY, f64::min),
        best: means.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_placement, MeasurementTask, PlacementConfig};
    use nws_routing::OdPair;
    use nws_topo::geant;

    fn task() -> MeasurementTask {
        let topo = geant();
        let janet = topo.require_node("JANET").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let lu = topo.require_node("LU").unwrap();
        MeasurementTask::builder(topo)
            .track("JANET-NL", OdPair::new(janet, nl), 9e6)
            .track("JANET-LU", OdPair::new(janet, lu), 6e3)
            .theta(20_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn accuracy_high_at_optimal_rates() {
        let t = task();
        let sol = solve_placement(&t, &PlacementConfig::default()).unwrap();
        let accs = evaluate_accuracy(&t, &sol, 20, 7);
        assert_eq!(accs.len(), 2);
        for a in &accs {
            assert!(
                a.stats.mean > 0.8,
                "{}: mean accuracy {} too low (rho {})",
                a.name,
                a.stats.mean,
                a.rho
            );
            assert!(a.stats.mean <= 1.0 + 1e-12);
            assert!(a.rho > 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = task();
        let sol = solve_placement(&t, &PlacementConfig::default()).unwrap();
        let a = evaluate_accuracy(&t, &sol, 5, 123);
        let b = evaluate_accuracy(&t, &sol, 5, 123);
        let c = evaluate_accuracy(&t, &sol, 5, 124);
        for k in 0..2 {
            assert_eq!(a[k].stats, b[k].stats);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| x.stats != y.stats));
    }

    #[test]
    fn unobserved_od_scores_zero() {
        let t = task();
        // All-zero rates: nothing sampled anywhere.
        let sol = crate::evaluate_rates(&t, &vec![0.0; t.topology().num_links()]);
        let accs = evaluate_accuracy(&t, &sol, 3, 1);
        for a in &accs {
            assert_eq!(a.stats.mean, 0.0);
            assert_eq!(a.rho, 0.0);
        }
    }

    #[test]
    fn summary_ordering() {
        let t = task();
        let sol = solve_placement(&t, &PlacementConfig::default()).unwrap();
        let accs = evaluate_accuracy(&t, &sol, 20, 99);
        let s = summarize(&accs);
        assert!(s.worst <= s.mean && s.mean <= s.best);
    }

    #[test]
    fn more_runs_tighter_estimate() {
        // Not a strict law per-seed, but std of mean accuracy over ODs
        // should be finite and the evaluation must not panic at high runs.
        let t = task();
        let sol = solve_placement(&t, &PlacementConfig::default()).unwrap();
        let accs = evaluate_accuracy(&t, &sol, 100, 5);
        for a in &accs {
            assert!(a.stats.std.is_finite());
            assert!(a.stats.min <= a.stats.max);
        }
    }
}
