//! The joint monitor-activation and sampling-rate optimizer.

use crate::{
    build_problem, CoreError, MeasurementTask, ParallelConfig, PlacementObjective, RateModel,
    ReducedIndex, Utility,
};
use nws_linalg::Vector;
use nws_obs::Recorder;
use nws_solver::{Diagnostics, Solver, SolverOptions, TerminationReason};
use nws_topo::LinkId;

/// Rates below this threshold count as "monitor not activated" when
/// reporting the active set (the optimizer drives them to exactly 0 up to
/// float fuzz).
pub const ACTIVATION_THRESHOLD: f64 = 1e-9;

/// Configuration of a placement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlacementConfig {
    /// Effective-rate model inside the objective (paper default:
    /// [`RateModel::Approximate`]).
    pub rate_model: RateModel,
    /// Underlying solver options (iteration cap 2000 etc.).
    pub solver: SolverOptions,
    /// Objective-evaluation fan-out (default: serial). With `threads != 1`
    /// the objective attaches a shared persistent worker pool
    /// ([`crate::EvalPool`]) sized to `min(requested, cores)`; tiny
    /// instances below the nnz cutoff stay serial regardless. See
    /// [`ParallelConfig`].
    pub parallel: ParallelConfig,
}

/// Marks a solution the solver could not certify: the rates are feasible
/// (box + budget) and the best found, but optimality was not verified —
/// the solve ran out of its [`nws_solver::SolveBudget`] or hit the
/// iteration cap. Serving layers use this to decide between retrying,
/// escalating to a cold solve, or keeping the last-good configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degraded {
    /// Why certification was not reached.
    pub reason: TerminationReason,
}

/// The optimizer's answer: which monitors to activate and at what rates,
/// plus everything needed to audit the run.
#[derive(Debug, Clone)]
pub struct PlacementSolution {
    /// Sampling rate per topology link (0 on non-candidates).
    pub rates: Vec<f64>,
    /// Links whose monitor is activated (rate above
    /// [`ACTIVATION_THRESHOLD`]), in link-id order.
    pub active_monitors: Vec<LinkId>,
    /// Per-OD effective rate under the approximation `ρ = Σ r·p` (eq. (7)) —
    /// what the estimator divides by.
    pub effective_rates_approx: Vec<f64>,
    /// Per-OD exact effective rate `1 − Π(1−p)^r` (eq. (1)) — what sampling
    /// actually delivers.
    pub effective_rates_exact: Vec<f64>,
    /// Per-OD utility values `M(ρ_k)` at the solution (approximate-rate ρ).
    pub utilities: Vec<f64>,
    /// Objective value `Σ_k M(ρ_k)`.
    pub objective: f64,
    /// Marginal utility of sampling capacity (`∂ objective/∂θ`).
    pub lambda: f64,
    /// Whether the KKT conditions were verified (global optimum certified).
    pub kkt_verified: bool,
    /// Why the solver stopped.
    pub reason: TerminationReason,
    /// Solver diagnostics (iterations, constraint releases — §IV-D metrics).
    pub diagnostics: Diagnostics,
    /// Objective per iteration, populated when
    /// [`nws_solver::SolverOptions::record_objective`] is set (empty
    /// otherwise). See the `convergence_trace` experiment.
    pub objective_trajectory: Vec<f64>,
    /// `Some` when the solution is feasible but uncertified (budget or
    /// iteration-cap overrun) — see [`Degraded`]. Always consistent with
    /// [`PlacementSolution::kkt_verified`] on solver-produced solutions.
    pub degraded: Option<Degraded>,
}

impl PlacementSolution {
    /// Sampled packets per interval each link contributes: `p_i·U_i`.
    pub fn capacity_usage(&self, task: &MeasurementTask) -> Vec<f64> {
        self.rates
            .iter()
            .zip(task.link_loads())
            .map(|(&p, &u)| p * u)
            .collect()
    }

    /// The sampling rates on the links traversed by OD `k`, restricted to
    /// activated monitors: `(link, rate)` pairs.
    pub fn monitors_of_od(&self, task: &MeasurementTask, k: usize) -> Vec<(LinkId, f64)> {
        task.routing()
            .links_of_od(k)
            .into_iter()
            .filter(|&l| self.rates[l.index()] > ACTIVATION_THRESHOLD)
            .map(|l| (l, self.rates[l.index()]))
            .collect()
    }
}

/// Solves the joint activation + rate problem for `task`.
///
/// This is the paper's method end to end: build the reduced convex program
/// over the candidate links, run gradient projection with KKT verification,
/// and report rates with `p_i = 0` meaning "monitor i stays off".
///
/// # Errors
/// [`CoreError::Solver`] for infeasible capacity or solver failures.
pub fn solve_placement(
    task: &MeasurementTask,
    config: &PlacementConfig,
) -> Result<PlacementSolution, CoreError> {
    solve_placement_observed(task, config, &Recorder::disabled())
}

/// [`solve_placement`] with observability: the objective and solver record
/// phase spans, iteration counters and evaluation fan-out metrics into
/// `rec`. With a disabled recorder this is exactly [`solve_placement`].
///
/// # Errors
/// As for [`solve_placement`].
pub fn solve_placement_observed(
    task: &MeasurementTask,
    config: &PlacementConfig,
    rec: &Recorder,
) -> Result<PlacementSolution, CoreError> {
    let index = ReducedIndex::new(task);
    let objective = PlacementObjective::new(task, &index, config.rate_model)
        .with_parallel(config.parallel)
        .with_recorder(rec.clone());
    let problem = build_problem(task, &index)?;
    let solver = Solver::new(config.solver);
    let sol = solver.maximize_observed(&objective, &problem, rec)?;
    Ok(finish_solution(task, &index, sol))
}

/// Converts a raw solver solution over the reduced variables into the full
/// reporting structure (rates expanded to topology links, both effective-rate
/// models evaluated).
fn finish_solution(
    task: &MeasurementTask,
    index: &ReducedIndex,
    sol: nws_solver::Solution,
) -> PlacementSolution {
    let exact_obj = PlacementObjective::new(task, index, RateModel::Exact);
    let approx_obj = PlacementObjective::new(task, index, RateModel::Approximate);
    let effective_rates_approx = approx_obj.effective_rates(&sol.p);
    let effective_rates_exact = exact_obj.effective_rates(&sol.p);
    let utilities: Vec<f64> = effective_rates_approx
        .iter()
        .enumerate()
        .map(|(k, &rho)| approx_obj.utilities()[k].value(rho))
        .collect();

    let rates = index.expand(&sol.p, task.topology().num_links());
    let active_monitors: Vec<LinkId> = task
        .candidate_links()
        .iter()
        .copied()
        .filter(|&l| rates[l.index()] > ACTIVATION_THRESHOLD)
        .collect();

    PlacementSolution {
        rates,
        active_monitors,
        effective_rates_approx,
        effective_rates_exact,
        utilities,
        objective: sol.value,
        lambda: sol.lambda,
        kkt_verified: sol.kkt_verified,
        reason: sol.reason,
        degraded: (!sol.kkt_verified).then_some(Degraded { reason: sol.reason }),
        diagnostics: sol.diagnostics,
        objective_trajectory: sol.objective_trajectory,
    }
}

/// Solves the placement problem warm-started from a previous rate vector —
/// the operational re-optimization path after a re-routing event or traffic
/// shift (paper §I), where yesterday's configuration is usually close to
/// today's optimum.
///
/// `previous_rates` is indexed by topology link (as in
/// [`PlacementSolution::rates`], possibly from a *different* topology epoch —
/// entries for links absent from this task's candidate set are ignored). The
/// vector is Euclidean-projected onto the feasible box-plus-budget set
/// (`nws_solver::BoxLinearProblem::project_onto`) before the solve, so a
/// warm start that violates the new budget equality or per-link caps — as
/// happens after a `set_theta` or a link failure — lands on the *nearest*
/// feasible point instead of being rescaled or rejected. Non-finite entries
/// are treated as 0.
///
/// # Errors
/// Same conditions as [`solve_placement`].
///
/// # Panics
/// Panics if `previous_rates` length differs from the topology's link count.
pub fn solve_placement_warm(
    task: &MeasurementTask,
    config: &PlacementConfig,
    previous_rates: &[f64],
) -> Result<PlacementSolution, CoreError> {
    solve_placement_warm_observed(task, config, previous_rates, &Recorder::disabled())
}

/// [`solve_placement_warm`] with observability (see
/// [`solve_placement_observed`]).
///
/// # Errors
/// As for [`solve_placement_warm`].
///
/// # Panics
/// As for [`solve_placement_warm`].
pub fn solve_placement_warm_observed(
    task: &MeasurementTask,
    config: &PlacementConfig,
    previous_rates: &[f64],
    rec: &Recorder,
) -> Result<PlacementSolution, CoreError> {
    assert_eq!(
        previous_rates.len(),
        task.topology().num_links(),
        "previous rate vector length mismatch"
    );
    let index = ReducedIndex::new(task);
    let problem = build_problem(task, &index)?;

    // Reduce to the candidate coordinates, then project onto the feasible
    // set. The projection handles every violation class at once: rates above
    // the caps, a stale budget after a θ change, and non-finite garbage.
    let reduced: Vector = (0..index.dim())
        .map(|v| previous_rates[index.link(v).index()])
        .collect();
    let mut start = problem.project_onto(&reduced);
    // Defense in depth: if the projection ever fails to certify feasibility
    // (float pathologies), fall back to the canonical interior start rather
    // than handing the solver a mis-start.
    if !problem.is_feasible(&start, 1e-9) {
        start = problem.feasible_start();
    }

    let objective = PlacementObjective::new(task, &index, config.rate_model)
        .with_parallel(config.parallel)
        .with_recorder(rec.clone());
    let solver = Solver::new(config.solver);
    let sol = solver.maximize_from_observed(&objective, &problem, start, rec)?;
    Ok(finish_solution(task, &index, sol))
}

/// Evaluates the reporting quantities of an externally chosen rate vector
/// (baselines, stale configurations) against a task, without optimizing.
///
/// # Panics
/// Panics if `rates` length differs from the topology's link count.
pub fn evaluate_rates(task: &MeasurementTask, rates: &[f64]) -> PlacementSolution {
    assert_eq!(
        rates.len(),
        task.topology().num_links(),
        "rate vector length mismatch"
    );
    let index = ReducedIndex::new(task);
    let reduced: Vector = (0..index.dim())
        .map(|v| rates[index.link(v).index()])
        .collect();
    let approx_obj = PlacementObjective::new(task, &index, RateModel::Approximate);
    let exact_obj = PlacementObjective::new(task, &index, RateModel::Exact);
    let effective_rates_approx = approx_obj.effective_rates(&reduced);
    let effective_rates_exact = exact_obj.effective_rates(&reduced);
    let utilities: Vec<f64> = effective_rates_approx
        .iter()
        .enumerate()
        .map(|(k, &rho)| approx_obj.utilities()[k].value(rho))
        .collect();
    let objective = utilities.iter().sum();
    let active_monitors: Vec<LinkId> = task
        .candidate_links()
        .iter()
        .copied()
        .filter(|&l| rates[l.index()] > ACTIVATION_THRESHOLD)
        .collect();
    PlacementSolution {
        rates: rates.to_vec(),
        active_monitors,
        effective_rates_approx,
        effective_rates_exact,
        utilities,
        objective,
        lambda: f64::NAN,
        kkt_verified: false,
        reason: TerminationReason::IterationLimit,
        // Not a solver outcome: an externally supplied vector is evaluated,
        // not optimized, so there is nothing to mark as degraded.
        degraded: None,
        diagnostics: Diagnostics {
            iterations: 0,
            constraint_releases: 0,
            bounds_hit: 0,
            final_projected_gradient: f64::NAN,
            stationarity_residual: f64::NAN,
        },
        objective_trajectory: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::placement::solve_placement_warm;
    use super::*;
    use nws_routing::OdPair;
    use nws_topo::geant;

    /// Two-OD task: one elephant (NL), one mouse (LU), no background.
    fn two_od_task(theta: f64) -> MeasurementTask {
        let topo = geant();
        let janet = topo.require_node("JANET").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let lu = topo.require_node("LU").unwrap();
        MeasurementTask::builder(topo)
            .track("JANET-NL", OdPair::new(janet, nl), 9e6)
            .track("JANET-LU", OdPair::new(janet, lu), 6e3)
            .theta(theta)
            .build()
            .unwrap()
    }

    #[test]
    fn solves_and_certifies() {
        let task = two_od_task(20_000.0);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(sol.kkt_verified, "diagnostics: {:?}", sol.diagnostics);
        assert_eq!(sol.reason, TerminationReason::KktSatisfied);
        // Capacity fully used.
        let used: f64 = sol.capacity_usage(&task).iter().sum();
        assert!((used / 20_000.0 - 1.0).abs() < 1e-6, "used {used}");
        // All rates within [0, 1].
        assert!(sol.rates.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn certified_solution_carries_no_degraded_marker() {
        let task = two_od_task(20_000.0);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(sol.kkt_verified);
        assert_eq!(sol.degraded, None);
    }

    #[test]
    fn deadline_interrupted_solve_is_feasible_and_marked_degraded() {
        let task = two_od_task(20_000.0);
        let mut config = PlacementConfig::default();
        // A deadline already in the past: the solver must hand back its
        // (feasible) starting iterate rather than erroring or spinning.
        config.solver.budget = nws_solver::SolveBudget {
            max_iters: None,
            deadline: Some(std::time::Instant::now()),
        };
        let sol = solve_placement(&task, &config).unwrap();
        assert!(!sol.kkt_verified);
        assert_eq!(
            sol.degraded,
            Some(Degraded {
                reason: TerminationReason::DeadlineExceeded
            })
        );
        // Feasibility: rates in the box, capacity within budget.
        assert!(sol.rates.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let used: f64 = sol.capacity_usage(&task).iter().sum();
        assert!(used <= 20_000.0 * (1.0 + 1e-6), "used {used}");
    }

    #[test]
    fn iteration_budget_marks_degraded_via_warm_path() {
        let task = two_od_task(20_000.0);
        let good = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let mut config = PlacementConfig::default();
        config.solver.budget.max_iters = Some(1);
        let sol = solve_placement_warm(&task, &config, &good.rates).unwrap();
        // One iteration from the optimum may or may not certify; the marker
        // must agree with kkt_verified either way.
        assert_eq!(sol.degraded.is_some(), !sol.kkt_verified);
        assert!(sol.rates.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn mouse_sampled_on_quiet_link() {
        // The optimizer should sample JANET-LU on the lightly loaded FR-LU
        // link at a much higher rate than anything on the busy UK links.
        let task = two_od_task(20_000.0);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let topo = task.topology();
        let fr = topo.require_node("FR").unwrap();
        let lu = topo.require_node("LU").unwrap();
        let uk = topo.require_node("UK").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let fr_lu = topo.link_between(fr, lu).unwrap();
        let uk_nl = topo.link_between(uk, nl).unwrap();
        assert!(
            sol.rates[fr_lu.index()] > sol.rates[uk_nl.index()],
            "FR-LU {} vs UK-NL {}",
            sol.rates[fr_lu.index()],
            sol.rates[uk_nl.index()]
        );
        // Both ODs get nonzero effective rates.
        assert!(sol.effective_rates_approx.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn rates_low_and_models_agree() {
        // §V-B claim: optimal rates are low, so approx ≈ exact.
        let task = two_od_task(20_000.0);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        for k in 0..task.ods().len() {
            let (a, e) = (sol.effective_rates_approx[k], sol.effective_rates_exact[k]);
            assert!(a >= e - 1e-15, "union bound violated");
            assert!((a - e) / e.max(1e-12) < 0.02, "OD {k}: {a} vs {e}");
        }
    }

    #[test]
    fn more_capacity_more_utility() {
        let lo = solve_placement(&two_od_task(5_000.0), &PlacementConfig::default()).unwrap();
        let hi = solve_placement(&two_od_task(50_000.0), &PlacementConfig::default()).unwrap();
        assert!(hi.objective > lo.objective);
        // λ (marginal utility of capacity) decreases with capacity.
        assert!(hi.lambda < lo.lambda, "λ {} !< {}", hi.lambda, lo.lambda);
    }

    #[test]
    fn exact_model_solves_too() {
        let task = two_od_task(20_000.0);
        let cfg = PlacementConfig {
            rate_model: RateModel::Exact,
            ..PlacementConfig::default()
        };
        let sol = solve_placement(&task, &cfg).unwrap();
        let approx_sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        // In the low-rate regime the two solutions essentially coincide.
        assert!((sol.objective - approx_sol.objective).abs() < 1e-4);
    }

    #[test]
    fn monitors_of_od_reports_active_links() {
        let task = two_od_task(20_000.0);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        for k in 0..task.ods().len() {
            let monitors = sol.monitors_of_od(&task, k);
            // Every OD is observed somewhere at this capacity.
            assert!(!monitors.is_empty(), "OD {k} unobserved");
            for (l, p) in monitors {
                assert!(task.routing().traverses(k, l));
                assert!(p > ACTIVATION_THRESHOLD);
            }
        }
    }

    #[test]
    fn evaluate_rates_roundtrip() {
        let task = two_od_task(20_000.0);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let eval = evaluate_rates(&task, &sol.rates);
        assert!((eval.objective - sol.objective).abs() < 1e-9);
        assert_eq!(eval.active_monitors, sol.active_monitors);
        for k in 0..task.ods().len() {
            assert!((eval.effective_rates_exact[k] - sol.effective_rates_exact[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn warm_start_matches_cold_solution() {
        let task = two_od_task(20_000.0);
        let cold = solve_placement(&task, &PlacementConfig::default()).unwrap();
        let warm = solve_placement_warm(&task, &PlacementConfig::default(), &cold.rates).unwrap();
        assert!(warm.kkt_verified);
        assert!((warm.objective - cold.objective).abs() < 1e-8);
        // Starting at the optimum, the warm solve certifies almost instantly.
        assert!(
            warm.diagnostics.iterations <= cold.diagnostics.iterations,
            "warm {} vs cold {}",
            warm.diagnostics.iterations,
            cold.diagnostics.iterations
        );
    }

    #[test]
    fn warm_start_from_perturbed_theta() {
        // Yesterday's rates for a different theta still warm-start cleanly.
        let yesterday = two_od_task(15_000.0);
        let today = two_od_task(25_000.0);
        let prev = solve_placement(&yesterday, &PlacementConfig::default()).unwrap();
        let warm = solve_placement_warm(&today, &PlacementConfig::default(), &prev.rates).unwrap();
        let cold = solve_placement(&today, &PlacementConfig::default()).unwrap();
        assert!(warm.kkt_verified);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_start_from_zeros_falls_back() {
        let task = two_od_task(20_000.0);
        let zeros = vec![0.0; task.topology().num_links()];
        let warm = solve_placement_warm(&task, &PlacementConfig::default(), &zeros).unwrap();
        let cold = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-8);
    }

    #[test]
    fn warm_start_projects_budget_violation() {
        // All-ones rates violate the budget equality by orders of magnitude
        // (every candidate sampling at 100 %); the projection must still
        // deliver a clean certified solve matching cold.
        let task = two_od_task(20_000.0);
        let ones = vec![1.0; task.topology().num_links()];
        let warm = solve_placement_warm(&task, &PlacementConfig::default(), &ones).unwrap();
        let cold = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(warm.kkt_verified);
        assert!((warm.objective - cold.objective).abs() < 1e-8);
    }

    #[test]
    fn warm_start_projects_cap_violation() {
        // Rates exceeding the per-link caps (α = 0.3 here) get projected
        // into the box, not rejected.
        let topo = geant();
        let janet = topo.require_node("JANET").unwrap();
        let nl = topo.require_node("NL").unwrap();
        let lu = topo.require_node("LU").unwrap();
        let task = MeasurementTask::builder(topo)
            .track("JANET-NL", OdPair::new(janet, nl), 9e6)
            .track("JANET-LU", OdPair::new(janet, lu), 6e3)
            .theta(20_000.0)
            .alpha(0.3)
            .build()
            .unwrap();
        let over_cap = vec![0.9; task.topology().num_links()];
        let warm = solve_placement_warm(&task, &PlacementConfig::default(), &over_cap).unwrap();
        let cold = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(warm.kkt_verified);
        assert!(warm.rates.iter().all(|&p| p <= 0.3 + 1e-9));
        assert!((warm.objective - cold.objective).abs() < 1e-8);
    }

    #[test]
    fn warm_start_survives_non_finite_entries() {
        let task = two_od_task(20_000.0);
        let mut garbage = vec![0.01; task.topology().num_links()];
        garbage[0] = f64::NAN;
        garbage[1] = f64::INFINITY;
        let warm = solve_placement_warm(&task, &PlacementConfig::default(), &garbage).unwrap();
        let cold = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(warm.kkt_verified);
        assert!((warm.objective - cold.objective).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "previous rate vector length mismatch")]
    fn warm_start_length_checked() {
        let task = two_od_task(20_000.0);
        let _ = solve_placement_warm(&task, &PlacementConfig::default(), &[0.5]);
    }

    #[test]
    fn infeasible_theta_surfaces() {
        let task = two_od_task(20_000.0);
        let total: f64 = task
            .candidate_links()
            .iter()
            .map(|l| task.link_loads()[l.index()])
            .sum();
        let bad = task.with_theta(total * 2.0).unwrap();
        let err = solve_placement(&bad, &PlacementConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Solver(nws_solver::SolverError::Infeasible { .. })
        ));
    }
}
