//! Multi-interval closed-loop simulation: evolving traffic vs monitoring
//! policy.
//!
//! The paper's case for router-embedded, re-optimizable monitoring is
//! dynamic: "network traffic demands are subject to short term variations
//! due to failures … as well as longer term variations", so a static monitor
//! placement "quickly performs sub-optimally" (§I). This module provides the
//! substrate to quantify that: a sequence of measurement intervals in which
//! OD sizes and background loads evolve (diurnal swing plus noise), run
//! against a configurable re-optimization policy.

use crate::{
    evaluate_rates, solve_placement, solve_placement_warm, CoreError, MeasurementTask,
    PlacementConfig,
};
use nws_routing::OdPair;
use nws_traffic::dist::LogNormal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the operator maintains the sampling configuration over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Optimize once on the first interval and never touch it again — the
    /// static deployment the paper argues against.
    Static,
    /// Re-optimize (warm-started) every `n` intervals.
    ReoptimizeEvery(usize),
}

/// Evolution parameters of the synthetic day.
#[derive(Debug, Clone, Copy)]
pub struct EvolutionParams {
    /// Peak-to-trough ratio of the diurnal multiplier (e.g. 3.0 = busy hour
    /// carries 3× the night traffic).
    pub diurnal_swing: f64,
    /// Number of intervals in one diurnal period (a day of 5-minute bins is
    /// 288; tests use fewer).
    pub period: usize,
    /// Coefficient of variation of the per-interval multiplicative noise on
    /// each OD's size.
    pub noise_cv: f64,
    /// Fraction of the period by which successive ODs' diurnal peaks are
    /// staggered (0 = all ODs peak together; 0.5 = peaks spread over half a
    /// day). Destinations of a real ingress task span time zones — JANET's
    /// New York traffic does not peak when its Israel traffic does — and it
    /// is exactly this *structural* variation, not uniform scaling, that
    /// makes static placements stale (§I).
    pub phase_spread: f64,
}

impl Default for EvolutionParams {
    fn default() -> Self {
        EvolutionParams {
            diurnal_swing: 3.0,
            period: 288,
            noise_cv: 0.15,
            phase_spread: 0.25,
        }
    }
}

/// Per-interval outcome.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// Interval index.
    pub interval: usize,
    /// The diurnal multiplier applied in this interval.
    pub multiplier: f64,
    /// Objective (sum of utilities) of the configuration in force,
    /// evaluated against this interval's true task.
    pub objective: f64,
    /// Worst per-OD utility under the configuration in force.
    pub worst_utility: f64,
    /// Whether the configuration was re-optimized at this interval.
    pub reoptimized: bool,
}

/// Runs `num_intervals` of evolving traffic against `policy` and returns the
/// per-interval outcomes.
///
/// Each interval `t` scales the base task's OD sizes by a sinusoidal diurnal
/// multiplier and lognormal noise, rebuilds loads implicitly (tracked
/// traffic scales; background is scaled with the same multiplier), and
/// evaluates the currently-installed rate vector against the *true*
/// interval task. Policies that re-optimize see the true task when they do.
///
/// # Errors
/// Propagates solver errors (e.g. infeasible `θ` after a traffic collapse).
pub fn run_simulation(
    base: &MeasurementTask,
    policy: Policy,
    params: &EvolutionParams,
    num_intervals: usize,
    seed: u64,
) -> Result<Vec<IntervalOutcome>, CoreError> {
    assert!(num_intervals > 0, "need at least one interval");
    assert!(params.diurnal_swing >= 1.0, "swing must be ≥ 1");
    assert!(params.period > 0, "period must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = LogNormal::from_mean_cv(1.0, params.noise_cv.max(0.0));
    let cfg = PlacementConfig::default();

    let mut outcomes = Vec::with_capacity(num_intervals);
    let mut installed: Option<Vec<f64>> = None;

    let diurnal = |phase: f64| -> f64 {
        1.0 + (params.diurnal_swing - 1.0)
            * 0.5
            * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
    };
    let num_ods = base.ods().len();

    for t in 0..num_intervals {
        let phase = (t % params.period) as f64 / params.period as f64;
        // Per-OD multipliers with staggered peaks; the background follows
        // the mean (it aggregates all time zones).
        let od_multipliers: Vec<f64> = (0..num_ods)
            .map(|k| {
                let offset = params.phase_spread * k as f64 / num_ods.max(1) as f64;
                diurnal(phase + offset)
            })
            .collect();
        let multiplier = od_multipliers.iter().sum::<f64>() / num_ods.max(1) as f64;

        // The true task of this interval.
        let truth = scaled_task(base, &od_multipliers, multiplier, &noise, &mut rng)?;

        let reoptimize = match (&installed, policy) {
            (None, _) => true,
            (_, Policy::Static) => false,
            (_, Policy::ReoptimizeEvery(n)) => n > 0 && t % n == 0,
        };
        if reoptimize {
            let sol = match &installed {
                Some(prev) => solve_placement_warm(&truth, &cfg, prev)?,
                None => solve_placement(&truth, &cfg)?,
            };
            installed = Some(sol.rates);
        }
        let rates = installed.as_ref().expect("installed after first interval");

        // An installed rate vector may overrun the budget when traffic grew;
        // a real router would cap sampling. Model that by scaling down the
        // rate vector to fit θ if needed.
        let consumed: f64 = rates
            .iter()
            .zip(truth.link_loads())
            .map(|(&p, &u)| p * u)
            .sum();
        let capped: Vec<f64> = if consumed > truth.theta() {
            let c = truth.theta() / consumed;
            rates.iter().map(|&p| p * c).collect()
        } else {
            rates.clone()
        };

        let eval = evaluate_rates(&truth, &capped);
        let worst = eval.utilities.iter().cloned().fold(f64::INFINITY, f64::min);
        outcomes.push(IntervalOutcome {
            interval: t,
            multiplier,
            objective: eval.objective,
            worst_utility: worst,
            reoptimized: reoptimize,
        });
    }
    Ok(outcomes)
}

/// Builds the interval's true task: base OD sizes × per-OD multiplier ×
/// noise, and background loads scaled by the mean multiplier.
fn scaled_task(
    base: &MeasurementTask,
    od_multipliers: &[f64],
    background_multiplier: f64,
    noise: &LogNormal,
    rng: &mut StdRng,
) -> Result<MeasurementTask, CoreError> {
    let topo = base.topology().clone();
    // Background component = total loads minus the tracked traffic's share.
    let sizes: Vec<f64> = base.ods().iter().map(|o| o.size).collect();
    let tracked = base.routing().link_loads(&sizes);
    let background: Vec<f64> = base
        .link_loads()
        .iter()
        .zip(&tracked)
        .map(|(total, t)| (total - t).max(0.0) * background_multiplier)
        .collect();

    let pairs: Vec<(String, OdPair, f64)> = base
        .ods()
        .iter()
        .enumerate()
        .map(|(k, o)| {
            let m = od_multipliers[k];
            (
                o.name.clone(),
                o.od,
                (o.size * m * noise.sample(rng)).max(2.0),
            )
        })
        .collect();
    let mut builder = MeasurementTask::builder(topo);
    for (name, od, size) in pairs {
        builder = builder.track(name, od, size);
    }
    builder
        .background_loads(&background)
        .theta(base.theta())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::janet_task_with;

    fn base() -> MeasurementTask {
        janet_task_with(100_000.0, 1).unwrap()
    }

    fn mean_objective(outcomes: &[IntervalOutcome]) -> f64 {
        outcomes.iter().map(|o| o.objective).sum::<f64>() / outcomes.len() as f64
    }

    #[test]
    fn static_policy_optimizes_once() {
        let params = EvolutionParams {
            period: 12,
            ..Default::default()
        };
        let out = run_simulation(&base(), Policy::Static, &params, 12, 5).unwrap();
        assert_eq!(out.len(), 12);
        assert!(out[0].reoptimized);
        assert!(out[1..].iter().all(|o| !o.reoptimized));
    }

    #[test]
    fn periodic_policy_reoptimizes_on_schedule() {
        let params = EvolutionParams {
            period: 12,
            ..Default::default()
        };
        let out = run_simulation(&base(), Policy::ReoptimizeEvery(4), &params, 12, 5).unwrap();
        for o in &out {
            assert_eq!(
                o.reoptimized,
                o.interval % 4 == 0,
                "interval {}",
                o.interval
            );
        }
    }

    #[test]
    fn reoptimization_beats_static_on_average() {
        let params = EvolutionParams {
            diurnal_swing: 4.0,
            period: 12,
            noise_cv: 0.3,
            phase_spread: 0.5,
        };
        let st = run_simulation(&base(), Policy::Static, &params, 12, 9).unwrap();
        let re = run_simulation(&base(), Policy::ReoptimizeEvery(1), &params, 12, 9).unwrap();
        assert!(
            mean_objective(&re) > mean_objective(&st),
            "reopt {} !> static {}",
            mean_objective(&re),
            mean_objective(&st)
        );
        // And per-interval, re-optimizing is never meaningfully worse.
        for (a, b) in re.iter().zip(&st) {
            assert!(a.objective > b.objective - 1e-6, "interval {}", a.interval);
        }
    }

    #[test]
    fn diurnal_multiplier_spans_swing() {
        let params = EvolutionParams {
            diurnal_swing: 3.0,
            period: 8,
            noise_cv: 0.0,
            phase_spread: 0.0,
        };
        let out = run_simulation(&base(), Policy::Static, &params, 8, 1).unwrap();
        let min = out
            .iter()
            .map(|o| o.multiplier)
            .fold(f64::INFINITY, f64::min);
        let max = out.iter().map(|o| o.multiplier).fold(0.0, f64::max);
        assert!((min - 1.0).abs() < 1e-9);
        assert!((max - 3.0).abs() < 0.01);
    }

    #[test]
    fn deterministic_per_seed() {
        let params = EvolutionParams {
            period: 6,
            ..Default::default()
        };
        let a = run_simulation(&base(), Policy::Static, &params, 6, 3).unwrap();
        let b = run_simulation(&base(), Policy::Static, &params, 6, 3).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.objective, y.objective);
        }
    }
}
