//! Measurement-utility functions (paper §IV-C).

/// A per-OD utility `M(ρ)` of the effective sampling rate, as required by
/// the optimization framework (§III): strictly increasing, strictly concave,
/// twice continuously differentiable, with `M(0) = 0`.
pub trait Utility {
    /// `M(ρ)` for `ρ ∈ [0, 1]`.
    fn value(&self, rho: f64) -> f64;
    /// First derivative `M'(ρ)`.
    fn d1(&self, rho: f64) -> f64;
    /// Second derivative `M''(ρ)`.
    fn d2(&self, rho: f64) -> f64;
}

/// The paper's utility: mean squared relative accuracy of the inverted
/// binomial size estimator, spliced with its quadratic expansion near zero.
///
/// With `c = E[1/S]` (S the OD size in packets per interval):
///
/// ```text
/// A(ρ)  = 1 − E[SRE](ρ) = 1 − c·(1−ρ)/ρ
/// A'(ρ) = c/ρ²,     A''(ρ) = −2c/ρ³
/// ```
///
/// `A` diverges at `ρ = 0`, so on `[0, x₀]` the utility uses the quadratic
/// expansion `A*` of `A` at `x₀`, where `x₀` is chosen such that `A*(0) = 0`.
/// Working out the condition `A(x₀) − x₀A'(x₀) + x₀²A''(x₀)/2 = 0` gives the
/// closed form
///
/// ```text
/// x₀ = 3c / (1 + c),        M(x₀) = A(x₀) = (2/3)·(1 + c)
/// ```
///
/// — matching the paper's Figure 1, whose two splice points are labelled
/// `0.666` and `0.668`: `(2/3)(1+c)` for its two `E[1/S]` values. The
/// splice is C²: value, first and second derivative agree at `x₀` by
/// construction, and `M` is strictly increasing and strictly concave on all
/// of `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SreUtility {
    c: f64,
    x0: f64,
}

impl SreUtility {
    /// Creates the utility for `c = E[1/S]`.
    ///
    /// # Panics
    /// Panics unless `0 < c < 1` (an OD of expected size ≤ 1 packet has no
    /// meaningful relative-error target).
    pub fn new(c: f64) -> Self {
        assert!(
            c.is_finite() && c > 0.0 && c < 1.0,
            "E[1/S] must be in (0,1), got {c}"
        );
        SreUtility {
            c,
            x0: 3.0 * c / (1.0 + c),
        }
    }

    /// Convenience constructor from a (deterministic) expected OD size in
    /// packets per interval: `c = 1/size`.
    ///
    /// # Panics
    /// Panics unless `size > 1`.
    pub fn from_mean_size(size: f64) -> Self {
        assert!(
            size.is_finite() && size > 1.0,
            "size must exceed 1 packet, got {size}"
        );
        Self::new(1.0 / size)
    }

    /// `c = E[1/S]`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The splice point `x₀ = 3c/(1+c)`.
    pub fn x0(&self) -> f64 {
        self.x0
    }

    /// The accuracy branch `A(ρ) = 1 − c(1−ρ)/ρ` (valid for `ρ ≥ x₀`).
    pub fn accuracy(&self, rho: f64) -> f64 {
        1.0 - self.c * (1.0 - rho) / rho
    }
}

impl Utility for SreUtility {
    fn value(&self, rho: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&rho), "rho {rho} out of [0,1]");
        let (c, x0) = (self.c, self.x0);
        if rho >= x0 {
            self.accuracy(rho)
        } else {
            // Quadratic expansion of A at x0:
            // A*(ρ) = A(x0) + (ρ−x0)·c/x0² − (ρ−x0)²·c/x0³
            let a = self.accuracy(x0);
            let d = rho - x0;
            a + d * c / (x0 * x0) - d * d * c / (x0 * x0 * x0)
        }
    }

    fn d1(&self, rho: f64) -> f64 {
        let (c, x0) = (self.c, self.x0);
        if rho >= x0 {
            c / (rho * rho)
        } else {
            c / (x0 * x0) - 2.0 * (rho - x0) * c / (x0 * x0 * x0)
        }
    }

    fn d2(&self, rho: f64) -> f64 {
        let (c, x0) = (self.c, self.x0);
        if rho >= x0 {
            -2.0 * c / (rho * rho * rho)
        } else {
            -2.0 * c / (x0 * x0 * x0)
        }
    }
}

/// A logarithmic utility `M(ρ) = ln(1 + ρ/ε)/ln(1 + 1/ε)`, normalized to
/// `M(0) = 0`, `M(1) = 1`.
///
/// Not from the paper's evaluation — provided for the measurement tasks its
/// conclusion anticipates (anomaly detection: diminishing returns on raw
/// visibility rather than size-estimation accuracy), and as a second utility
/// exercising the framework's generality (§VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogUtility {
    eps: f64,
    norm: f64,
}

impl LogUtility {
    /// Creates a log utility with curvature scale `eps` (smaller = more
    /// reward concentrated at small rates).
    ///
    /// # Panics
    /// Panics unless `eps > 0`.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive, got {eps}"
        );
        LogUtility {
            eps,
            norm: (1.0 + 1.0 / eps).ln(),
        }
    }
}

impl Utility for LogUtility {
    fn value(&self, rho: f64) -> f64 {
        (1.0 + rho / self.eps).ln() / self.norm
    }

    fn d1(&self, rho: f64) -> f64 {
        1.0 / ((self.eps + rho) * self.norm)
    }

    fn d2(&self, rho: f64) -> f64 {
        -1.0 / ((self.eps + rho) * (self.eps + rho) * self.norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C_VALUES: [f64; 4] = [1e-5, 4.69e-4, 2e-3, 0.1];

    #[test]
    fn x0_closed_form_and_two_thirds() {
        for c in C_VALUES {
            let u = SreUtility::new(c);
            assert!((u.x0() - 3.0 * c / (1.0 + c)).abs() < 1e-15);
            // The Figure 1 landmark: M(x0) = (2/3)(1+c) ≈ 2/3 for small c.
            assert!(
                (u.value(u.x0()) - 2.0 / 3.0 * (1.0 + c)).abs() < 1e-12,
                "c={c}: M(x0) = {}",
                u.value(u.x0())
            );
        }
        // The paper's Figure 1 labels: E[1/S] pairs giving 0.666 and 0.668.
        let small = SreUtility::new(1e-4);
        assert!((small.value(small.x0()) - 0.6667).abs() < 1e-3);
        let larger = SreUtility::new(2e-3);
        assert!((larger.value(larger.x0()) - 0.668).abs() < 1e-3);
    }

    #[test]
    fn zero_at_origin_and_near_one_at_full_sampling() {
        for c in C_VALUES {
            let u = SreUtility::new(c);
            assert!(u.value(0.0).abs() < 1e-12, "M(0) = {}", u.value(0.0));
            assert!(
                (u.value(1.0) - 1.0).abs() < 1e-12,
                "M(1) = {}",
                u.value(1.0)
            );
        }
    }

    #[test]
    fn c2_continuity_at_splice() {
        for c in C_VALUES {
            let u = SreUtility::new(c);
            let x0 = u.x0();
            let below = x0 * (1.0 - 1e-9);
            let above = x0 * (1.0 + 1e-9);
            assert!((u.value(below) - u.value(above)).abs() < 1e-9);
            assert!((u.d1(below) - u.d1(above)).abs() < 1e-6 * u.d1(x0));
            assert!((u.d2(below) - u.d2(above)).abs() < 1e-6 * u.d2(x0).abs());
        }
    }

    #[test]
    fn strictly_increasing_and_concave() {
        for c in C_VALUES {
            let u = SreUtility::new(c);
            let mut last = -f64::INFINITY;
            let mut last_d1 = f64::INFINITY;
            for i in 0..=1000 {
                let rho = i as f64 / 1000.0;
                let v = u.value(rho);
                let d1 = u.d1(rho);
                assert!(v > last || i == 0, "not increasing at rho={rho} (c={c})");
                assert!(d1 > 0.0, "derivative non-positive at rho={rho}");
                assert!(d1 <= last_d1 + 1e-12, "derivative rising at rho={rho}");
                assert!(u.d2(rho) < 0.0, "not strictly concave at rho={rho}");
                last = v;
                last_d1 = d1;
            }
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let u = SreUtility::new(4.69e-4);
        for &rho in &[1e-4, 7e-4, 2e-3, 0.05, 0.5, 0.9] {
            let h1 = rho * 1e-6;
            let fd1 = (u.value(rho + h1) - u.value(rho - h1)) / (2.0 * h1);
            assert!(
                (fd1 / u.d1(rho) - 1.0).abs() < 1e-5,
                "d1 mismatch at rho={rho}: {fd1} vs {}",
                u.d1(rho)
            );
            // Second differences need a larger step to beat cancellation:
            // the truncation error is O(h²) while round-off grows as 1/h².
            let h2 = rho * 1e-3;
            let fd2 = (u.value(rho + h2) - 2.0 * u.value(rho) + u.value(rho - h2)) / (h2 * h2);
            assert!(
                (fd2 / u.d2(rho) - 1.0).abs() < 1e-2,
                "d2 mismatch at rho={rho}: {fd2} vs {}",
                u.d2(rho)
            );
        }
    }

    #[test]
    fn accuracy_branch_equals_one_minus_sre() {
        let c = 2e-3;
        let u = SreUtility::new(c);
        for &rho in &[0.01, 0.1, 1.0] {
            let expected = 1.0 - nws_traffic::estimate::expected_sre(rho, c);
            assert!((u.value(rho) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_flows_need_lower_rates() {
        // For the same utility level, a larger OD (smaller c) reaches it at
        // a smaller effective rate.
        let small = SreUtility::from_mean_size(500.0 * 300.0);
        let large = SreUtility::from_mean_size(30_000.0 * 300.0);
        let rho = 1e-3;
        assert!(large.value(rho) > small.value(rho));
    }

    #[test]
    #[should_panic(expected = "E[1/S] must be in (0,1)")]
    fn invalid_c_rejected() {
        let _ = SreUtility::new(1.5);
    }

    #[test]
    fn log_utility_properties() {
        let u = LogUtility::new(1e-3);
        assert!(u.value(0.0).abs() < 1e-15);
        assert!((u.value(1.0) - 1.0).abs() < 1e-12);
        for i in 1..100 {
            let rho = i as f64 / 100.0;
            assert!(u.d1(rho) > 0.0);
            assert!(u.d2(rho) < 0.0);
        }
        // Finite-difference check.
        let rho = 0.2;
        let h = 1e-7;
        let fd = (u.value(rho + h) - u.value(rho - h)) / (2.0 * h);
        assert!((fd / u.d1(rho) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn log_utility_invalid_eps() {
        let _ = LogUtility::new(0.0);
    }
}
