//! Property test for warm-started re-solves: after a random ±20% demand
//! perturbation, warm-starting from the unperturbed optimum must reach the
//! cold-solve objective (to 1e-8 relative) in no more iterations — the
//! whole point of carrying the solution across events.

use nws_core::scenarios::janet_task;
use nws_core::{solve_placement, solve_placement_warm, MeasurementTask, PlacementConfig};
use proptest::prelude::*;

/// Rebuilds the JANET task with each OD size scaled by its multiplier,
/// keeping background, θ, and α unchanged.
fn perturbed_task(base: &MeasurementTask, mults: &[f64]) -> MeasurementTask {
    let sizes: Vec<f64> = base.ods().iter().map(|o| o.size).collect();
    let tracked = base.routing().link_loads(&sizes);
    let background: Vec<f64> = base
        .link_loads()
        .iter()
        .zip(&tracked)
        .map(|(total, t)| (total - t).max(0.0))
        .collect();
    let mut builder = MeasurementTask::builder(base.topology().clone());
    for (od, m) in base.ods().iter().zip(mults) {
        builder = builder.track(od.name.clone(), od.od, od.size * m);
    }
    builder
        .background_loads(&background)
        .theta(base.theta())
        .alpha(base.alpha()[0])
        .build()
        .expect("perturbed task stays valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn warm_resolve_matches_cold_with_fewer_iterations(
        mults in proptest::collection::vec(0.8..1.2f64, 20)
    ) {
        let config = PlacementConfig::default();
        let base = janet_task();
        let base_sol = solve_placement(&base, &config).expect("base solves");

        let task = perturbed_task(&base, &mults);
        let cold = solve_placement(&task, &config).expect("cold solves");
        let warm =
            solve_placement_warm(&task, &config, &base_sol.rates).expect("warm solves");

        prop_assert!(warm.kkt_verified, "warm solve must certify KKT");
        prop_assert!(cold.kkt_verified, "cold solve must certify KKT");
        let tol = 1e-8 * cold.objective.abs().max(1.0);
        prop_assert!(
            (warm.objective - cold.objective).abs() < tol,
            "objectives disagree: warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        prop_assert!(
            warm.diagnostics.iterations < cold.diagnostics.iterations,
            "warm start must save iterations: warm {} vs cold {}",
            warm.diagnostics.iterations,
            cold.diagnostics.iterations
        );
    }
}
