//! Property-based tests for the core placement machinery: utility-function
//! invariants, formulation consistency, and optimizer sanity over random
//! task parameters.

use nws_core::scenarios::janet_task_with;
use nws_core::{solve_placement, MeasurementTask, PlacementConfig, SreUtility, Utility};
use nws_routing::OdPair;
use nws_topo::geant;
use proptest::prelude::*;

fn random_c() -> impl Strategy<Value = f64> {
    // E[1/S] across seven orders of magnitude.
    (-7.0..-0.5f64).prop_map(|e| 10f64.powf(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn utility_shape_invariants(c in random_c()) {
        let u = SreUtility::new(c);
        // Splice point and anchor values.
        prop_assert!((u.x0() - 3.0 * c / (1.0 + c)).abs() < 1e-15);
        prop_assert!(u.value(0.0).abs() < 1e-12);
        prop_assert!((u.value(1.0) - 1.0).abs() < 1e-12);
        prop_assert!((u.value(u.x0()) - 2.0 / 3.0 * (1.0 + c)).abs() < 1e-9);
        // Monotone increasing, concave, C1 at the splice.
        let mut last_v = -1.0;
        let mut last_d = f64::INFINITY;
        for i in 0..=500 {
            let rho = i as f64 / 500.0;
            let v = u.value(rho);
            let d = u.d1(rho);
            prop_assert!(v >= last_v, "not increasing at {rho}");
            prop_assert!(d > 0.0);
            prop_assert!(d <= last_d * (1.0 + 1e-12), "derivative rising at {rho}");
            prop_assert!(u.d2(rho) < 0.0);
            last_v = v;
            last_d = d;
        }
    }

    #[test]
    fn utility_dominance_in_size(c_small in random_c(), factor in 1.5..100.0f64, rho in 0.0001..1.0f64) {
        // Larger ODs (smaller c) always have at least the utility of smaller
        // ones at the same effective rate.
        let c_big_od = c_small / factor;
        let small_od = SreUtility::new(c_small);
        let big_od = SreUtility::new(c_big_od);
        prop_assert!(big_od.value(rho) >= small_od.value(rho) - 1e-12);
    }
}

/// Builds a random two-to-five OD task on GEANT with random sizes/θ.
fn random_task(sizes: &[f64], theta_frac: f64) -> MeasurementTask {
    let topo = geant();
    let janet = topo.require_node("JANET").unwrap();
    let dests = ["NL", "LU", "SK", "GR", "NY"];
    let mut builder = MeasurementTask::builder(topo.clone());
    let mut total = 0.0;
    for (i, &s) in sizes.iter().enumerate() {
        let dst = topo.require_node(dests[i]).unwrap();
        builder = builder.track(format!("F{i}"), OdPair::new(janet, dst), s);
        total += s;
    }
    builder.theta(total * theta_frac).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimizer_invariants_over_random_tasks(
        sizes in proptest::collection::vec(1_000.0..1e7f64, 2..=5),
        theta_frac in 0.001..0.2f64,
    ) {
        let task = random_task(&sizes, theta_frac);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        // Feasibility.
        prop_assert!(sol.rates.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let used: f64 = sol.capacity_usage(&task).iter().sum();
        prop_assert!((used / task.theta() - 1.0).abs() < 1e-6);
        // Effective rates consistent with utilities.
        for k in 0..task.ods().len() {
            let u = SreUtility::new(task.ods()[k].inv_mean_size);
            prop_assert!(
                (sol.utilities[k] - u.value(sol.effective_rates_approx[k])).abs() < 1e-9
            );
        }
        // Objective equals the utility sum.
        let sum: f64 = sol.utilities.iter().sum();
        prop_assert!((sol.objective - sum).abs() < 1e-9);
    }

    #[test]
    fn no_random_feasible_point_beats_optimum(
        sizes in proptest::collection::vec(10_000.0..1e6f64, 3..=4),
        theta_frac in 0.01..0.1f64,
        seed_rates in proptest::collection::vec(0.0..1.0f64, 32),
    ) {
        use nws_core::evaluate_rates;
        let task = random_task(&sizes, theta_frac);
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        prop_assume!(sol.kkt_verified);

        // Construct a random feasible comparison: random mass on candidate
        // links, scaled to consume exactly theta (skip if scaling overflows
        // a bound).
        let mut rates = vec![0.0; task.topology().num_links()];
        let mut consumed = 0.0;
        for (j, &l) in task.candidate_links().iter().enumerate() {
            let r = seed_rates[j % seed_rates.len()];
            rates[l.index()] = r;
            consumed += r * task.link_loads()[l.index()];
        }
        prop_assume!(consumed > 0.0);
        let scale = task.theta() / consumed;
        let mut ok = true;
        for &l in task.candidate_links() {
            rates[l.index()] *= scale;
            if rates[l.index()] > 1.0 {
                ok = false;
            }
        }
        prop_assume!(ok);

        let candidate = evaluate_rates(&task, &rates);
        prop_assert!(
            candidate.objective <= sol.objective + 1e-7 * (1.0 + sol.objective.abs()),
            "random point {} beats optimum {}",
            candidate.objective,
            sol.objective
        );
    }
}

#[test]
fn janet_objective_upper_bounded_by_od_count() {
    // M(ρ) < 1, so the objective of 20 ODs is < 20 for any theta.
    for theta in [1_000.0, 100_000.0, 5_000_000.0] {
        let task = janet_task_with(theta, 1).unwrap();
        let sol = solve_placement(&task, &PlacementConfig::default()).unwrap();
        assert!(sol.objective < 20.0);
        assert!(sol.objective > 0.0);
    }
}
