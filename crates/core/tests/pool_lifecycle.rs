//! Lifecycle coverage of the persistent evaluation worker pool: determinism
//! across worker counts, clean shutdown on drop, panic isolation (a typed
//! error, a usable pool, and a typed solver error — never a hang), and the
//! fused kernel against the separate kernels.

use nws_core::{
    build_problem, ChunkOut, EvalPool, ParallelConfig, PlacementObjective, PoolError, RateModel,
    ReducedIndex, SreUtility, Utility,
};
use nws_linalg::Vector;
use nws_solver::{Objective, Solver, SolverError};
use std::sync::Arc;

/// A synthetic objective over `dim` variables with `ods` random-ish sparse
/// rows (deterministic LCG, no external RNG).
fn synthetic(dim: usize, ods: usize, model: RateModel) -> PlacementObjective {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut rows = Vec::with_capacity(ods);
    let mut utilities = Vec::with_capacity(ods);
    for k in 0..ods {
        let len = 1 + next() % 5;
        let mut row = Vec::with_capacity(len);
        let mut used = std::collections::HashSet::new();
        for _ in 0..len {
            let v = next() % dim;
            if used.insert(v) {
                row.push((v, 0.1 + 0.9 * ((next() % 1000) as f64 / 1000.0)));
            }
        }
        rows.push(row);
        utilities.push(SreUtility::new(1e-6 + 1e-3 * ((k % 9) as f64 + 1.0)));
    }
    let weights = vec![1.0; ods];
    PlacementObjective::from_parts(utilities, weights, rows, model, dim)
}

fn forced(threads: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        min_ods_per_thread: 1,
        min_nnz_parallel: 0,
    }
}

fn eval_point(dim: usize) -> Vector {
    (0..dim).map(|v| 1e-3 * (1.0 + (v % 7) as f64)).collect()
}

#[test]
fn results_deterministic_across_worker_counts() {
    let dim = 23;
    let p = eval_point(dim);
    let s: Vector = (0..dim).map(|v| (v as f64) / 10.0 - 1.0).collect();
    for model in [RateModel::Approximate, RateModel::Exact] {
        let serial = synthetic(dim, 67, model);
        let v0 = serial.value(&p);
        let g0 = serial.gradient(&p);
        let c0 = serial.curvature_along(&p, &s);
        for threads in [1, 2, 4, 8] {
            let pooled = synthetic(dim, 67, model)
                .with_parallel(forced(threads))
                .with_pool(EvalPool::new(threads));
            // Bit-for-bit repeatability call to call...
            assert_eq!(pooled.value(&p), pooled.value(&p), "{model:?} x{threads}");
            // ...and 1e-12 agreement with the serial reference.
            let rel = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
            assert!(rel(v0, pooled.value(&p)), "{model:?} x{threads} value");
            assert!(
                rel(c0, pooled.curvature_along(&p, &s)),
                "{model:?} x{threads} curvature"
            );
            let g = pooled.gradient(&p);
            for v in 0..dim {
                assert!(rel(g0[v], g[v]), "{model:?} x{threads} var {v}");
            }
        }
    }
}

#[test]
fn drop_shuts_workers_down() {
    // Dropping the last handle must join the workers (no leak, no hang);
    // observable as: a fresh pool still works right after, and stats from
    // the dropped pool are consistent.
    for _ in 0..16 {
        let pool = EvalPool::new(4);
        let task: nws_core::ChunkTask = Arc::new(|range, _scratch| ChunkOut {
            value: range.len() as f64,
            ..ChunkOut::default()
        });
        let outs = pool
            .run(&[0..3, 3..7, 7..8], task, |_| Vec::new())
            .expect("pool runs");
        assert_eq!(
            outs.iter().map(|(o, _)| o.value).collect::<Vec<_>>(),
            vec![3.0, 4.0, 1.0]
        );
        drop(pool);
    }
}

#[test]
fn worker_panic_is_typed_and_pool_stays_usable() {
    let pool = EvalPool::new(2);
    let bomb: nws_core::ChunkTask = Arc::new(|range, _| {
        if range.start == 0 {
            panic!("chunk bomb");
        }
        ChunkOut::default()
    });
    let err = pool
        .run(&[0..1, 1..2], bomb, |_| Vec::new())
        .expect_err("panic must surface");
    match err {
        PoolError::WorkerPanicked { message } => assert!(
            message.contains("chunk bomb"),
            "panic payload preserved: {message}"
        ),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The pool survives: the same workers serve the next call.
    let ok: nws_core::ChunkTask = Arc::new(|range, _| ChunkOut {
        value: range.end as f64,
        ..ChunkOut::default()
    });
    let outs = pool.run(&[0..1, 1..2], ok, |_| Vec::new()).expect("usable");
    assert_eq!(outs.len(), 2);
    assert!(pool.stats().panics >= 1);
}

/// A utility that panics in `d1` above a rate threshold — drives a panic
/// inside a pooled objective evaluation.
#[derive(Debug, Clone, Copy)]
struct PanicUtility;

impl Utility for PanicUtility {
    fn value(&self, rho: f64) -> f64 {
        -1.0 / (rho + 1e-3)
    }
    fn d1(&self, rho: f64) -> f64 {
        assert!(rho < 0.5, "utility blew up at rho = {rho}");
        1.0 / ((rho + 1e-3) * (rho + 1e-3))
    }
    fn d2(&self, rho: f64) -> f64 {
        -2.0 / ((rho + 1e-3) * (rho + 1e-3) * (rho + 1e-3))
    }
}

#[test]
fn objective_panic_surfaces_as_typed_solver_error_not_hang() {
    // One OD whose row sums to a high rate at the solve's operating point,
    // tripping PanicUtility::d1 inside a pooled gradient chunk.
    let dim = 8;
    let rows: Vec<Vec<(usize, f64)>> = (0..dim).map(|v| vec![(v, 1.0)]).collect();
    let utilities = vec![PanicUtility; dim];
    let obj = PlacementObjective::from_parts(
        utilities,
        vec![1.0; dim],
        rows,
        RateModel::Approximate,
        dim,
    )
    .with_parallel(forced(4))
    .with_pool(EvalPool::new(4));

    // Direct evaluation at a tripping point (the panic lives in the
    // utility's first derivative, so probe the gradient kernel): NaN out,
    // typed cause retained.
    let bad_p = Vector::filled(dim, 0.9);
    assert!(obj.gradient(&bad_p)[0].is_nan());
    match obj.last_pool_error() {
        Some(PoolError::WorkerPanicked { message }) => {
            assert!(message.contains("utility blew up"), "{message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // Through the solver: a typed error, not a hang or a panic.
    let problem = nws_solver::BoxLinearProblem::new(
        Vector::filled(dim, 1.0),
        Vector::filled(dim, 1.0),
        0.9 * dim as f64,
    )
    .unwrap();
    let err = Solver::default().maximize(&obj, &problem).unwrap_err();
    assert!(
        matches!(err, SolverError::NonFiniteObjective(_)),
        "got {err:?}"
    );

    // And the pool is still usable for sane inputs afterwards.
    let good_p = Vector::filled(dim, 1e-3);
    assert!(obj.value(&good_p).is_finite());
    assert!(obj.gradient(&good_p).is_finite());
}

#[test]
fn pooled_solve_matches_serial_solve_end_to_end() {
    let task = nws_core::scenarios::janet_task();
    let idx = ReducedIndex::new(&task);
    let problem = build_problem(&task, &idx).unwrap();
    let serial = PlacementObjective::new(&task, &idx, RateModel::Approximate);
    let pooled = PlacementObjective::new(&task, &idx, RateModel::Approximate)
        .with_parallel(forced(4))
        .with_pool(EvalPool::new(4));
    let s0 = Solver::default().maximize(&serial, &problem).unwrap();
    let s1 = Solver::default().maximize(&pooled, &problem).unwrap();
    assert!(s0.kkt_verified && s1.kkt_verified);
    assert!(
        s1.p.approx_eq(&s0.p, 1e-9),
        "pooled solve diverged: {} vs {}",
        s1.p,
        s0.p
    );
    // The pool really ran: chunk dispatches were recorded.
    assert!(pooled.pool().unwrap().stats().dispatches > 0);
}

#[test]
fn global_pools_are_shared_and_sized() {
    let a = EvalPool::global(3);
    let b = EvalPool::global(3);
    assert_eq!(a.threads(), 3);
    // Same process-wide pool object for the same size.
    let t: nws_core::ChunkTask = Arc::new(|_, _| ChunkOut::default());
    let before = a.stats().dispatches;
    b.run(&[0..1, 1..2], t, |_| Vec::new()).unwrap();
    assert!(a.stats().dispatches > before, "stats shared across handles");
}
