//! Property tests pinning the parallel objective-evaluation engine to the
//! serial path: for random synthetic tasks, every public evaluation quantity
//! (value, gradient, curvature, directional derivative) must agree between
//! the serial path and the chunked multi-threaded path to 1e-12 relative,
//! across worker counts and both rate models.

use nws_core::{EvalPool, ParallelConfig, PlacementObjective, RateModel, ReducedIndex, SreUtility};
use nws_linalg::Vector;
use nws_solver::Objective;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One random OD term: sparse row over the variables, weight, utility `c`.
type OdSpec = (Vec<(usize, f64)>, f64, f64);

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// A random synthetic objective: per OD a sparse row over `dim` variables, a
/// weight, and an SRE utility constant, plus an evaluation point `p` and a
/// direction `s`. Rates stay in the low-rate regime ([0, 0.02]) where the
/// exact model is well away from its `p → 1` singularities.
fn objective_parts() -> impl Strategy<Value = (usize, Vec<OdSpec>, Vec<f64>, Vec<f64>)> {
    (2usize..24).prop_flat_map(|dim| {
        (
            Just(dim),
            prop::collection::vec(
                (
                    prop::collection::vec((0..dim, 0.05f64..1.0), 1..6),
                    0.1f64..2.0,
                    1e-6f64..1e-2,
                ),
                1..40,
            ),
            prop::collection::vec(0.0f64..0.02, dim..=dim),
            prop::collection::vec(-1.0f64..1.0, dim..=dim),
        )
    })
}

fn build(dim: usize, ods: &[OdSpec], model: RateModel, threads: usize) -> PlacementObjective {
    let utilities: Vec<SreUtility> = ods.iter().map(|&(_, _, c)| SreUtility::new(c)).collect();
    let weights: Vec<f64> = ods.iter().map(|&(_, w, _)| w).collect();
    let rows: Vec<Vec<(usize, f64)>> = ods.iter().map(|(row, _, _)| row.clone()).collect();
    let obj = PlacementObjective::from_parts(utilities, weights, rows, model, dim).with_parallel(
        // Disable both auto-serial cutoffs so the pooled path is really
        // exercised on these toy instances, regardless of host core count.
        ParallelConfig {
            threads,
            min_ods_per_thread: 1,
            min_nnz_parallel: 0,
        },
    );
    if threads > 1 {
        // `with_parallel` caps the pool at the machine's cores; attach the
        // requested size explicitly so a 1-core CI box still runs the
        // multi-worker merge paths (shared per-size pools, cheap).
        obj.with_pool(EvalPool::global(threads))
    } else {
        obj
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_agrees_with_serial_both_models((dim, ods, p, s) in objective_parts()) {
        let p: Vector = p.into_iter().collect();
        let s: Vector = s.into_iter().collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let serial = build(dim, &ods, model, 1);
            let value = serial.value(&p);
            let gradient = serial.gradient(&p);
            let curvature = serial.curvature_along(&p, &s);
            for threads in THREAD_COUNTS {
                let par = build(dim, &ods, model, threads);
                prop_assert!(
                    rel_close(value, par.value(&p), 1e-12),
                    "{model:?} x{threads}: value {value} vs {}",
                    par.value(&p)
                );
                let pg = par.gradient(&p);
                for v in 0..dim {
                    prop_assert!(
                        rel_close(gradient[v], pg[v], 1e-12),
                        "{model:?} x{threads} var {v}: {} vs {}",
                        gradient[v],
                        pg[v]
                    );
                }
                prop_assert!(
                    rel_close(curvature, par.curvature_along(&p, &s), 1e-12),
                    "{model:?} x{threads}: curvature {curvature} vs {}",
                    par.curvature_along(&p, &s)
                );
            }
        }
    }

    #[test]
    fn fused_kernel_agrees_with_separate_kernels((dim, ods, p, s) in objective_parts()) {
        let p: Vector = p.into_iter().collect();
        let s: Vector = s.into_iter().collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let serial = build(dim, &ods, model, 1);
            let value = serial.value(&p);
            let gradient = serial.gradient(&p);
            let curvature = serial.curvature_along(&p, &s);
            let dir_scale = gradient.norm_inf() * s.norm_inf() * dim as f64;
            for threads in THREAD_COUNTS {
                let par = build(dim, &ods, model, threads);
                let mut g = Vector::zeros(dim);
                let fused = par.eval_fused(&p, Some(&s), Some(&mut g));
                prop_assert!(
                    rel_close(value, fused.value, 1e-12),
                    "{model:?} x{threads}: value {value} vs {}",
                    fused.value
                );
                prop_assert!(
                    (fused.derivative - gradient.dot(&s)).abs() <= 1e-12 * dir_scale.max(1.0),
                    "{model:?} x{threads}: derivative {} vs {}",
                    fused.derivative,
                    gradient.dot(&s)
                );
                prop_assert!(
                    rel_close(curvature, fused.curvature, 1e-12),
                    "{model:?} x{threads}: curvature {curvature} vs {}",
                    fused.curvature
                );
                for v in 0..dim {
                    prop_assert!(
                        rel_close(gradient[v], g[v], 1e-12),
                        "{model:?} x{threads} var {v}: {} vs {}",
                        gradient[v],
                        g[v]
                    );
                }
            }
        }
    }

    #[test]
    fn gradient_into_and_directional_agree((dim, ods, p, s) in objective_parts()) {
        let p: Vector = p.into_iter().collect();
        let s: Vector = s.into_iter().collect();
        for model in [RateModel::Approximate, RateModel::Exact] {
            let serial = build(dim, &ods, model, 1);
            let gradient = serial.gradient(&p);
            for threads in THREAD_COUNTS {
                let par = build(dim, &ods, model, threads);
                let mut out = Vector::zeros(dim);
                par.gradient_into(&p, &mut out);
                for v in 0..dim {
                    prop_assert!(
                        rel_close(gradient[v], out[v], 1e-12),
                        "{model:?} x{threads} var {v}: {} vs {}",
                        gradient[v],
                        out[v]
                    );
                }
                // The contraction identity carries float-cancellation noise,
                // so the tolerance is absolute in the gradient's scale.
                let direct = par.directional_derivative(&p, &s);
                let contracted = gradient.dot(&s);
                let scale = gradient.norm_inf() * s.norm_inf() * dim as f64;
                prop_assert!(
                    (direct - contracted).abs() <= 1e-12 * scale.max(1.0),
                    "{model:?} x{threads}: {direct} vs {contracted}"
                );
            }
        }
    }
}

/// The acceptance pin from the issue: on GEANT, the parallel evaluator and
/// the serial evaluator agree to 1e-12 relative along a whole solve
/// trajectory's worth of evaluation points.
#[test]
fn geant_parallel_matches_serial_at_many_points() {
    let task = nws_core::scenarios::janet_task();
    let idx = ReducedIndex::new(&task);
    for model in [RateModel::Approximate, RateModel::Exact] {
        let serial = PlacementObjective::new(&task, &idx, model);
        for threads in [2, 4, 8] {
            let par = PlacementObjective::new(&task, &idx, model)
                .with_parallel(ParallelConfig {
                    threads,
                    min_ods_per_thread: 1,
                    min_nnz_parallel: 0,
                })
                .with_pool(EvalPool::global(threads));
            for step in 0..20 {
                let scale = 1e-4 * (step as f64 + 1.0);
                let p: Vector = (0..idx.dim())
                    .map(|v| scale * (1.0 + (v % 7) as f64))
                    .collect();
                assert!(
                    rel_close(serial.value(&p), par.value(&p), 1e-12),
                    "{model:?} x{threads} step {step}"
                );
                let (g0, g1) = (serial.gradient(&p), par.gradient(&p));
                for v in 0..idx.dim() {
                    assert!(
                        rel_close(g0[v], g1[v], 1e-12),
                        "{model:?} x{threads} step {step} var {v}"
                    );
                }
            }
        }
    }
}
