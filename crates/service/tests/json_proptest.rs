//! Property tests for the JSON codec: `parse(encode(v)) == v` over randomly
//! generated documents — surrogate-pair strings, exact integers past 2⁵³,
//! and deep nesting.
//!
//! The vendored proptest shim has no recursive strategies, so the document
//! generator is hand-written over a `StdRng` whose seed is the generated
//! input; shrinkless failures still print the offending seed.

use nws_service::json::{parse, Json};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strings across every encoding regime: ASCII, characters the encoder must
/// escape (quotes, backslashes, control characters), BMP multi-byte, and
/// astral-plane characters (which the parser also accepts as `\uXXXX`
/// surrogate pairs).
fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0usize..12);
    (0..len)
        .map(|_| match rng.random_range(0u32..8) {
            0 => '"',
            1 => '\\',
            2 => char::from_u32(rng.random_range(0u32..0x20)).expect("control char"),
            3 => 'é',
            4 => '日',
            5 => char::from_u32(rng.random_range(0x1F300u32..0x1F700)).expect("astral char"),
            _ => char::from_u32(rng.random_range(0x20u32..0x7f)).expect("printable ascii"),
        })
        .collect()
}

fn arb_number(rng: &mut StdRng) -> Json {
    match rng.random_range(0u32..4) {
        // Full-range u64, exercising values past 2^53.
        0 => Json::UInt(rng.random::<u64>()),
        1 => Json::UInt(rng.random_range(0u64..100)),
        2 => Json::Num((rng.random::<f64>() - 0.5) * 1e9),
        _ => Json::Num(-(rng.random_range(0u64..1_000_000) as f64)),
    }
}

fn arb_json(rng: &mut StdRng, depth: usize) -> Json {
    let top = if depth == 0 { 4 } else { 6 };
    match rng.random_range(0u32..top) {
        0 => Json::Null,
        1 => Json::Bool(rng.random()),
        2 => arb_number(rng),
        3 => Json::Str(arb_string(rng)),
        4 => Json::Arr(
            (0..rng.random_range(0usize..4))
                .map(|_| arb_json(rng, depth - 1))
                .collect(),
        ),
        _ => {
            // The parser rejects duplicate keys, so keep first occurrences.
            let mut pairs: Vec<(String, Json)> = Vec::new();
            for _ in 0..rng.random_range(0usize..4) {
                let key = arb_string(rng);
                let value = arb_json(rng, depth - 1);
                if !pairs.iter().any(|(k, _)| *k == key) {
                    pairs.push((key, value));
                }
            }
            Json::Obj(pairs)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Round trip: any generated document encodes to text the parser maps
    /// back to an equal value.
    #[test]
    fn encode_parse_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = arb_json(&mut rng, 4);
        let text = doc.encode();
        let back = parse(&text).expect("encoder output parses");
        prop_assert_eq!(&back, &doc, "text was {}", text);
        // Encoding is deterministic, so a second trip is a fixed point.
        prop_assert_eq!(back.encode(), text);
    }

    /// Any astral-plane character written as a `\uXXXX` surrogate-pair
    /// escape parses to that character, and re-encodes as raw UTF-8 that
    /// round-trips.
    #[test]
    fn surrogate_pair_escapes_decode(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = rng.random_range(0x10000u32..=0x10FFFF);
        let Some(c) = char::from_u32(code) else {
            return Ok(()); // unassigned scalar values cannot occur (all in range are valid)
        };
        let v = code - 0x10000;
        let hi = 0xD800 + (v >> 10);
        let lo = 0xDC00 + (v & 0x3FF);
        let text = format!("\"\\u{hi:04X}\\u{lo:04X}\"");
        let parsed = parse(&text).expect("surrogate pair parses");
        prop_assert_eq!(&parsed, &Json::Str(c.to_string()));
        let reparsed = parse(&parsed.encode()).expect("raw UTF-8 parses");
        prop_assert_eq!(reparsed, parsed);
    }

    /// Full-range u64 integers survive a text round trip exactly.
    #[test]
    fn u64_roundtrip_exact(n in any::<u64>()) {
        let text = Json::UInt(n).encode();
        prop_assert_eq!(parse(&text).unwrap().as_u64(), Some(n));
    }
}

#[test]
fn deep_nesting_roundtrips() {
    let mut doc = Json::Str("leaf".into());
    for i in 0..60 {
        doc = if i % 2 == 0 {
            Json::Arr(vec![doc])
        } else {
            Json::Obj(vec![("k".to_string(), doc)])
        };
    }
    let text = doc.encode();
    assert_eq!(parse(&text).expect("deep document parses"), doc);
}
