//! Integration test: a full scripted daemon session on the JANET-on-GEANT
//! scenario — demand updates, a link failure, a θ change, an OD addition,
//! queries, snapshot/rollback, and a clean shutdown — with shadow cold
//! solves so warm-start savings can be asserted end to end.

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_service::json::{parse, Json};
use nws_service::{Daemon, DaemonOptions, ServiceState};
use std::io::Cursor;

const SCRIPT: &str = r#"{"cmd":"snapshot"}
{"cmd":"set_theta","theta":90000}
{"cmd":"update_demand","od":"JANET-NL","size":10800000}
{"cmd":"fail_link","a":"FR","b":"LU"}
{"cmd":"add_od","name":"UK-DE","src":"UK","dst":"DE","size":5000}
{"cmd":"query_rates"}
{"cmd":"query_accuracy","runs":5,"seed":7}
{"cmd":"rollback"}
{"cmd":"set_theta","theta":110000}
{"cmd":"update_demand","od":"JANET-LU","size":9000}
{"cmd":"stats"}
{"cmd":"shutdown"}
"#;

#[test]
fn scripted_session_warm_starts_every_event() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(
        state,
        DaemonOptions {
            shadow_cold: true,
            ..DaemonOptions::default()
        },
    );
    let mut out = Vec::new();
    let summary = daemon
        .run(Cursor::new(SCRIPT.to_string()), &mut out)
        .expect("session runs");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.requests, 12);

    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse(l).expect("valid JSON response"))
        .collect();
    assert_eq!(lines.len(), 13, "hello + one response per request");
    for line in &lines {
        assert_eq!(
            line.get("ok").unwrap().as_bool(),
            Some(true),
            "every response succeeds: {}",
            line.encode()
        );
    }
    assert_eq!(lines[0].get("cmd").unwrap().as_str(), Some("hello"));
    let hello_obj = lines[0]
        .get("resolve")
        .unwrap()
        .get("objective")
        .unwrap()
        .as_f64()
        .unwrap();

    // The six mutating events: responses 2-5 and 9-10 (1-based after hello).
    let mutating: Vec<&Json> = lines
        .iter()
        .filter(|l| l.get("resolve").is_some() && l.get("cmd").unwrap().as_str() != Some("hello"))
        .collect();
    assert_eq!(mutating.len(), 6, "six mutating events in the script");
    let mut warm_iters = 0.0;
    let mut cold_iters = 0.0;
    let mut warm_ms = 0.0;
    let mut cold_ms = 0.0;
    for resp in &mutating {
        let resolve = resp.get("resolve").unwrap();
        assert_eq!(
            resolve.get("kkt").unwrap().as_bool(),
            Some(true),
            "every re-solve is KKT-certified: {}",
            resp.encode()
        );
        assert_eq!(resolve.get("warm").unwrap().as_bool(), Some(true));
        assert!(resolve.get("objective_delta").unwrap().as_f64().is_some());
        warm_iters += resolve.get("iterations").unwrap().as_f64().unwrap();
        warm_ms += resolve.get("wall_ms").unwrap().as_f64().unwrap();
        let cold = resolve.get("cold").expect("shadow mode attaches cold data");
        cold_iters += cold.get("iterations").unwrap().as_f64().unwrap();
        cold_ms += cold.get("wall_ms").unwrap().as_f64().unwrap();
        // Warm and shadow cold agree on the optimum.
        let w = resolve.get("objective").unwrap().as_f64().unwrap();
        let c = cold.get("objective").unwrap().as_f64().unwrap();
        assert!(
            (w - c).abs() < 1e-6 * c.abs().max(1.0),
            "warm {w} vs cold {c}"
        );
    }
    assert!(
        warm_iters < cold_iters,
        "warm re-solves must save iterations in total: warm {warm_iters} vs cold {cold_iters}"
    );
    assert!(warm_ms > 0.0 && cold_ms > 0.0);

    // The failure-epoch queries (responses 6-7) reflect the mutated state.
    let rates = &lines[6];
    assert_eq!(rates.get("cmd").unwrap().as_str(), Some("query_rates"));
    assert_eq!(rates.get("theta").unwrap().as_f64(), Some(90_000.0));
    assert!(!rates.get("monitors").unwrap().as_arr().unwrap().is_empty());
    let acc = &lines[7];
    assert_eq!(acc.get("cmd").unwrap().as_str(), Some("query_accuracy"));
    let mean = acc.get("mean").unwrap().as_f64().unwrap();
    assert!(mean > 0.0 && mean <= 1.0 + 1e-9);

    // Rollback restores the startup objective without a re-solve.
    let rollback = &lines[8];
    assert_eq!(rollback.get("cmd").unwrap().as_str(), Some("rollback"));
    assert!(rollback.get("resolve").is_none());
    assert_eq!(rollback.get("depth").unwrap().as_f64(), Some(0.0));
    let restored = rollback.get("objective").unwrap().as_f64().unwrap();
    assert!(
        (restored - hello_obj).abs() < 1e-12,
        "rollback reinstalls the snapshotted solution"
    );

    // Stats agree with the session's traffic.
    let stats = lines[11].get("stats").unwrap();
    assert_eq!(stats.get("resolves").unwrap().as_f64(), Some(7.0)); // hello + 6
    assert_eq!(stats.get("warm_resolves").unwrap().as_f64(), Some(6.0));
    assert_eq!(stats.get("errors").unwrap().as_f64(), Some(0.0));
    let saved = stats
        .get("mean_iterations_saved")
        .unwrap()
        .as_f64()
        .expect("shadow mode yields savings data");
    assert!(
        saved > 0.0,
        "mean iterations saved must be positive: {saved}"
    );
}

#[test]
fn batched_demand_update_is_one_event() {
    // One update_demands line = one transaction = one warm re-solve, and a
    // batch with an unknown OD is refused whole without poisoning later
    // requests.
    let script = r#"{"cmd":"update_demands","updates":[["JANET-NL",10800000],["JANET-DE",5000000],["JANET-FR",4000000]]}
{"cmd":"update_demands","updates":[["JANET-LU",9000],["NOPE",5000]]}
{"cmd":"stats"}
{"cmd":"shutdown"}
"#;
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let mut out = Vec::new();
    let summary = daemon
        .run(Cursor::new(script.to_string()), &mut out)
        .unwrap();
    assert!(summary.clean_shutdown);
    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse(l).unwrap())
        .collect();
    let batch = &lines[1];
    assert_eq!(batch.get("ok").unwrap().as_bool(), Some(true));
    let resolve = batch.get("resolve").unwrap();
    assert_eq!(resolve.get("warm").unwrap().as_bool(), Some(true));
    assert_eq!(resolve.get("kkt").unwrap().as_bool(), Some(true));
    // The mixed batch is rejected atomically.
    assert_eq!(lines[2].get("ok").unwrap().as_bool(), Some(false));
    // Exactly two resolves ran: the hello solve and the good batch.
    let stats = lines[3].get("stats").unwrap();
    assert_eq!(stats.get("resolves").unwrap().as_f64(), Some(2.0));
    assert_eq!(stats.get("errors").unwrap().as_f64(), Some(1.0));
}

#[test]
fn rejected_events_do_not_poison_the_session() {
    let script = r#"{"cmd":"fail_link","a":"FR","b":"NOWHERE"}
{"cmd":"set_theta","theta":-5}
{"cmd":"update_demand","od":"JANET-NL","size":9000000}
{"cmd":"shutdown"}
"#;
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let mut out = Vec::new();
    let summary = daemon
        .run(Cursor::new(script.to_string()), &mut out)
        .unwrap();
    assert!(summary.clean_shutdown);
    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse(l).unwrap())
        .collect();
    assert_eq!(lines[1].get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(lines[2].get("ok").unwrap().as_bool(), Some(false));
    // The valid event after two rejections still warm-starts and certifies.
    let resolve = lines[3].get("resolve").unwrap();
    assert_eq!(resolve.get("warm").unwrap().as_bool(), Some(true));
    assert_eq!(resolve.get("kkt").unwrap().as_bool(), Some(true));
}
