//! End-to-end durability tests: clean-exit snapshots, crash injection
//! with byte-level WAL truncation, and snapshot-rotation recovery.
//!
//! The determinism contract under test: recovering a state directory must
//! produce a `ServiceState` whose persisted document is *byte-identical*
//! to replaying the surviving command prefix from scratch — same installed
//! rates (bit-for-bit), same OD registry, same θ, same snapshot stack.

use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_obs::Recorder;
use nws_service::json::{parse, Json};
use nws_service::{
    parse_request, Daemon, DaemonOptions, FsyncPolicy, PersistConfig, Request, ServiceState,
    StateStore,
};
use nws_store::frame;

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nws-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fresh_state() -> ServiceState {
    ServiceState::from_task(&janet_task(), PlacementConfig::default())
}

/// Applies one state-changing request the way the daemon does.
fn apply(state: &mut ServiceState, req: &Request) {
    match req {
        Request::Snapshot => {
            state.snapshot();
        }
        Request::Rollback => {
            state.rollback().unwrap();
        }
        r => {
            state.apply_event(r, false).unwrap();
        }
    }
}

fn persist_cfg(dir: &Path, snapshot_every: u64) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        snapshot_every,
        fault: None,
    }
}

fn run_daemon(dir: &Path, script: &str) -> Vec<Json> {
    let mut daemon = Daemon::new(
        fresh_state(),
        DaemonOptions {
            persist: Some(persist_cfg(dir, 32)),
            ..DaemonOptions::default()
        },
    );
    let mut out = Vec::new();
    daemon
        .run(Cursor::new(script.to_string()), &mut out)
        .unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse(l).unwrap())
        .collect()
}

fn wal_segment(dir: &Path) -> PathBuf {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("wal-"))
        .expect("a WAL segment")
}

const COMMANDS: [&str; 5] = [
    r#"{"cmd":"snapshot"}"#,
    r#"{"cmd":"set_theta","theta":90000}"#,
    r#"{"cmd":"update_demand","od":"JANET-NL","size":10800000}"#,
    r#"{"cmd":"fail_link","a":"FR","b":"LU"}"#,
    r#"{"cmd":"rollback"}"#,
];

#[test]
fn clean_shutdown_recovers_from_snapshot_alone() {
    let dir = tdir("clean");
    let first = run_daemon(
        &dir,
        "{\"cmd\":\"set_theta\",\"theta\":90000}\n\
         {\"cmd\":\"fail_link\",\"a\":\"FR\",\"b\":\"LU\"}\n\
         {\"cmd\":\"query_rates\"}\n\
         {\"cmd\":\"shutdown\"}\n",
    );
    let pre_kill_monitors = first[3].get("monitors").unwrap().encode();

    // A clean stop leaves one snapshot covering everything: recovery
    // loads it and replays nothing.
    let mut state = fresh_state();
    let (_store, report) =
        StateStore::open(&persist_cfg(&dir, 32), &mut state, &Recorder::disabled()).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.replayed_events, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(state.theta(), 90_000.0);
    assert_eq!(state.failed_fibres().len(), 1);
    drop(_store);

    // A restarted daemon announces the recovery and serves the identical
    // configuration: active monitors match byte-for-byte.
    let second = run_daemon(&dir, "{\"cmd\":\"query_rates\"}\n{\"cmd\":\"shutdown\"}\n");
    let recovered = second[0].get("recovered").unwrap();
    assert_eq!(recovered.get("snapshot").unwrap().as_bool(), Some(true));
    assert_eq!(recovered.get("replayed_events").unwrap().as_u64(), Some(0));
    assert!(second[0].get("resolve").is_none(), "no boot solve needed");
    assert_eq!(
        second[1].get("monitors").unwrap().encode(),
        pre_kill_monitors
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn eof_exit_snapshots_like_shutdown_does() {
    let dir = tdir("eof");
    // No `shutdown` line: input just ends.
    run_daemon(&dir, "{\"cmd\":\"set_theta\",\"theta\":110000}\n");
    let mut state = fresh_state();
    let (_store, report) =
        StateStore::open(&persist_cfg(&dir, 32), &mut state, &Recorder::disabled()).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.replayed_events, 0);
    assert_eq!(state.theta(), 110_000.0);
    assert!(state.installed().is_some());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_injection_matches_reference_replay_at_every_boundary() {
    // Phase 1: a "live" run that dies without a final snapshot.
    let dir = tdir("inject-live");
    let mut live = fresh_state();
    let (mut store, report) =
        StateStore::open(&persist_cfg(&dir, 32), &mut live, &Recorder::disabled()).unwrap();
    assert!(!report.snapshot_loaded);
    live.resolve(false).unwrap(); // the daemon's startup solve
    for cmd in COMMANDS {
        let req = parse_request(cmd).unwrap();
        apply(&mut live, &req);
        store.record_applied(&req, &live, &[]).unwrap();
    }
    drop(store); // crash: no exit snapshot
    let segment = wal_segment(&dir);
    let full = fs::read(&segment).unwrap();

    // Record boundaries of the journaled frames.
    let scan = frame::scan(&full);
    assert!(scan.clean());
    assert_eq!(scan.records.len(), COMMANDS.len());
    let mut boundaries = vec![0usize];
    for r in &scan.records {
        boundaries.push(boundaries.last().unwrap() + frame::encode_record(r.seq, &r.payload).len());
    }

    // Phase 2: truncate at each boundary and at mid-record offsets;
    // recovery must equal a from-scratch replay of the surviving prefix.
    let mut cuts = boundaries.clone();
    for w in boundaries.windows(2) {
        cuts.push((w[0] + w[1]) / 2); // torn mid-record
        cuts.push(w[1] - 1); // one byte short of complete
    }
    cuts.sort_unstable();
    cuts.dedup();
    let work = tdir("inject-work");
    for cut in cuts {
        let survivors = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();

        let _ = fs::remove_dir_all(&work);
        fs::create_dir_all(&work).unwrap();
        fs::write(work.join(segment.file_name().unwrap()), &full[..cut]).unwrap();

        let mut recovered = fresh_state();
        let (rec_store, report) = StateStore::open(
            &persist_cfg(&work, 32),
            &mut recovered,
            &Recorder::disabled(),
        )
        .unwrap();
        assert_eq!(report.replayed_events, survivors as u64, "cut at {cut}");
        assert_eq!(
            report.truncated_bytes,
            (cut - boundaries[survivors]) as u64,
            "cut at {cut}"
        );
        drop(rec_store);
        if recovered.installed().is_none() {
            // With nothing to replay the daemon cold-solves at boot.
            recovered.resolve(false).unwrap();
        }

        let mut reference = fresh_state();
        reference.resolve(false).unwrap();
        for cmd in &COMMANDS[..survivors] {
            apply(&mut reference, &parse_request(cmd).unwrap());
        }
        assert_eq!(
            recovered.persisted().encode(),
            reference.persisted().encode(),
            "recovered state diverges from reference replay at cut {cut}"
        );
        assert_eq!(recovered.snapshot_depth(), reference.snapshot_depth());
    }
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn snapshot_rotation_recovery_equals_full_replay() {
    // snapshot_every=2 forces two rotations across five commands; a crash
    // after the fifth leaves snapshot(4 commands) + WAL(1 command).
    let dir = tdir("rotate");
    let mut live = fresh_state();
    let (mut store, _) =
        StateStore::open(&persist_cfg(&dir, 2), &mut live, &Recorder::disabled()).unwrap();
    live.resolve(false).unwrap();
    for cmd in COMMANDS {
        let req = parse_request(cmd).unwrap();
        apply(&mut live, &req);
        store.record_applied(&req, &live, &[]).unwrap();
    }
    drop(store); // crash
    let names: Vec<String> = {
        let mut n: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "LOCK")
            .collect();
        n.sort();
        n
    };
    // Compaction kept exactly one snapshot (covering seq 4) and the
    // rotated segment holding seq 5.
    assert_eq!(
        names,
        vec![
            "snap-00000000000000000004.json".to_string(),
            "wal-00000000000000000005.log".to_string(),
        ]
    );

    let mut recovered = fresh_state();
    let (_store, report) =
        StateStore::open(&persist_cfg(&dir, 2), &mut recovered, &Recorder::disabled()).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.replayed_events, 1);

    let mut reference = fresh_state();
    reference.resolve(false).unwrap();
    for cmd in COMMANDS {
        apply(&mut reference, &parse_request(cmd).unwrap());
    }
    assert_eq!(
        recovered.persisted().encode(),
        reference.persisted().encode(),
        "snapshot + replay must equal from-scratch replay"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn metrics_command_reports_wal_stats() {
    let dir = tdir("walstats");
    let lines = run_daemon(
        &dir,
        "{\"cmd\":\"set_theta\",\"theta\":90000}\n\
         {\"cmd\":\"snapshot\"}\n\
         {\"cmd\":\"metrics\"}\n\
         {\"cmd\":\"shutdown\"}\n",
    );
    let metrics = lines[3].get("metrics").unwrap();
    let wal = metrics.get("wal_stats").unwrap();
    assert_eq!(wal.get("policy").unwrap().as_str(), Some("always"));
    assert_eq!(wal.get("appends").unwrap().as_u64(), Some(2));
    assert_eq!(wal.get("fsyncs").unwrap().as_u64(), Some(2));
    assert_eq!(wal.get("last_seq").unwrap().as_u64(), Some(2));
    assert!(wal.get("appended_bytes").unwrap().as_u64().unwrap() > 0);
    // Store counters surface in the shared observability registry too.
    assert_eq!(
        metrics
            .get("counters")
            .unwrap()
            .get("wal_appends")
            .unwrap()
            .as_u64(),
        Some(2)
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_lock_refused_and_stale_lock_reclaimed() {
    let dir = tdir("lock");
    let mut a = fresh_state();
    let (held, _) =
        StateStore::open(&persist_cfg(&dir, 32), &mut a, &Recorder::disabled()).unwrap();
    // Second daemon against the same directory: refused while the first
    // lives.
    let mut b = fresh_state();
    let err = StateStore::open(&persist_cfg(&dir, 32), &mut b, &Recorder::disabled())
        .expect_err("locked directory accepted");
    assert!(err.to_string().contains("locked by a live daemon"));
    drop(held);

    // A lockfile from a dead process is stale and silently reclaimed.
    fs::write(dir.join("LOCK"), "4194303999\n").unwrap();
    let mut c = fresh_state();
    assert!(StateStore::open(&persist_cfg(&dir, 32), &mut c, &Recorder::disabled()).is_ok());
    fs::remove_dir_all(&dir).unwrap();
}
