//! Protocol fuzzing: the request decoder must map *every* byte line to
//! `Ok(Request)` or `Err(String)` — never a panic, never unbounded
//! recursion. The daemon feeds untrusted socket input straight into
//! [`nws_service::parse_request`], so this boundary is the one place where
//! hostile framing (overlong lines, truncated UTF-8 escapes, deeply nested
//! JSON, NUL bytes) reaches hand-rolled parsing code.

use nws_service::parse_request;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One arbitrary byte line, biased toward parser-relevant structure:
/// random bytes, JSON-ish fragments around valid commands, and hostile
/// escape/nesting shapes.
fn arb_line(rng: &mut StdRng) -> Vec<u8> {
    match rng.random_range(0u32..6) {
        // Pure noise, including invalid UTF-8 and NUL bytes.
        0 => {
            let len = rng.random_range(0usize..300);
            (0..len)
                .map(|_| rng.random_range(0u32..256) as u8)
                .collect()
        }
        // A valid command, mutated at one random byte.
        1 => {
            let mut line = b"{\"cmd\":\"set_theta\",\"theta\":90000}".to_vec();
            let idx = rng.random_range(0..line.len());
            line[idx] = rng.random_range(0u32..256) as u8;
            line
        }
        // Truncation of a valid command at a random point (mid-token,
        // mid-escape, mid-number).
        2 => {
            let line = b"{\"cmd\":\"add_od\",\"name\":\"X\\u00e9\",\"src\":\"UK\",\"dst\":\"DE\",\"size\":5000.5}";
            let keep = rng.random_range(0..=line.len());
            line[..keep].to_vec()
        }
        // Broken unicode escapes: `\u` followed by junk, lone surrogates.
        3 => {
            let fragments: [&[u8]; 5] = [
                br#"{"cmd":"\u"#,
                br#"{"cmd":"\uD800"}"#,
                br#"{"cmd":"\uD800A"}"#,
                br#"{"cmd":"\uZZZZ"}"#,
                br#"{"cmd":"ping\"#,
            ];
            fragments[rng.random_range(0..fragments.len())].to_vec()
        }
        // Deep nesting: the parser must refuse, not recurse to overflow.
        4 => {
            let depth = rng.random_range(1usize..5000);
            let open = if rng.random::<bool>() { b'[' } else { b'{' };
            let mut line = vec![open; depth];
            if rng.random::<bool>() {
                line.extend_from_slice(b"\"k\":");
            }
            line
        }
        // Overlong single tokens: huge strings and digit runs.
        _ => {
            let len = rng.random_range(1usize..5000);
            let mut line = b"{\"cmd\":\"".to_vec();
            let filler = if rng.random::<bool>() { b'9' } else { b'a' };
            line.extend(std::iter::repeat_n(filler, len));
            line
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Any byte line: the decoder answers, it never panics. (The call runs
    /// right here — a panic fails the test with the offending seed.)
    #[test]
    fn arbitrary_byte_lines_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let bytes = arb_line(&mut rng);
            let text = String::from_utf8_lossy(&bytes);
            let _ = parse_request(text.trim());
        }
    }

    /// Arbitrary printable text (the shim's `\PC*` equivalent) including
    /// multi-byte characters.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC*") {
        let _ = parse_request(text.trim());
    }
}

#[test]
fn pathological_lines_error_cleanly() {
    // 10_000-deep array / object bombs: must come back as errors well
    // before any stack limit.
    let array_bomb = "[".repeat(10_000);
    assert!(parse_request(&array_bomb).is_err());
    let mut object_bomb = String::new();
    for _ in 0..10_000 {
        object_bomb.push_str("{\"k\":");
    }
    assert!(parse_request(&object_bomb).is_err());

    // A 1 MiB line of digits: rejected (or parsed) without panicking.
    let overlong = format!(
        "{{\"cmd\":\"set_theta\",\"theta\":{}}}",
        "9".repeat(1 << 20)
    );
    assert!(parse_request(&overlong).is_err() || parse_request(&overlong).is_ok());

    // Non-UTF-8 bytes survive lossy conversion into an error.
    let junk = String::from_utf8_lossy(&[0xff, 0xfe, 0x80, 0x00, b'{']);
    assert!(parse_request(junk.trim()).is_err());

    // Valid JSON that is not an object, or an object with a non-string cmd.
    for line in [
        "42",
        "\"ping\"",
        "null",
        "[]",
        "{\"cmd\":7}",
        "{\"cmd\":null}",
        "{}",
    ] {
        assert!(parse_request(line).is_err(), "accepted: {line}");
    }
}
