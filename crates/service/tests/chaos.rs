//! The deterministic fault-injection chaos harness (DESIGN.md §11).
//!
//! Replays the canonical serve session (`fixtures/serve_session.jsonl`)
//! under hundreds of seeded fault schedules — store I/O faults, solver
//! budget exhaustion, injected handler panics — and asserts the serving
//! invariants the resilience layer promises:
//!
//! 1. **Zero panics escape**: `Daemon::run` returns `Ok` under every
//!    schedule (injected panics are caught and answered).
//! 2. **Every request is answered**: one response line per fixture line
//!    (ok, error, or overloaded), plus the hello line.
//! 3. **Convergence**: store faults touch only persistence, so the
//!    `query_rates` response is *byte-identical* to the fault-free run;
//!    solver perturbation schedules are compared against an identically
//!    perturbed fault-free baseline.
//!
//! Every schedule is a pure function of its seed: a failure report names
//! the seed, and re-running it locally reproduces the exact fault
//! sequence.

use std::fs;
use std::io::Cursor;
use std::path::PathBuf;

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_service::{
    Daemon, DaemonOptions, DaemonSummary, FaultPlan, PersistConfig, ServiceState, SolverChaos,
};

/// Store-fault schedules replayed against the clean baseline.
const STORE_FAULT_SEEDS: u64 = 140;
/// Store-fault × solver-budget-exhaustion schedules.
const PERTURBED_SEEDS: u64 = 48;
/// Store-fault × injected-handler-panic schedules.
const PANIC_SEEDS: u64 = 24;
/// Worker threads for the seed sweep.
const THREADS: u64 = 8;

fn fixture_script() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/serve_session.jsonl");
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn fresh_state(chaos: Option<SolverChaos>) -> ServiceState {
    let mut state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    if let Some(chaos) = chaos {
        state.set_chaos(chaos);
    }
    state
}

struct RunOutput {
    lines: Vec<String>,
    summary: DaemonSummary,
}

/// One full daemon session over `script`; panics (failing the test) if the
/// daemon errors out instead of serving through the schedule.
fn run_session(state: ServiceState, opts: DaemonOptions, script: &str, tag: &str) -> RunOutput {
    let mut daemon = Daemon::new(state, opts);
    let mut out = Vec::new();
    let summary = daemon
        .run(Cursor::new(script.to_string()), &mut out)
        .unwrap_or_else(|e| panic!("[{tag}] daemon must keep serving under faults: {e}"));
    let text = String::from_utf8(out).expect("daemon output is UTF-8");
    RunOutput {
        lines: text.lines().map(str::to_string).collect(),
        summary,
    }
}

/// The (single) `query_rates` response of a session — fully deterministic
/// payload (θ, objective, per-link rates), so byte comparison is exact.
fn query_rates_line<'r>(run: &'r RunOutput, tag: &str) -> &'r str {
    run.lines
        .iter()
        .find(|l| l.contains("\"cmd\":\"query_rates\""))
        .unwrap_or_else(|| panic!("[{tag}] query_rates unanswered"))
}

/// Invariants 1–2 for one completed session: every fixture line answered,
/// clean shutdown observed (the fixture ends with `shutdown`).
fn assert_all_answered(run: &RunOutput, request_lines: u64, tag: &str) {
    assert_eq!(
        run.summary.requests + run.summary.shed,
        request_lines,
        "[{tag}] every request must be handled or shed"
    );
    assert_eq!(
        run.lines.len() as u64,
        1 + request_lines,
        "[{tag}] hello + one response per request"
    );
    assert!(
        run.summary.clean_shutdown || run.summary.shed > 0,
        "[{tag}] fixture ends with shutdown"
    );
}

fn chaos_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nws-chaos-{tag}-{}", std::process::id()))
}

/// Runs `per_seed` over `0..count` across [`THREADS`] workers.
fn sweep(count: u64, per_seed: impl Fn(u64) + Sync) {
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let per_seed = &per_seed;
            scope.spawn(move || {
                let mut seed = worker;
                while seed < count {
                    per_seed(seed);
                    seed += THREADS;
                }
            });
        }
    });
}

#[test]
fn store_fault_schedules_never_change_served_rates() {
    let script = fixture_script();
    let request_lines = script.lines().count() as u64;
    // Fault-free baseline: no persistence, no chaos.
    let baseline = run_session(
        fresh_state(None),
        DaemonOptions::default(),
        &script,
        "baseline",
    );
    assert_all_answered(&baseline, request_lines, "baseline");
    assert!(baseline.summary.clean_shutdown);
    let baseline_rates = query_rates_line(&baseline, "baseline").to_string();

    sweep(STORE_FAULT_SEEDS, |seed| {
        let tag = format!("store-{seed}");
        let dir = chaos_dir(&tag);
        let _ = fs::remove_dir_all(&dir);
        let mut cfg = PersistConfig::new(&dir);
        cfg.fault = Some(FaultPlan::new(seed));
        let run = run_session(
            fresh_state(None),
            DaemonOptions {
                persist: Some(cfg),
                ..DaemonOptions::default()
            },
            &script,
            &tag,
        );
        assert_all_answered(&run, request_lines, &tag);
        assert!(run.summary.clean_shutdown, "[{tag}] clean shutdown");
        // Store faults may degrade *persistence*, never *serving*: the
        // rates answer is byte-identical to the fault-free run.
        assert_eq!(
            query_rates_line(&run, &tag),
            baseline_rates,
            "[{tag}] served rates diverged under store faults"
        );
        let hello = &run.lines[0];
        assert!(
            hello.contains("\"persistence\":\"durable\"")
                || hello.contains("\"persistence\":\"degraded\""),
            "[{tag}] hello reports persistence mode: {hello}"
        );
        let _ = fs::remove_dir_all(&dir);
    });
}

#[test]
fn perturbed_solver_schedules_agree_with_perturbed_baseline() {
    let script = fixture_script();
    let request_lines = script.lines().count() as u64;
    // One fault-free baseline per iteration cap: capping iterations
    // changes the served answer (degraded best-effort iterates), so the
    // comparison target must be perturbed identically.
    let caps = [0usize, 1, 2];
    let baselines: Vec<String> = caps
        .iter()
        .map(|&cap| {
            let tag = format!("perturbed-baseline-{cap}");
            let run = run_session(
                fresh_state(Some(SolverChaos::new().with_max_iters(cap))),
                DaemonOptions::default(),
                &script,
                &tag,
            );
            assert_all_answered(&run, request_lines, &tag);
            query_rates_line(&run, &tag).to_string()
        })
        .collect();

    sweep(PERTURBED_SEEDS, |seed| {
        let cap = caps[(seed % caps.len() as u64) as usize];
        let tag = format!("perturbed-{seed}-cap{cap}");
        let dir = chaos_dir(&tag);
        let _ = fs::remove_dir_all(&dir);
        let mut cfg = PersistConfig::new(&dir);
        cfg.fault = Some(FaultPlan::new(seed));
        let run = run_session(
            fresh_state(Some(SolverChaos::new().with_max_iters(cap))),
            DaemonOptions {
                persist: Some(cfg),
                ..DaemonOptions::default()
            },
            &script,
            &tag,
        );
        assert_all_answered(&run, request_lines, &tag);
        assert!(run.summary.clean_shutdown, "[{tag}] clean shutdown");
        // Degraded solves still answer deterministically: store faults on
        // top of an exhausted budget must not move the served rates.
        assert_eq!(
            query_rates_line(&run, &tag),
            baselines[(seed % caps.len() as u64) as usize],
            "[{tag}] degraded serving diverged under store faults"
        );
        // The budget cap really bit: the hello resolve is degraded.
        assert!(
            run.lines[0].contains("\"degraded\":true"),
            "[{tag}] capped startup solve must be degraded: {}",
            run.lines[0]
        );
        let _ = fs::remove_dir_all(&dir);
    });
}

#[test]
fn injected_panics_are_answered_and_the_session_completes() {
    let script = fixture_script();
    let request_lines = script.lines().count() as u64;
    // The fixture triggers re-solves #1..=#6 after the startup solve #0;
    // panicking inside any of them must cost exactly one error response.
    sweep(PANIC_SEEDS, |seed| {
        let panic_at = 1 + (seed % 6);
        let tag = format!("panic-{seed}-at{panic_at}");
        let dir = chaos_dir(&tag);
        let _ = fs::remove_dir_all(&dir);
        let mut cfg = PersistConfig::new(&dir);
        cfg.fault = Some(FaultPlan::new(seed));
        let run = run_session(
            fresh_state(Some(SolverChaos::new().with_panic_on_resolve(panic_at))),
            DaemonOptions {
                persist: Some(cfg),
                ..DaemonOptions::default()
            },
            &script,
            &tag,
        );
        assert_all_answered(&run, request_lines, &tag);
        assert!(run.summary.clean_shutdown, "[{tag}] clean shutdown");
        let panicked: Vec<&String> = run
            .lines
            .iter()
            .filter(|l| l.contains("internal panic"))
            .collect();
        assert_eq!(
            panicked.len(),
            1,
            "[{tag}] exactly one request absorbs the panic"
        );
        assert!(
            panicked[0].contains("\"ok\":false"),
            "[{tag}] panic answered as an error: {}",
            panicked[0]
        );
        // The daemon still answers rates afterwards.
        query_rates_line(&run, &tag);
        let _ = fs::remove_dir_all(&dir);
    });
}
