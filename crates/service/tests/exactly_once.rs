//! Exactly-once mutation semantics: the daemon's `request_id` dedup
//! window must turn *redelivery* (the client retrying after a lost ack)
//! into *replay* — one state change, byte-identical acknowledgements —
//! both within one process and across a crash + WAL recovery.

use std::fs;
use std::io::Cursor;
use std::path::{Path, PathBuf};

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_obs::Recorder;
use nws_service::json::{parse, Json};
use nws_service::{
    Daemon, DaemonOptions, DaemonSummary, FsyncPolicy, PersistConfig, Request, ServiceState,
    StateStore,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn fresh_state() -> ServiceState {
    ServiceState::from_task(&janet_task(), PlacementConfig::default())
}

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nws-dedup-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn persist_cfg(dir: &Path) -> PersistConfig {
    PersistConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Always,
        snapshot_every: 32,
        fault: None,
    }
}

/// Runs `script` through the single-stream loop; returns the response
/// lines (index 0 = hello) and the daemon summary.
fn run_script(script: &str, persist: Option<PersistConfig>) -> (Vec<Json>, DaemonSummary) {
    let mut daemon = Daemon::new(
        fresh_state(),
        DaemonOptions {
            persist,
            ..DaemonOptions::default()
        },
    );
    let mut out = Vec::new();
    let summary = daemon
        .run(Cursor::new(script.to_string()), &mut out)
        .expect("run");
    let lines = String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(|l| parse(l).expect("valid JSON response line"))
        .collect();
    (lines, summary)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: delivering the same `request_id` N extra times (with
    /// reads interleaved at random) yields exactly one state change per
    /// unique id — `resolves` counts startup + unique mutations only —
    /// and every redelivery is answered with the byte-identical ack.
    #[test]
    fn duplicate_delivery_is_one_state_change_and_identical_acks(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_mut = rng.random_range(1usize..5);
        // (line, id it carries) in delivery order.
        let mut deliveries: Vec<(String, Option<String>)> = Vec::new();
        let mut dup_total = 0u64;
        for i in 0..n_mut {
            let size: f64 = rng.random_range(1.0e6..2.0e7);
            let id = format!("k{seed:016x}-{i}");
            let line = format!(
                "{{\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":{size:.0},\"request_id\":\"{id}\"}}"
            );
            deliveries.push((line.clone(), Some(id.clone())));
            for _ in 0..rng.random_range(1usize..3) {
                if rng.random::<bool>() {
                    deliveries.push(("{\"cmd\":\"query_rates\"}".to_string(), None));
                }
                deliveries.push((line.clone(), Some(id.clone())));
                dup_total += 1;
            }
        }
        deliveries.push(("{\"cmd\":\"metrics\"}".to_string(), None));
        deliveries.push(("{\"cmd\":\"shutdown\"}".to_string(), None));
        let script: String = deliveries
            .iter()
            .map(|(line, _)| format!("{line}\n"))
            .collect();
        let (lines, summary) = run_script(&script, None);

        // Response i+1 answers delivery i (line 0 is hello).
        let mut ack_by_id: HashMap<&str, String> = HashMap::new();
        for (i, (_, id)) in deliveries.iter().enumerate() {
            let response = &lines[i + 1];
            prop_assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "delivery {} rejected: {}", i, response.encode()
            );
            let Some(id) = id else { continue };
            prop_assert_eq!(
                response.get("request_id").and_then(|v| v.as_str()),
                Some(id.as_str()),
                "response must echo the idempotency key"
            );
            let encoded = response.encode();
            match ack_by_id.get(id.as_str()) {
                None => {
                    ack_by_id.insert(id, encoded);
                }
                Some(original) => prop_assert_eq!(
                    original,
                    &encoded,
                    "redelivery of {} must replay the identical ack", id
                ),
            }
        }
        // One startup solve + one solve per *unique* mutation: duplicates
        // never touched the state machine.
        prop_assert_eq!(summary.resolves, (1 + n_mut) as u64);
        let metrics = &lines[deliveries.len() - 1];
        prop_assert_eq!(
            counter(metrics, "daemon_dedup_hits_total"),
            dup_total,
            "every duplicate delivery is a dedup hit"
        );
    }
}

/// The dedup window survives a crash: ids journaled with their WAL
/// records are recovered, and a post-restart redelivery gets a
/// `"duplicate": true` ack instead of a second application.
#[test]
fn dedup_survives_crash_recovery() {
    let dir = tdir("crash");
    let key = "crash-key-1";
    // Phase 1: a live process journals one keyed mutation, then dies
    // without the clean-exit snapshot.
    {
        let mut live = fresh_state();
        let (mut store, report) =
            StateStore::open(&persist_cfg(&dir), &mut live, &Recorder::disabled()).unwrap();
        assert!(report.replayed_request_ids.is_empty());
        live.resolve(false).unwrap(); // the daemon's startup solve
        let req = Request::UpdateDemand {
            od: "JANET-NL".into(),
            size: 5.0e6,
        };
        live.apply_event(&req, false).unwrap();
        store.record_applied(&req, &live, &[key]).unwrap();
        drop(store); // crash: no exit snapshot
    }
    // Recovery alone reports the journaled id.
    {
        let mut state = fresh_state();
        let (_store, report) =
            StateStore::open(&persist_cfg(&dir), &mut state, &Recorder::disabled()).unwrap();
        assert_eq!(report.replayed_request_ids, vec![key.to_string()]);
    }
    // Phase 2: a restarted daemon seeds its window from recovery. The
    // retried mutation (same key, even a *different* size — the client
    // retransmitting a mutated buffer must still not double-apply) gets a
    // duplicate ack; a genuinely new key still works.
    let script = format!(
        "{{\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":9000000,\"request_id\":\"{key}\"}}\n\
         {{\"cmd\":\"update_demand\",\"od\":\"JANET-DE\",\"size\":7000000,\"request_id\":\"fresh-1\"}}\n\
         {{\"cmd\":\"shutdown\"}}\n"
    );
    let (lines, _) = run_script(&script, Some(persist_cfg(&dir)));
    let replayed = &lines[1];
    assert_eq!(replayed.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        replayed.get("duplicate").and_then(Json::as_bool),
        Some(true),
        "recovered id must answer a duplicate ack, got {}",
        replayed.encode()
    );
    assert_eq!(
        replayed.get("request_id").and_then(|v| v.as_str()),
        Some(key)
    );
    let fresh = &lines[2];
    assert_eq!(fresh.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        fresh.get("duplicate").is_none(),
        "a new id is not a duplicate"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Error responses are not remembered: a mutation that *fails* may be
/// retried with the same id and succeed once the obstacle is gone.
#[test]
fn failed_mutations_are_not_deduped() {
    // An unknown OD fails; adding the OD then retrying the same id must
    // genuinely apply (not replay the old error).
    let script = "{\"cmd\":\"update_demand\",\"od\":\"NOPE\",\"size\":1000000,\"request_id\":\"r1\"}\n\
                  {\"cmd\":\"add_od\",\"name\":\"NOPE\",\"src\":\"UK\",\"dst\":\"DE\",\"size\":1000000,\"request_id\":\"r2\"}\n\
                  {\"cmd\":\"update_demand\",\"od\":\"NOPE\",\"size\":2000000,\"request_id\":\"r1\"}\n\
                  {\"cmd\":\"shutdown\"}\n";
    let (lines, _) = run_script(script, None);
    assert_eq!(lines[1].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(lines[2].get("ok").and_then(Json::as_bool), Some(true));
    let retried = &lines[3];
    assert_eq!(
        retried.get("ok").and_then(Json::as_bool),
        Some(true),
        "retry after a semantic error must really run: {}",
        retried.encode()
    );
    assert!(
        retried.get("error").is_none(),
        "the old error must not be replayed"
    );
}
