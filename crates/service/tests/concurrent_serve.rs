//! Concurrent-client integration tests for the multi-connection serving
//! layer (`Daemon::serve`): snapshot consistency under writer pressure,
//! lock-free reads staying off the queue, coalescing equivalence and its
//! one-rebuild-per-window counter contract, drain-on-shutdown across
//! connections, and the Unix-socket transport sharing the same machinery.

use nws_core::scenarios::janet_task;
use nws_core::PlacementConfig;
use nws_service::json::{parse, Json};
use nws_service::{Daemon, DaemonOptions, NetOptions, Server, ServiceState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

/// Boots a daemon on an ephemeral loopback port; returns the address and
/// the join handle yielding the daemon summary.
fn boot_tcp(
    opts: DaemonOptions,
) -> (
    SocketAddr,
    std::thread::JoinHandle<nws_service::DaemonSummary>,
) {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, opts);
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        ..NetOptions::default()
    })
    .expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp addr");
    let handle = std::thread::spawn(move || daemon.serve(server).expect("serve"));
    (addr, handle)
}

/// A JSON-lines client over any stream transport.
struct Client<S: Read + Write> {
    writer: S,
    lines: BufReader<S>,
    buf: String,
}

impl Client<TcpStream> {
    fn connect(addr: SocketAddr) -> Client<TcpStream> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        let lines = BufReader::new(stream.try_clone().expect("clone"));
        let mut client = Client {
            writer: stream,
            lines,
            buf: String::new(),
        };
        client.expect_hello();
        client
    }
}

impl<S: Read + Write> Client<S> {
    fn expect_hello(&mut self) {
        let hello = self.read_response().expect("hello line");
        assert_eq!(hello.get("cmd").and_then(|c| c.as_str()), Some("hello"));
        assert!(hello.get("epoch").and_then(Json::as_u64).unwrap_or(0) >= 1);
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    /// `None` on EOF (connection closed by the daemon).
    fn read_response(&mut self) -> Option<Json> {
        self.buf.clear();
        let n = self.lines.read_line(&mut self.buf).expect("read line");
        if n == 0 {
            return None;
        }
        Some(parse(self.buf.trim()).expect("daemon emits valid JSON"))
    }

    fn round_trip(&mut self, line: &str) -> Json {
        self.send(line);
        self.read_response().expect("response before EOF")
    }
}

/// Extracts a counter from a `metrics` response payload.
fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// N writers + M readers with seeded interleavings: every `query_rates`
/// response must carry a rates vector from a single committed epoch —
/// all reads observing the same epoch see byte-identical monitors (never
/// a torn mix), and each connection's observed epochs never go backwards.
#[test]
fn concurrent_reads_see_single_epoch_snapshots() {
    let (addr, daemon) = boot_tcp(DaemonOptions::default());
    const WRITERS: usize = 3;
    const READERS: usize = 4;
    const UPDATES_PER_WRITER: usize = 8;
    // Startup commit is epoch 1; every update commits one more.
    const FINAL_EPOCH: u64 = 1 + (WRITERS * UPDATES_PER_WRITER) as u64;
    let barrier = std::sync::Barrier::new(WRITERS + READERS);
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(w as u64 + 1);
                let mut client = Client::connect(addr);
                barrier.wait(); // all readers have sampled epoch 1 first
                for _ in 0..UPDATES_PER_WRITER {
                    let size: f64 = rng.random_range(1.0e6..2.0e7);
                    let response = client.round_trip(&format!(
                        "{{\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":{size:.0}}}"
                    ));
                    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                    assert!(response.get("epoch").and_then(Json::as_u64).is_some());
                }
            });
        }
        for r in 0..READERS {
            let tx = tx.clone();
            let barrier = &barrier;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xbeef + r as u64);
                let mut client = Client::connect(addr);
                let mut last_epoch = 0u64;
                // First sample before any writer commits, then keep
                // sampling until the last commit is observed — so every
                // reader provably reads across the whole commit sequence,
                // with a seeded jitter in the interleaving.
                let mut first = true;
                loop {
                    if !first && rng.random_range(0..4) == 0 {
                        std::thread::yield_now();
                    }
                    let response = client.round_trip("{\"cmd\":\"query_rates\"}");
                    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
                    let epoch = response.get("epoch").and_then(Json::as_u64).expect("epoch");
                    assert!(
                        epoch >= last_epoch,
                        "reader observed epoch regression: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    let monitors = response.get("monitors").expect("monitors").encode();
                    tx.send((epoch, monitors)).expect("collect");
                    if first {
                        assert_eq!(epoch, 1, "no commits before the barrier");
                        first = false;
                        barrier.wait();
                    }
                    if epoch >= FINAL_EPOCH {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    let mut by_epoch: HashMap<u64, String> = HashMap::new();
    let mut reads = 0u64;
    for (epoch, monitors) in rx {
        reads += 1;
        match by_epoch.get(&epoch) {
            None => {
                by_epoch.insert(epoch, monitors);
            }
            Some(seen) => assert_eq!(
                seen, &monitors,
                "two reads of epoch {epoch} saw different rates (torn snapshot)"
            ),
        }
    }
    assert!(reads >= (READERS * 2) as u64);
    assert!(
        by_epoch.contains_key(&1) && by_epoch.contains_key(&FINAL_EPOCH),
        "reads span the full commit sequence"
    );

    let mut control = Client::connect(addr);
    let metrics = control.round_trip("{\"cmd\":\"metrics\"}");
    // Every query_rates (plus this metrics scrape and the per-connection
    // hello overhead-free reads) was served lock-free; only mutations and
    // the shutdown enqueue.
    assert!(counter(&metrics, "daemon_reads_served_lockfree_total") >= reads);
    assert_eq!(
        counter(&metrics, "daemon_jobs_enqueued_total"),
        (WRITERS * UPDATES_PER_WRITER) as u64,
        "read-only commands must never enqueue"
    );
    control.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.connections, (WRITERS + READERS + 1) as u64);
    assert!(summary.reads_lockfree >= reads);
}

/// A coalescing window of K updates triggers exactly one epoch rebuild and
/// one warm re-solve (counter-asserted), every buffered request is
/// acknowledged with the shared batch payload, and the final rates are
/// byte-identical to the uncoalesced replay of the merged updates (one
/// `update_demands` through the single-stream loop — same committed demand
/// state, same single warm solve).
///
/// The serial one-at-a-time replay commits the *same demand state* but
/// re-solves K times, and the placement problem has near-degenerate optima:
/// distinct KKT-certified solutions whose objectives agree to ~1e-3 while
/// individual link rates (even active sets) differ. So the byte-level
/// contract is against the merged batch, and the serial replay is held to
/// objective equivalence.
#[test]
fn coalescing_is_one_rebuild_and_matches_uncoalesced_replay() {
    const K: usize = 10;
    let updates: Vec<(&str, f64)> = vec![
        ("JANET-NL", 5.0e6),
        ("JANET-FR", 7.0e6),
        ("JANET-NL", 6.0e6), // last writer wins for JANET-NL
        ("JANET-DE", 8.0e6),
        ("JANET-FR", 6.5e6), // last writer wins for JANET-FR
        ("JANET-NL", 6.2e6),
        ("JANET-DE", 8.5e6),
        ("JANET-NL", 6.4e6),
        ("JANET-FR", 6.6e6),
        ("JANET-DE", 8.2e6),
    ];
    assert_eq!(updates.len(), K);

    // Coalesced run: all K updates written in one burst, inside a wide
    // window; they must flush as one batch.
    let (addr, daemon) = boot_tcp(DaemonOptions {
        coalesce_ms: 200,
        ..DaemonOptions::default()
    });
    let mut client = Client::connect(addr);
    let before = client.round_trip("{\"cmd\":\"metrics\"}");
    for (od, size) in &updates {
        client.send(&format!(
            "{{\"cmd\":\"update_demand\",\"od\":\"{od}\",\"size\":{size:.0}}}"
        ));
    }
    let mut epochs = Vec::new();
    for _ in 0..K {
        let response = client.read_response().expect("ack");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            response.get("coalesced").and_then(Json::as_u64),
            Some(K as u64),
            "every buffered request reports the batch size"
        );
        epochs.push(response.get("epoch").and_then(Json::as_u64).expect("epoch"));
    }
    assert!(
        epochs.windows(2).all(|w| w[0] == w[1]),
        "one batch commits one epoch, got {epochs:?}"
    );
    let after = client.round_trip("{\"cmd\":\"metrics\"}");
    assert_eq!(
        counter(&after, "daemon_coalesce_flushes_total")
            - counter(&before, "daemon_coalesce_flushes_total"),
        1,
        "K updates in one window = exactly one flush"
    );
    assert_eq!(
        counter(&after, "daemon_coalesced_updates_total")
            - counter(&before, "daemon_coalesced_updates_total"),
        K as u64
    );
    assert_eq!(
        counter(&after, "state_epoch_rebuilds_total")
            - counter(&before, "state_epoch_rebuilds_total"),
        1,
        "K coalesced updates = exactly one epoch rebuild"
    );
    let stats = client.round_trip("{\"cmd\":\"stats\"}");
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("resolves"))
            .and_then(Json::as_f64),
        Some(2.0),
        "startup solve + exactly one coalesced re-solve"
    );
    let coalesced_rates = client.round_trip("{\"cmd\":\"query_rates\"}");
    client.round_trip("{\"cmd\":\"shutdown\"}");
    daemon.join().expect("daemon thread");

    // Uncoalesced replay of the merged batch through the single-stream
    // loop: last-writer-wins per OD, first-seen order.
    let mut merged: Vec<(&str, f64)> = Vec::new();
    for (od, size) in &updates {
        match merged.iter_mut().find(|(o, _)| o == od) {
            Some((_, s)) => *s = *size,
            None => merged.push((od, *size)),
        }
    }
    let items: Vec<String> = merged
        .iter()
        .map(|(od, size)| format!("[\"{od}\",{size:.0}]"))
        .collect();
    let script = format!(
        "{{\"cmd\":\"update_demands\",\"updates\":[{}]}}\n{{\"cmd\":\"query_rates\"}}\n{{\"cmd\":\"shutdown\"}}\n",
        items.join(",")
    );
    let batch_rates = run_script_line(&script, 1);
    assert_eq!(
        coalesced_rates.get("monitors").unwrap().encode(),
        batch_rates.get("monitors").unwrap().encode(),
        "coalesced flush must be byte-identical to the merged-batch replay"
    );
    assert_eq!(
        coalesced_rates.get("objective").unwrap().encode(),
        batch_rates.get("objective").unwrap().encode()
    );

    // Serial one-at-a-time replay: same committed demand state, K solver
    // paths; objectives of the certified optima must agree tightly.
    let serial_script: String = updates
        .iter()
        .map(|(od, size)| {
            format!("{{\"cmd\":\"update_demand\",\"od\":\"{od}\",\"size\":{size:.0}}}\n")
        })
        .chain([
            "{\"cmd\":\"query_rates\"}\n".to_string(),
            "{\"cmd\":\"shutdown\"}\n".to_string(),
        ])
        .collect();
    let serial_rates = run_script_line(&serial_script, K as u64);
    let a = coalesced_rates
        .get("objective")
        .and_then(Json::as_f64)
        .expect("objective");
    let b = serial_rates
        .get("objective")
        .and_then(Json::as_f64)
        .expect("objective");
    assert!(
        ((a - b) / a.abs().max(1e-12)).abs() < 1e-2,
        "coalesced vs serial objectives diverged: {a} vs {b}"
    );
}

/// Runs `script` through the single-stream loop and returns the response
/// to the request at (1-based) position `index_after_updates + 1`, i.e.
/// the `query_rates` line (response 0 is `hello`).
fn run_script_line(script: &str, updates: u64) -> Json {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let mut out = Vec::new();
    daemon
        .run(Cursor::new(script.to_string()), &mut out)
        .expect("run");
    let text = String::from_utf8(out).expect("utf8");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| parse(l).expect("valid JSON"))
        .collect();
    for ack in &lines[1..=updates as usize] {
        assert_eq!(
            ack.get("ok").and_then(Json::as_bool),
            Some(true),
            "replay update rejected: {}",
            ack.encode()
        );
    }
    let rates = lines[(updates + 1) as usize].clone();
    assert_eq!(
        rates.get("cmd").and_then(|c| c.as_str()),
        Some("query_rates")
    );
    rates
}

/// `shutdown` on one connection drains and closes all connections: peers
/// that already got their answers observe EOF (not an error), the issuer
/// gets its `bye`, and the summary reports a clean shutdown with every
/// connection counted.
#[test]
fn shutdown_from_one_connection_closes_all() {
    let (addr, daemon) = boot_tcp(DaemonOptions::default());
    const PEERS: usize = 4;
    let mut peers: Vec<Client<TcpStream>> = (0..PEERS).map(|_| Client::connect(addr)).collect();
    // Every peer does real work first (mixed read + mutate), so the drain
    // path runs against connections with live history.
    for (i, peer) in peers.iter_mut().enumerate() {
        let response = peer.round_trip("{\"cmd\":\"ping\"}");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let response = peer.round_trip(&format!(
            "{{\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":{}}}",
            2_000_000 + i
        ));
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }
    let mut issuer = Client::connect(addr);
    let bye = issuer.round_trip("{\"cmd\":\"shutdown\"}");
    assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
    // Every other connection sees a clean EOF.
    for peer in &mut peers {
        assert!(
            peer.read_response().is_none(),
            "peer must see EOF after a cross-connection shutdown"
        );
    }
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.connections, (PEERS + 1) as u64);
    // New connections are refused after shutdown (listener closed).
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may still accept into the dead listener's backlog; a
            // read then observes immediate EOF.
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = String::new();
            BufReader::new(s)
                .read_line(&mut buf)
                .map_or(true, |n| n == 0)
        }
    );
}

/// The connection cap: the (max+1)-th concurrent connection gets one
/// `too_many_connections` error line and is closed; after a slot frees it
/// can connect again.
#[test]
fn connection_cap_rejects_excess_connections() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        max_conns: 2,
        ..NetOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    let mut a = Client::connect(addr);
    let _b = Client::connect(addr);
    // Third connection: rejected with an explicit error line, then EOF.
    let rejected = TcpStream::connect(addr).expect("connect");
    rejected
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut lines = BufReader::new(rejected);
    let mut line = String::new();
    lines.read_line(&mut line).expect("rejection line");
    let response = parse(line.trim()).expect("valid JSON");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("error").and_then(|e| e.as_str()),
        Some("too_many_connections")
    );
    line.clear();
    assert_eq!(lines.read_line(&mut line).expect("eof"), 0);

    a.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
}

/// The Unix-socket transport runs through the same multi-connection
/// machinery as TCP: two concurrent connections are served simultaneously
/// (an idle first connection cannot starve the second), which the old
/// one-accept-at-a-time socket path could not do.
#[cfg(unix)]
#[test]
fn unix_socket_serves_connections_concurrently() {
    use std::os::unix::net::UnixStream;
    let path = std::env::temp_dir().join(format!("nws_serve_test_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        unix: Some(path.to_string_lossy().into_owned()),
        ..NetOptions::default()
    })
    .expect("bind unix socket");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    let connect = |path: &std::path::Path| {
        let stream = UnixStream::connect(path).expect("connect unix");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let lines = BufReader::new(stream.try_clone().expect("clone"));
        let mut client = Client {
            writer: stream,
            lines,
            buf: String::new(),
        };
        client.expect_hello();
        client
    };
    // First connection stays open and idle...
    let mut idle = connect(&path);
    // ...while a second one is served concurrently (would deadlock on the
    // old single-accept loop).
    let mut active = connect(&path);
    for _ in 0..5 {
        let response = active.round_trip("{\"cmd\":\"query_rates\"}");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    }
    // The idle connection still works too.
    let response = idle.round_trip("{\"cmd\":\"ping\"}");
    assert_eq!(response.get("pong").and_then(Json::as_bool), Some(true));

    active.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.connections, 2);
    assert!(!path.exists(), "socket file removed on shutdown");
}

/// Idle connections past `--idle-timeout-ms` are dropped; busy ones are
/// not.
#[test]
fn idle_timeout_drops_stale_connections() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        idle_timeout_ms: 200,
        ..NetOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    let mut busy = Client::connect(addr);
    let mut idle = Client::connect(addr);
    // Stay busy past the other connection's idle deadline.
    for _ in 0..10 {
        busy.round_trip("{\"cmd\":\"ping\"}");
        std::thread::sleep(Duration::from_millis(40));
    }
    // The idle connection was reaped: next read sees EOF.
    assert!(idle.read_response().is_none(), "idle connection must drop");
    // The busy one still serves.
    let response = busy.round_trip("{\"cmd\":\"query_rates\"}");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    busy.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
}

/// Half-open client, variant 1: the peer shuts down its *write* side while
/// a mutation's Pending reply is still in flight. The daemon must answer
/// on the intact read half, then tear the pair down on the EOF and release
/// the slot — `serve` returns (no leaked connection threads) and the
/// freed slot is reusable.
#[test]
fn half_open_write_shutdown_with_pending_reply() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        max_conns: 2, // tight cap: a leaked slot would block the control conn
        ..NetOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    let mut half_open = Client::connect(addr);
    // Enqueue a mutation (Pending reply), then close only our write side.
    half_open.send("{\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":3000000}");
    half_open
        .writer
        .shutdown(std::net::Shutdown::Write)
        .expect("half close");
    // The answer still arrives on the read half.
    let ack = half_open
        .read_response()
        .expect("pending reply survives half-close");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    // After the reply the daemon sees our EOF and closes its side too.
    assert!(
        half_open.read_response().is_none(),
        "clean close after drain"
    );

    // The slot was released: with max_conns=2 a fresh pair still fits.
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    assert_eq!(
        b.round_trip("{\"cmd\":\"ping\"}")
            .get("pong")
            .and_then(Json::as_bool),
        Some(true)
    );
    drop(b);
    a.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon joins: no thread leak");
    assert!(summary.clean_shutdown);
    assert_eq!(summary.connections, 3);
}

/// Half-open client, variant 2: a shutdown from another connection races
/// writer threads that are mid-`write_all` to peers who stopped reading.
/// The bounded write timeout turns those stalls into evictions, so the
/// drain always terminates and `serve` returns.
#[test]
fn shutdown_races_stalled_writers_and_terminates() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        write_timeout_ms: 300,
        ..NetOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    // Two peers pipeline reads and never read responses, wedging the
    // daemon's writers against full socket buffers.
    let stalled: Vec<TcpStream> = (0..2)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_write_timeout(Some(Duration::from_millis(100)))
                .unwrap();
            let mut w = s.try_clone().unwrap();
            // Write until our own send buffer jams (daemon stopped reading)
            // or a generous line budget runs out.
            for _ in 0..200_000 {
                if w.write_all(b"{\"cmd\":\"query_rates\"}\n").is_err() {
                    break;
                }
            }
            s // keep the socket open, still not reading
        })
        .collect();

    let mut issuer = Client::connect(addr);
    let bye = issuer.round_trip("{\"cmd\":\"shutdown\"}");
    assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
    // The stalled writers must not pin the drain: serve returns promptly.
    let summary = daemon
        .join()
        .expect("serve returned despite stalled writers");
    assert!(summary.clean_shutdown);
    drop(stalled);
}

/// Live slow-client eviction: a peer floods pipelined reads and never
/// drains its responses. Once one response write stalls past
/// `--write-timeout-ms`, the daemon evicts the connection (counter
/// `daemon_slow_client_evictions_total`), while other connections keep
/// being served unaffected.
#[test]
fn slow_client_is_evicted_and_counted() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        write_timeout_ms: 250,
        ..NetOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    // The slow client: pipelines query_rates forever, reads nothing.
    let slow = TcpStream::connect(addr).expect("connect");
    slow.set_write_timeout(Some(Duration::from_millis(100)))
        .expect("write timeout");
    let mut slow_writer = slow.try_clone().expect("clone");
    let flood = std::thread::spawn(move || {
        for _ in 0..500_000 {
            if slow_writer
                .write_all(b"{\"cmd\":\"query_rates\"}\n")
                .is_err()
            {
                break; // our own buffer jammed: the pipeline is saturated
            }
        }
    });

    // A healthy control connection polls metrics for the eviction.
    let mut control = Client::connect(addr);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut evictions = 0;
    while std::time::Instant::now() < deadline {
        let metrics = control.round_trip("{\"cmd\":\"metrics\"}");
        evictions = counter(&metrics, "daemon_slow_client_evictions_total");
        if evictions >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(evictions >= 1, "slow client was never evicted");
    flood.join().expect("flood thread");
    drop(slow);

    // The healthy connection is unaffected by its neighbour's eviction.
    let response = control.round_trip("{\"cmd\":\"query_rates\"}");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    control.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
}

/// Request lines are capped: a client streaming a multi-MiB line gets a
/// typed `line too long` error (counted) and the connection is closed —
/// the daemon's buffer never grows unboundedly.
#[test]
fn oversized_request_line_is_rejected_and_closed() {
    let (addr, daemon) = boot_tcp(DaemonOptions::default());
    let mut hog = Client::connect(addr);
    // 2 MiB of prefix with no newline: past the 1 MiB cap mid-stream.
    let chunk = vec![b'a'; 64 * 1024];
    for _ in 0..32 {
        if hog.writer.write_all(&chunk).is_err() {
            break; // daemon may already have torn the connection down
        }
    }
    let _ = hog.writer.flush();
    let response = hog.read_response().expect("typed error before close");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("error").and_then(|e| e.as_str()),
        Some("line too long")
    );
    assert!(
        response
            .get("max_line_bytes")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1 << 20
    );
    assert!(
        hog.read_response().is_none(),
        "connection closed after the error"
    );

    let mut control = Client::connect(addr);
    let metrics = control.round_trip("{\"cmd\":\"metrics\"}");
    assert_eq!(counter(&metrics, "daemon_line_too_long_total"), 1);
    control.round_trip("{\"cmd\":\"shutdown\"}");
    daemon.join().expect("daemon thread");
}

/// Idle-timeout drops and hard socket errors are counted separately:
/// reaping an idle connection bumps `daemon_conn_idle_timeouts_total`
/// and leaves `daemon_conn_io_errors_total` untouched.
#[test]
fn idle_timeouts_and_io_errors_are_distinguished() {
    let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
    let mut daemon = Daemon::new(state, DaemonOptions::default());
    let server = Server::bind(&NetOptions {
        tcp: Some("127.0.0.1:0".to_string()),
        idle_timeout_ms: 150,
        ..NetOptions::default()
    })
    .expect("bind");
    let addr = server.tcp_addr().expect("addr");
    let daemon = std::thread::spawn(move || daemon.serve(server).expect("serve"));

    let mut idle = Client::connect(addr);
    let mut busy = Client::connect(addr);
    // Keep one connection busy past the other's idle deadline.
    for _ in 0..8 {
        busy.round_trip("{\"cmd\":\"ping\"}");
        std::thread::sleep(Duration::from_millis(40));
    }
    assert!(idle.read_response().is_none(), "idle connection reaped");
    let metrics = busy.round_trip("{\"cmd\":\"metrics\"}");
    assert_eq!(
        counter(&metrics, "daemon_conn_idle_timeouts_total"),
        1,
        "the reaped connection counts as an idle timeout"
    );
    assert_eq!(
        counter(&metrics, "daemon_conn_io_errors_total"),
        0,
        "an idle reap is not a socket error"
    );
    busy.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = daemon.join().expect("daemon thread");
    assert!(summary.clean_shutdown);
}
