//! The lock-free read path: an immutable [`ReadSnapshot`] swapped
//! atomically by the event loop after every committed mutation, from which
//! connection threads answer `query_rates` / `stats` / `health` /
//! `metrics` / `ping` without ever touching the bounded solve queue.
//!
//! The swap cell is an `arc-swap`-style [`SnapshotCell`]: readers clone an
//! `Arc` under a momentary `RwLock` read guard (no vendored `arc-swap`
//! crate, and this crate forbids `unsafe`), the single publisher swaps the
//! pointer under the write guard. Reads are wait-free with respect to the
//! event loop and every solve: a read never enqueues, never blocks on a
//! mutation, and two readers never contend beyond the pointer clone. The
//! `daemon_reads_served_lockfree_total` counter certifies exactly this —
//! under a read-heavy load it tracks the read count while the queue-depth
//! gauge stays driven by mutations alone.
//!
//! Epochs are commit epochs: the event loop bumps the epoch when (and only
//! when) a state mutation commits, so every rates vector a reader observes
//! belongs to one committed solve — never a torn mix. [`SnapshotCell::
//! publish`] refuses epoch regressions outright; republishing the same
//! epoch (fresher counters, same state) is allowed.

use crate::daemon::{metrics_json, retry_after_ms};
use crate::json::{obj, Json};
use crate::protocol::Request;
use crate::sli::RateWindows;
use nws_obs::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Point-in-time, immutable serving state published by the event loop.
/// Everything needed to answer the read-only commands is precomputed here;
/// the only live overlays are the queue/shed atomics and the SLI windows.
#[derive(Debug, Clone)]
pub struct ReadSnapshot {
    /// Commit epoch: bumped on every committed state mutation (startup
    /// solve = 1). Monotone for the life of the daemon.
    pub epoch: u64,
    /// Current sampling budget θ.
    pub theta: f64,
    /// Objective of the installed configuration, if any.
    pub objective: Option<f64>,
    /// Prebuilt `monitors` array (active links with their sampling rates).
    pub monitors: Json,
    /// Tracked OD count (for per-connection `hello` lines).
    pub ods: usize,
    /// Persistence mode string: `durable` / `degraded` / `none`.
    pub persistence: &'static str,
    /// True when persistence dropped to non-durable serving.
    pub persistence_degraded: bool,
    /// The error that degraded persistence, if any.
    pub persistence_error: Option<String>,
    /// True when the installed rates are uncertified (degraded solve).
    pub serving_uncertified: bool,
    /// Cumulative degraded re-solves.
    pub degraded_solves: u64,
    /// Cumulative last-good fallbacks.
    pub last_good_fallbacks: u64,
    /// The `stats` payload at publish time.
    pub stats: Json,
    /// The WAL stats object at publish time (`null` without a store).
    pub wal_stats: Json,
    /// Resolved bounded-queue capacity.
    pub queue_capacity: u64,
}

/// The atomically-swapped snapshot cell: single publisher (the event
/// loop), any number of readers (connection threads).
#[derive(Debug)]
pub struct SnapshotCell {
    inner: RwLock<Arc<ReadSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial`.
    pub fn new(initial: ReadSnapshot) -> Self {
        SnapshotCell {
            inner: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot (an `Arc` clone; the guard is held only for
    /// the pointer copy).
    pub fn load(&self) -> Arc<ReadSnapshot> {
        match self.inner.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Swaps in `next` unless it would regress the epoch order. Equal
    /// epochs are republications (same committed state, fresher counters)
    /// and are accepted. Returns whether the swap happened.
    pub fn publish(&self, next: ReadSnapshot) -> bool {
        let mut guard = match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if next.epoch < guard.epoch {
            return false;
        }
        *guard = Arc::new(next);
        true
    }
}

/// Everything a connection thread needs to answer read-only commands:
/// the snapshot cell plus the live atomics and instruments shared with
/// the event loop and the overload shedder.
#[derive(Debug, Clone)]
pub(crate) struct ReadHandle {
    pub cell: Arc<SnapshotCell>,
    pub queue_depth: Arc<AtomicU64>,
    pub shed_count: Arc<AtomicU64>,
    pub ewma_ms_bits: Arc<AtomicU64>,
    pub reads_lockfree: Arc<AtomicU64>,
    pub capacity: usize,
    pub recorder: Recorder,
    pub sli: Arc<RateWindows>,
}

impl ReadHandle {
    /// Answers `req` from the snapshot when it is one of the read-only
    /// commands; `None` means the request must go through the queue.
    pub fn try_answer(&self, req: &Request) -> Option<Json> {
        if !req.is_read_only() {
            return None;
        }
        self.reads_lockfree.fetch_add(1, Ordering::Relaxed);
        self.recorder
            .counter_add("daemon_reads_served_lockfree_total", 1);
        self.sli.record(crate::sli::Kind::Request);
        self.sli.record(crate::sli::Kind::Read);
        let snap = self.cell.load();
        let response = match req {
            Request::Ping => self.ok(req, &snap, vec![("pong", Json::Bool(true))]),
            Request::QueryRates => self.ok(
                req,
                &snap,
                vec![
                    ("theta", Json::Num(snap.theta)),
                    ("objective", snap.objective.map_or(Json::Null, Json::Num)),
                    ("monitors", snap.monitors.clone()),
                ],
            ),
            Request::Stats => {
                let mut stats = snap.stats.clone();
                if let Json::Obj(pairs) = &mut stats {
                    // Live overlays: sheds happen on reader threads after
                    // publish; lock-free reads never reach the event loop.
                    set_field(
                        pairs,
                        "shed",
                        Json::UInt(self.shed_count.load(Ordering::Relaxed)),
                    );
                    set_field(
                        pairs,
                        "reads_lockfree",
                        Json::UInt(self.reads_lockfree.load(Ordering::Relaxed)),
                    );
                }
                self.ok(req, &snap, vec![("stats", stats)])
            }
            Request::Health => {
                let status = if snap.persistence_degraded || snap.serving_uncertified {
                    "degraded"
                } else {
                    "ok"
                };
                let now_s = self.sli.now_s();
                let (level, reasons) = self.sli.classify_at(now_s);
                let mut payload = vec![
                    ("status", Json::Str(status.into())),
                    ("sli", Json::Str(level.as_str().into())),
                    (
                        "sli_reasons",
                        Json::Arr(reasons.iter().map(|r| Json::Str((*r).into())).collect()),
                    ),
                    ("persistence", Json::Str(snap.persistence.into())),
                    ("serving_uncertified", Json::Bool(snap.serving_uncertified)),
                    ("degraded_solves", Json::UInt(snap.degraded_solves)),
                    ("last_good_fallbacks", Json::UInt(snap.last_good_fallbacks)),
                    ("shed", Json::UInt(self.shed_count.load(Ordering::Relaxed))),
                    (
                        "queue_depth",
                        Json::UInt(self.queue_depth.load(Ordering::Relaxed)),
                    ),
                    ("queue_capacity", Json::UInt(snap.queue_capacity)),
                    ("rates", self.sli.rates_json_at(now_s)),
                ];
                if let Some(why) = &snap.persistence_error {
                    payload.push(("persistence_error", Json::Str(why.clone())));
                }
                self.sli.export_gauges(&self.recorder);
                self.ok(req, &snap, payload)
            }
            Request::Metrics => {
                // The recorder is its own thread-safe instrument store; a
                // snapshot here never touches the event loop. WAL stats
                // are owned by the loop, so they come from the published
                // snapshot instead.
                let mut metrics = metrics_json(&self.recorder.snapshot());
                if let Json::Obj(pairs) = &mut metrics {
                    pairs.push(("wal_stats".to_string(), snap.wal_stats.clone()));
                }
                self.ok(req, &snap, vec![("metrics", metrics)])
            }
            _ => unreachable!("is_read_only covers exactly the arms above"),
        };
        Some(response)
    }

    /// The per-connection `hello` line (multi-client transports greet
    /// every connection; the epoch lets clients pin a consistent view).
    pub fn hello(&self) -> Json {
        let snap = self.cell.load();
        obj(vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::Str("hello".into())),
            ("ods", Json::Num(snap.ods as f64)),
            ("theta", Json::Num(snap.theta)),
            ("persistence", Json::Str(snap.persistence.into())),
            ("epoch", Json::UInt(snap.epoch)),
        ])
    }

    /// The shed response for a full queue, with the same EWMA-derived
    /// `retry_after_ms` hint as the single-stream reader thread.
    pub fn overloaded(&self) -> Json {
        self.shed_count.fetch_add(1, Ordering::Relaxed);
        self.recorder.counter_add("daemon_overload_shed_total", 1);
        self.sli.record(crate::sli::Kind::Request);
        self.sli.record(crate::sli::Kind::Shed);
        let hint = retry_after_ms(
            f64::from_bits(self.ewma_ms_bits.load(Ordering::Relaxed)),
            self.capacity,
        );
        obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str("overloaded".into())),
            ("retry_after_ms", Json::UInt(hint)),
        ])
    }

    fn ok(&self, req: &Request, snap: &ReadSnapshot, payload: Vec<(&str, Json)>) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::Str(req.name().into())),
            ("epoch", Json::UInt(snap.epoch)),
        ];
        pairs.extend(payload);
        obj(pairs)
    }
}

/// Replaces `key` in an object's pairs, or appends it.
fn set_field(pairs: &mut Vec<(String, Json)>, key: &str, value: Json) {
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => pairs.push((key.to_string(), value)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn snap(epoch: u64) -> ReadSnapshot {
        ReadSnapshot {
            epoch,
            theta: 80_000.0,
            objective: Some(1.0),
            monitors: Json::Arr(vec![]),
            ods: 3,
            persistence: "none",
            persistence_degraded: false,
            persistence_error: None,
            serving_uncertified: false,
            degraded_solves: 0,
            last_good_fallbacks: 0,
            stats: obj(vec![]),
            wal_stats: Json::Null,
            queue_capacity: 64,
        }
    }

    #[test]
    fn publish_rejects_epoch_regression() {
        let cell = SnapshotCell::new(snap(5));
        assert!(!cell.publish(snap(4)));
        assert_eq!(cell.load().epoch, 5);
        assert!(cell.publish(snap(5)), "republication of same epoch is ok");
        assert!(cell.publish(snap(6)));
        assert_eq!(cell.load().epoch, 6);
    }

    #[test]
    fn set_field_replaces_or_appends() {
        let mut pairs = vec![("shed".to_string(), Json::UInt(0))];
        set_field(&mut pairs, "shed", Json::UInt(7));
        set_field(&mut pairs, "new", Json::UInt(1));
        assert_eq!(pairs[0].1.as_u64(), Some(7));
        assert_eq!(pairs[1].0, "new");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Snapshot publication never regresses epoch order: a publisher
        /// pushing an arbitrary (possibly decreasing) epoch sequence
        /// through the cell leaves every concurrent reader observing a
        /// monotone non-decreasing epoch series, and the cell itself never
        /// accepts a regression.
        #[test]
        fn epoch_order_never_regresses(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cell = std::sync::Arc::new(SnapshotCell::new(snap(0)));
            let publishes: Vec<u64> =
                (0..50).map(|_| rng.random_range(0u64..20)).collect();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let cell = std::sync::Arc::clone(&cell);
                    let stop = std::sync::Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut last = 0u64;
                        let mut seen = 0u64;
                        while !stop.load(Ordering::Relaxed) || seen == 0 {
                            let e = cell.load().epoch;
                            assert!(e >= last, "epoch regressed: {last} -> {e}");
                            last = e;
                            seen += 1;
                        }
                        last
                    })
                })
                .collect();
            let mut accepted_max = 0u64;
            for e in &publishes {
                let accepted = cell.publish(snap(*e));
                prop_assert_eq!(accepted, *e >= accepted_max);
                accepted_max = accepted_max.max(*e);
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                let last = r.join().expect("reader panicked");
                prop_assert!(last <= accepted_max);
            }
            prop_assert_eq!(cell.load().epoch, accepted_max);
        }
    }
}
