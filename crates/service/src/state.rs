//! Mutable network state owned by the daemon, with transactional event
//! application, warm-started re-solves, and snapshot/rollback.
//!
//! The state is a *specification* (base topology, failed fibres by endpoint
//! names, OD set, background loads, θ, α) from which the current
//! [`MeasurementTask`] is rebuilt after every event. Keeping the spec — not
//! the built task — as the source of truth is what makes link failures
//! composable with every other event: the derived topology, the routing
//! matrix and the candidate set are always reconstructed from scratch,
//! while sampling rates are carried across epochs in *base-topology link
//! indexing* and re-mapped through [`nws_routing::failure::link_id_map`].

use crate::json::{obj, Json};
use crate::protocol::Request;
use crate::ServiceError;
use nws_core::{
    evaluate_accuracy, evaluate_rates, solve_placement, solve_placement_observed,
    solve_placement_warm_observed, summarize, MeasurementTask, PlacementConfig,
    ACTIVATION_THRESHOLD,
};
use nws_obs::Recorder;
use nws_routing::failure::{bidirectional_pair, link_id_map, without_links};
use nws_routing::OdPair;
use nws_solver::SolveBudget;
use nws_topo::{LinkId, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One tracked OD pair, by node *names* so it survives topology epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct OdSpec {
    /// Display name (unique within the task).
    pub name: String,
    /// Origin node name.
    pub src: String,
    /// Destination node name.
    pub dst: String,
    /// Ground-truth size in packets per interval.
    pub size: f64,
}

/// The currently installed sampling configuration, in base-topology link
/// indexing (failed links carry rate 0).
#[derive(Debug, Clone)]
pub struct Installed {
    /// Sampling rate per base-topology link.
    pub rates_base: Vec<f64>,
    /// Objective of the installing solve.
    pub objective: f64,
    /// Budget multiplier λ of the installing solve.
    pub lambda: f64,
    /// Number of activated monitors.
    pub active_monitors: usize,
    /// Whether the installing solve was KKT-certified.
    pub kkt: bool,
}

/// Cold-solve comparison attached to a re-solve when shadow mode is on.
#[derive(Debug, Clone)]
pub struct ColdComparison {
    /// Iterations the cold solve needed.
    pub iterations: usize,
    /// Cold solve wall time in milliseconds.
    pub wall_ms: f64,
    /// Cold solve objective (agreement check against the warm solve).
    pub objective: f64,
}

/// Diagnostics of one event-triggered re-solve.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Whether the solve was warm-started from the previous configuration.
    pub warm_started: bool,
    /// Iterations used.
    pub iterations: usize,
    /// Active-set releases during the solve.
    pub constraint_releases: usize,
    /// Whether the KKT conditions were certified.
    pub kkt: bool,
    /// Objective at the new configuration.
    pub objective: f64,
    /// Change versus the previously installed configuration (`None` on the
    /// first solve).
    pub objective_delta: Option<f64>,
    /// Budget multiplier λ.
    pub lambda: f64,
    /// Wall time of the (warm) solve in milliseconds.
    pub wall_ms: f64,
    /// Number of activated monitors.
    pub active_monitors: usize,
    /// Shadow cold solve, when requested.
    pub cold: Option<ColdComparison>,
    /// Whether the *answer being served* is uncertified: the solve (after
    /// any escalation) ran out of budget before the KKT check passed.
    pub degraded: bool,
    /// Which escalation step produced the served answer: `None` for the
    /// plain (usually warm) solve, `"cold"` when the warm attempt came back
    /// degraded and a from-scratch retry certified, `"last_good"` when even
    /// the retry stayed degraded and the previously installed rates were
    /// kept in force instead.
    pub fallback: Option<&'static str>,
}

/// Deterministic fault injection for the solver path, mirroring what
/// [`nws_store::FaultPlan`](../../store) does for the I/O path. Shared
/// across [`ServiceState`] clones (the counter is an `Arc`), so a panic
/// scheduled for the Nth re-solve fires exactly once even though
/// [`ServiceState::apply_event`] runs each solve on a discarded copy.
#[derive(Debug, Clone, Default)]
pub struct SolverChaos {
    /// Iteration cap injected into every solve — the deterministic
    /// stand-in for a wall-clock deadline (wall time varies run to run;
    /// an iteration count does not), forcing the degraded path on demand.
    max_iters: Option<usize>,
    /// Panic on the Nth `resolve` call (0-based), exercising the daemon's
    /// `catch_unwind` isolation.
    panic_on_resolve: Option<u64>,
    resolves: Arc<AtomicU64>,
}

impl SolverChaos {
    /// A chaos plan that injects nothing.
    pub fn new() -> Self {
        SolverChaos::default()
    }

    /// Caps every solve at `n` iterations.
    pub fn with_max_iters(mut self, n: usize) -> Self {
        self.max_iters = Some(n);
        self
    }

    /// Panics on the `n`th (0-based) re-solve.
    pub fn with_panic_on_resolve(mut self, n: u64) -> Self {
        self.panic_on_resolve = Some(n);
        self
    }

    /// Consumes one resolve slot, panicking if this is the scheduled one.
    fn on_resolve(&self) {
        let call = self.resolves.fetch_add(1, Ordering::Relaxed);
        if self.panic_on_resolve == Some(call) {
            panic!("injected chaos panic on resolve #{call}");
        }
    }
}

/// Everything `rollback` restores — the event-mutable spec plus the
/// installed configuration at snapshot time.
#[derive(Debug, Clone)]
struct SnapshotData {
    failed: Vec<(String, String)>,
    ods: Vec<OdSpec>,
    theta: f64,
    installed: Option<Installed>,
}

/// The daemon's mutable network state.
#[derive(Debug, Clone)]
pub struct ServiceState {
    base: Topology,
    /// Failed fibres as canonically ordered endpoint-name pairs.
    failed: Vec<(String, String)>,
    ods: Vec<OdSpec>,
    /// Background (non-tracked) load per base-topology link. Background on
    /// a failed link is dropped for the epoch, not rerouted — tracked
    /// traffic, which the objective actually sees, *is* rerouted via the
    /// rebuilt routing matrix.
    background_base: Vec<f64>,
    theta: f64,
    alpha: f64,
    config: PlacementConfig,
    installed: Option<Installed>,
    snapshots: Vec<SnapshotData>,
    /// Wall-clock budget per solve attempt; `None` = run to convergence.
    /// Not persisted — it is a serving policy, not recoverable state.
    solve_deadline: Option<Duration>,
    /// Fault-injection plan for the chaos harness (inert by default).
    chaos: SolverChaos,
    /// Observability sink threaded into every re-solve (disabled by
    /// default; the daemon installs its own via [`ServiceState::set_recorder`]).
    recorder: Recorder,
}

fn canonical_pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl ServiceState {
    /// Builds the state from an already-validated measurement task.
    ///
    /// The task's per-link α is assumed uniform (the only shape
    /// [`MeasurementTask`]'s builder produces); candidate-set restrictions
    /// are not carried over.
    pub fn from_task(task: &MeasurementTask, config: PlacementConfig) -> Self {
        let topo = task.topology();
        let sizes: Vec<f64> = task.ods().iter().map(|o| o.size).collect();
        let tracked = task.routing().link_loads(&sizes);
        let background_base: Vec<f64> = task
            .link_loads()
            .iter()
            .zip(&tracked)
            .map(|(total, t)| (total - t).max(0.0))
            .collect();
        let ods = task
            .ods()
            .iter()
            .map(|o| OdSpec {
                name: o.name.clone(),
                src: topo.node(o.od.src).name().to_string(),
                dst: topo.node(o.od.dst).name().to_string(),
                size: o.size,
            })
            .collect();
        ServiceState {
            base: topo.clone(),
            failed: Vec::new(),
            ods,
            background_base,
            theta: task.theta(),
            alpha: task.alpha().first().copied().unwrap_or(1.0),
            config,
            installed: None,
            snapshots: Vec::new(),
            solve_deadline: None,
            chaos: SolverChaos::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the wall-clock budget for each subsequent solve attempt. A
    /// deadline-interrupted solve still returns a feasible rate vector
    /// (the solver's anytime contract); [`ServiceState::resolve`] then
    /// escalates rather than serving it blindly.
    pub fn set_solve_deadline(&mut self, deadline: Option<Duration>) {
        self.solve_deadline = deadline;
    }

    /// Installs a fault-injection plan (chaos harness only).
    pub fn set_chaos(&mut self, chaos: SolverChaos) {
        self.chaos = chaos;
    }

    /// Installs an observability sink: subsequent re-solves record solver
    /// phase spans, evaluation fan-out counters, and the
    /// `daemon_resolve_latency_ms{mode=…}` histogram into it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The currently installed configuration, if any solve has run.
    pub fn installed(&self) -> Option<&Installed> {
        self.installed.as_ref()
    }

    /// Current sampling budget θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Currently failed fibres (canonical endpoint-name pairs).
    pub fn failed_fibres(&self) -> &[(String, String)] {
        &self.failed
    }

    /// Tracked OD specifications.
    pub fn ods(&self) -> &[OdSpec] {
        &self.ods
    }

    /// Snapshot-stack depth.
    pub fn snapshot_depth(&self) -> usize {
        self.snapshots.len()
    }

    /// The base topology's fibres as canonically ordered endpoint-name
    /// pairs, deduplicated across directions — the universe of
    /// `fail_link`/`restore_link` targets. Order follows link ids, so the
    /// list is deterministic for a given topology.
    pub fn fibres(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for id in self.base.link_ids() {
            let link = self.base.link(id);
            let pair = canonical_pair(
                self.base.node(link.src()).name(),
                self.base.node(link.dst()).name(),
            );
            if !out.contains(&pair) {
                out.push(pair);
            }
        }
        out
    }

    /// Adopts `other`'s installed configuration without re-solving — the
    /// predictive-serving primitive: solve a *forecast* copy of the state
    /// (same base topology, demands set to predictions) and put those
    /// rates in force on the real state. The spec of `self` is untouched.
    ///
    /// # Errors
    /// [`ServiceError::State`] when `other` has nothing installed or its
    /// base topology has a different link count.
    pub fn install_from(&mut self, other: &ServiceState) -> Result<(), ServiceError> {
        let inst = other
            .installed
            .as_ref()
            .ok_or_else(|| ServiceError::State("source state has nothing installed".into()))?;
        if inst.rates_base.len() != self.base.num_links() {
            return Err(ServiceError::State(format!(
                "installed rate vector has {} entries, base topology has {} links",
                inst.rates_base.len(),
                self.base.num_links()
            )));
        }
        self.installed = Some(inst.clone());
        Ok(())
    }

    fn failed_link_ids(&self) -> Result<Vec<LinkId>, ServiceError> {
        let mut ids = Vec::new();
        for (a, b) in &self.failed {
            let na = self.require_node(a)?;
            let nb = self.require_node(b)?;
            ids.extend(bidirectional_pair(&self.base, na, nb));
        }
        Ok(ids)
    }

    fn require_node(&self, name: &str) -> Result<nws_topo::NodeId, ServiceError> {
        self.base
            .node_by_name(name)
            .ok_or_else(|| ServiceError::State(format!("unknown node '{name}'")))
    }

    /// Rebuilds the current epoch's task and the base→epoch link-id map.
    fn rebuild(&self) -> Result<(MeasurementTask, Vec<Option<LinkId>>), ServiceError> {
        // Counted so tests (and operators) can verify that a batched event
        // costs one epoch rebuild, not one per entry.
        self.recorder.counter_add("state_epoch_rebuilds_total", 1);
        let failed_ids = self.failed_link_ids()?;
        let topo_now = without_links(&self.base, &failed_ids)
            .map_err(|e| ServiceError::State(format!("post-failure topology invalid: {e}")))?;
        let idmap = link_id_map(&self.base, &failed_ids);

        let mut background = vec![0.0; topo_now.num_links()];
        for (old, new) in idmap.iter().enumerate() {
            if let Some(new) = new {
                background[new.index()] = self.background_base[old];
            }
        }

        let mut names = Vec::with_capacity(self.ods.len());
        let mut pairs = Vec::with_capacity(self.ods.len());
        for od in &self.ods {
            let src = topo_now
                .node_by_name(&od.src)
                .ok_or_else(|| ServiceError::State(format!("unknown node '{}'", od.src)))?;
            let dst = topo_now
                .node_by_name(&od.dst)
                .ok_or_else(|| ServiceError::State(format!("unknown node '{}'", od.dst)))?;
            names.push(od.name.clone());
            pairs.push((OdPair { src, dst }, od.size));
        }
        let mut builder = MeasurementTask::builder(topo_now);
        for (name, (od, size)) in names.into_iter().zip(pairs) {
            builder = builder.track(name, od, size);
        }
        let task = builder
            .background_loads(&background)
            .theta(self.theta)
            .alpha(self.alpha)
            .build()?;
        Ok((task, idmap))
    }

    /// The per-attempt solver config: the shared [`PlacementConfig`] with
    /// this solve's budget (wall-clock deadline and/or chaos iteration
    /// cap) stamped in.
    fn budgeted_config(&self) -> PlacementConfig {
        let mut config = self.config;
        config.solver.budget = SolveBudget {
            max_iters: self.chaos.max_iters,
            deadline: self.solve_deadline.map(|d| Instant::now() + d),
        };
        config
    }

    /// Re-optimizes the placement for the current spec, warm-starting from
    /// the installed configuration when one exists. With `shadow`, also
    /// runs a from-scratch cold solve for iteration/latency comparison (the
    /// installed result is always the warm one).
    ///
    /// When a solve deadline is set and an attempt comes back *degraded*
    /// (budget ran out before KKT certification), this escalates:
    ///
    /// 1. warm attempt degraded → retry cold with a fresh deadline;
    /// 2. retry still degraded, but a configuration is installed → keep
    ///    the last-good rates in force (the spec mutation still lands);
    /// 3. nothing installed yet (startup) → install the degraded result —
    ///    it is feasible (in the box, within budget), just uncertified.
    ///
    /// The returned report carries [`SolveReport::degraded`] and
    /// [`SolveReport::fallback`] so callers can count and expose this.
    ///
    /// # Errors
    /// [`ServiceError::State`] for spec problems (unroutable OD, unknown
    /// node), [`ServiceError::Core`] for solver failures (e.g. θ infeasible
    /// after failures shrank the candidate set).
    pub fn resolve(&mut self, shadow: bool) -> Result<SolveReport, ServiceError> {
        self.chaos.on_resolve();
        let (task, idmap) = self.rebuild()?;
        let prev_objective = self.installed.as_ref().map(|i| i.objective);
        let warm_vec: Option<Vec<f64>> = self.installed.as_ref().map(|inst| {
            let mut v = vec![0.0; task.topology().num_links()];
            for (old, new) in idmap.iter().enumerate() {
                if let Some(new) = new {
                    v[new.index()] = inst.rates_base[old];
                }
            }
            v
        });

        let t0 = Instant::now();
        let mut sol = match &warm_vec {
            Some(w) => {
                solve_placement_warm_observed(&task, &self.budgeted_config(), w, &self.recorder)?
            }
            None => solve_placement_observed(&task, &self.budgeted_config(), &self.recorder)?,
        };
        let mut fallback = None;
        if sol.degraded.is_some() && warm_vec.is_some() {
            // Escalation step 1: the warm start may simply have been a bad
            // starting basin for the budget; a cold solve gets a fresh
            // deadline before we give up on certifying this epoch.
            self.recorder.counter_add("daemon_solve_escalations", 1);
            let cold_try =
                solve_placement_observed(&task, &self.budgeted_config(), &self.recorder)?;
            if cold_try.degraded.is_none() {
                sol = cold_try;
                fallback = Some("cold");
            }
        }
        let degraded = sol.degraded.is_some();
        let keep_last_good = degraded && self.installed.is_some();
        if keep_last_good {
            // Escalation step 2: serve the previously certified rates.
            fallback = Some("last_good");
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mode = if warm_vec.is_some() { "warm" } else { "cold" };
        self.recorder
            .observe_labeled("daemon_resolve_latency_ms", "mode", mode, wall_ms);

        let cold = if shadow && warm_vec.is_some() {
            // The shadow solve is a benchmarking artifact: keep it out of
            // the solver/eval metrics so they describe installing solves.
            let t1 = Instant::now();
            let c = solve_placement(&task, &self.config)?;
            Some(ColdComparison {
                iterations: c.diagnostics.iterations,
                wall_ms: t1.elapsed().as_secs_f64() * 1e3,
                objective: c.objective,
            })
        } else {
            None
        };

        if !keep_last_good {
            let mut rates_base = vec![0.0; self.base.num_links()];
            for (old, new) in idmap.iter().enumerate() {
                if let Some(new) = new {
                    rates_base[old] = sol.rates[new.index()];
                }
            }
            self.installed = Some(Installed {
                rates_base,
                objective: sol.objective,
                lambda: sol.lambda,
                active_monitors: sol.active_monitors.len(),
                kkt: sol.kkt_verified,
            });
        }
        Ok(SolveReport {
            warm_started: warm_vec.is_some(),
            iterations: sol.diagnostics.iterations,
            constraint_releases: sol.diagnostics.constraint_releases,
            kkt: sol.kkt_verified,
            objective: sol.objective,
            objective_delta: prev_objective.map(|o| sol.objective - o),
            lambda: sol.lambda,
            wall_ms,
            active_monitors: sol.active_monitors.len(),
            cold,
            degraded,
            fallback,
        })
    }

    /// Applies a mutating request transactionally: the mutation and its
    /// re-solve run on a copy, which replaces `self` only on success — a
    /// rejected event (unroutable OD, infeasible θ) leaves the installed
    /// configuration untouched.
    ///
    /// # Errors
    /// [`ServiceError::State`] when `req` is not a mutating command or the
    /// mutation is invalid; solve errors as in [`ServiceState::resolve`].
    pub fn apply_event(
        &mut self,
        req: &Request,
        shadow: bool,
    ) -> Result<SolveReport, ServiceError> {
        let mut next = self.clone();
        next.mutate(req)?;
        let report = next.resolve(shadow)?;
        *self = next;
        Ok(report)
    }

    /// Applies a mutating request to the *spec only* — no re-solve, the
    /// installed configuration (if any) stays in force until the caller
    /// decides to [`ServiceState::resolve`]. This is the scenario
    /// replayer's entry point: a replay tick applies its demand batch and
    /// link events through here and then re-solves (or not) according to
    /// its budget policy. Each request is all-or-nothing; a rejected
    /// request leaves the spec untouched.
    ///
    /// # Errors
    /// [`ServiceError::State`] when `req` is not a mutating command or the
    /// mutation is invalid.
    pub fn mutate_spec(&mut self, req: &Request) -> Result<(), ServiceError> {
        self.mutate(req)
    }

    /// Validates that the current spec still builds a measurement task
    /// (every OD routable on the survivor graph, all nodes known) without
    /// solving. Used by the trace generator to discover which fibres can
    /// flap without stranding a tracked OD.
    ///
    /// # Errors
    /// [`ServiceError::State`] describing the first spec violation.
    pub fn check_spec(&self) -> Result<(), ServiceError> {
        self.rebuild().map(|_| ())
    }

    /// Evaluates the *installed* rates against the *current* spec's task:
    /// the objective and per-OD utilities the network actually delivers
    /// right now, which lag the optimum whenever the spec has moved since
    /// the installing solve. Returns `(objective, per-OD utilities)` in
    /// tracked-OD order. This is the delivered side of the replay oracle
    /// comparison; the oracle side is a fresh [`ServiceState::resolve`] on
    /// the same spec.
    ///
    /// # Errors
    /// [`ServiceError::State`] when no configuration is installed or the
    /// epoch's task cannot be rebuilt.
    pub fn evaluate_installed(&self) -> Result<(f64, Vec<f64>), ServiceError> {
        let inst = self
            .installed
            .as_ref()
            .ok_or_else(|| ServiceError::State("no configuration installed yet".into()))?;
        let (task, idmap) = self.rebuild()?;
        let mut rates_now = vec![0.0; task.topology().num_links()];
        for (old, new) in idmap.iter().enumerate() {
            if let Some(new) = new {
                rates_now[new.index()] = inst.rates_base[old];
            }
        }
        let sol = evaluate_rates(&task, &rates_now);
        Ok((sol.objective, sol.utilities))
    }

    fn mutate(&mut self, req: &Request) -> Result<(), ServiceError> {
        let bad = |msg: String| Err(ServiceError::State(msg));
        match req {
            Request::UpdateDemand { od, size } => {
                if !(size.is_finite() && *size > 1.0) {
                    return bad(format!("size must exceed 1 packet/interval, got {size}"));
                }
                match self.ods.iter_mut().find(|o| o.name == *od) {
                    Some(spec) => {
                        spec.size = *size;
                        Ok(())
                    }
                    None => bad(format!("unknown OD '{od}'")),
                }
            }
            Request::UpdateDemands { updates } => {
                // All-or-nothing even when mutating `self` directly (the
                // replayer's spec-only path): validate every entry before
                // touching any size.
                if updates.is_empty() {
                    return bad("'updates' must be a non-empty batch".into());
                }
                let mut targets = Vec::with_capacity(updates.len());
                for (od, size) in updates {
                    if !(size.is_finite() && *size > 1.0) {
                        return bad(format!(
                            "size for '{od}' must exceed 1 packet/interval, got {size}"
                        ));
                    }
                    let i = match self.ods.iter().position(|o| o.name == *od) {
                        Some(i) => i,
                        None => return bad(format!("unknown OD '{od}'")),
                    };
                    if targets.contains(&i) {
                        return bad(format!("duplicate OD '{od}' in batch"));
                    }
                    targets.push(i);
                }
                for (i, (_, size)) in targets.into_iter().zip(updates) {
                    self.ods[i].size = *size;
                }
                Ok(())
            }
            Request::FailLink { a, b } => {
                let na = self.require_node(a)?;
                let nb = self.require_node(b)?;
                if bidirectional_pair(&self.base, na, nb).is_empty() {
                    return bad(format!("no fibre between '{a}' and '{b}'"));
                }
                let pair = canonical_pair(a, b);
                if self.failed.contains(&pair) {
                    return bad(format!("fibre {a}–{b} is already failed"));
                }
                self.failed.push(pair);
                Ok(())
            }
            Request::RestoreLink { a, b } => {
                let pair = canonical_pair(a, b);
                match self.failed.iter().position(|p| *p == pair) {
                    Some(i) => {
                        self.failed.remove(i);
                        Ok(())
                    }
                    None => bad(format!("fibre {a}–{b} is not failed")),
                }
            }
            Request::AddOd {
                name,
                src,
                dst,
                size,
            } => {
                if self.ods.iter().any(|o| o.name == *name) {
                    return bad(format!("OD '{name}' already tracked"));
                }
                if !(size.is_finite() && *size > 1.0) {
                    return bad(format!("size must exceed 1 packet/interval, got {size}"));
                }
                self.require_node(src)?;
                self.require_node(dst)?;
                if src == dst {
                    return bad("OD origin and destination coincide".into());
                }
                self.ods.push(OdSpec {
                    name: name.clone(),
                    src: src.clone(),
                    dst: dst.clone(),
                    size: *size,
                });
                Ok(())
            }
            Request::RemoveOd { name } => match self.ods.iter().position(|o| o.name == *name) {
                Some(_) if self.ods.len() == 1 => bad("cannot remove the last tracked OD".into()),
                Some(i) => {
                    self.ods.remove(i);
                    Ok(())
                }
                None => bad(format!("unknown OD '{name}'")),
            },
            Request::SetTheta { theta } => {
                if !(theta.is_finite() && *theta > 0.0) {
                    return bad(format!("theta must be positive and finite, got {theta}"));
                }
                self.theta = *theta;
                Ok(())
            }
            other => bad(format!("'{}' is not a mutating command", other.name())),
        }
    }

    /// Pushes the current spec + installed configuration onto the snapshot
    /// stack; returns the new depth.
    pub fn snapshot(&mut self) -> usize {
        self.snapshots.push(SnapshotData {
            failed: self.failed.clone(),
            ods: self.ods.clone(),
            theta: self.theta,
            installed: self.installed.clone(),
        });
        self.snapshots.len()
    }

    /// Pops the snapshot stack and reinstalls that state — no re-solve, the
    /// snapshotted rate vector simply comes back into force. Returns the
    /// remaining depth and the restored objective (if a configuration was
    /// installed at snapshot time).
    ///
    /// # Errors
    /// [`ServiceError::State`] when the stack is empty.
    pub fn rollback(&mut self) -> Result<(usize, Option<f64>), ServiceError> {
        let snap = self
            .snapshots
            .pop()
            .ok_or_else(|| ServiceError::State("snapshot stack is empty".into()))?;
        self.failed = snap.failed;
        self.ods = snap.ods;
        self.theta = snap.theta;
        self.installed = snap.installed;
        Ok((
            self.snapshots.len(),
            self.installed.as_ref().map(|i| i.objective),
        ))
    }

    /// The activated monitors of the installed configuration as
    /// `(link label, rate)` pairs in base-topology link order.
    ///
    /// # Errors
    /// [`ServiceError::State`] when no configuration is installed.
    pub fn active_rates(&self) -> Result<Vec<(String, f64)>, ServiceError> {
        let inst = self
            .installed
            .as_ref()
            .ok_or_else(|| ServiceError::State("no configuration installed yet".into()))?;
        Ok(inst
            .rates_base
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > ACTIVATION_THRESHOLD)
            .map(|(i, &p)| (self.base.link_label(LinkId::from_index(i)), p))
            .collect())
    }

    /// Monte-Carlo accuracy of the installed configuration against the
    /// current epoch's task: `(mean, worst, best)` over ODs.
    ///
    /// # Errors
    /// [`ServiceError::State`] when no configuration is installed or the
    /// epoch's task cannot be rebuilt.
    pub fn accuracy(&self, runs: usize, seed: u64) -> Result<(f64, f64, f64), ServiceError> {
        let inst = self
            .installed
            .as_ref()
            .ok_or_else(|| ServiceError::State("no configuration installed yet".into()))?;
        let (task, idmap) = self.rebuild()?;
        let mut rates_now = vec![0.0; task.topology().num_links()];
        for (old, new) in idmap.iter().enumerate() {
            if let Some(new) = new {
                rates_now[new.index()] = inst.rates_base[old];
            }
        }
        let sol = evaluate_rates(&task, &rates_now);
        let summary = summarize(&evaluate_accuracy(&task, &sol, runs, seed));
        Ok((summary.mean, summary.worst, summary.best))
    }

    /// The recoverable state as one JSON document (schema version 1): θ,
    /// failed fibres, OD specs, the installed configuration, and the
    /// snapshot stack. The base topology, background loads, α, and solver
    /// config are *not* included — they are derived from the serving task
    /// and must match at [`ServiceState::restore_persisted`] time.
    ///
    /// Encoding uses shortest-roundtrip `f64` formatting, so a persist →
    /// restore cycle reproduces every rate, objective, and θ bit-exactly.
    pub fn persisted(&self) -> Json {
        obj(vec![
            ("version", Json::UInt(1)),
            ("theta", Json::Num(self.theta)),
            ("failed", failed_to_json(&self.failed)),
            ("ods", ods_to_json(&self.ods)),
            ("installed", installed_to_json(self.installed.as_ref())),
            (
                "stack",
                Json::Arr(
                    self.snapshots
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("failed", failed_to_json(&s.failed)),
                                ("ods", ods_to_json(&s.ods)),
                                ("theta", Json::Num(s.theta)),
                                ("installed", installed_to_json(s.installed.as_ref())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores the recoverable state from a [`ServiceState::persisted`]
    /// document, validating it against the *current* base topology (node
    /// names must exist, rate vectors must match the link count, sizes and
    /// θ must satisfy the protocol bounds). On error `self` is unchanged.
    ///
    /// # Errors
    /// [`ServiceError::State`] describing the first schema violation.
    pub fn restore_persisted(&mut self, doc: &Json) -> Result<(), ServiceError> {
        let bad = |msg: String| ServiceError::State(format!("persisted state: {msg}"));
        match doc.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            other => {
                return Err(bad(format!(
                    "unsupported schema version {other:?} (expected 1)"
                )))
            }
        }
        let theta = theta_from_json(doc).map_err(&bad)?;
        let failed = failed_from_json(doc, &self.base).map_err(&bad)?;
        let ods = ods_from_json(doc, &self.base).map_err(&bad)?;
        let installed = installed_from_json(doc, self.base.num_links()).map_err(&bad)?;
        let stack = doc
            .get("stack")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing 'stack' array".into()))?;
        let mut snapshots = Vec::with_capacity(stack.len());
        for (i, frame) in stack.iter().enumerate() {
            let framed = |msg: String| bad(format!("stack[{i}]: {msg}"));
            snapshots.push(SnapshotData {
                failed: failed_from_json(frame, &self.base).map_err(&framed)?,
                ods: ods_from_json(frame, &self.base).map_err(&framed)?,
                theta: theta_from_json(frame).map_err(&framed)?,
                installed: installed_from_json(frame, self.base.num_links()).map_err(&framed)?,
            });
        }
        self.theta = theta;
        self.failed = failed;
        self.ods = ods;
        self.installed = installed;
        self.snapshots = snapshots;
        Ok(())
    }
}

fn failed_to_json(failed: &[(String, String)]) -> Json {
    Json::Arr(
        failed
            .iter()
            .map(|(a, b)| Json::Arr(vec![Json::Str(a.clone()), Json::Str(b.clone())]))
            .collect(),
    )
}

fn ods_to_json(ods: &[OdSpec]) -> Json {
    Json::Arr(
        ods.iter()
            .map(|o| {
                obj(vec![
                    ("name", Json::Str(o.name.clone())),
                    ("src", Json::Str(o.src.clone())),
                    ("dst", Json::Str(o.dst.clone())),
                    ("size", Json::Num(o.size)),
                ])
            })
            .collect(),
    )
}

fn installed_to_json(inst: Option<&Installed>) -> Json {
    match inst {
        None => Json::Null,
        Some(i) => obj(vec![
            (
                "rates",
                Json::Arr(i.rates_base.iter().map(|&r| Json::Num(r)).collect()),
            ),
            ("objective", Json::Num(i.objective)),
            ("lambda", Json::Num(i.lambda)),
            ("active_monitors", Json::UInt(i.active_monitors as u64)),
            ("kkt", Json::Bool(i.kkt)),
        ]),
    }
}

fn theta_from_json(v: &Json) -> Result<f64, String> {
    let theta = v
        .get("theta")
        .and_then(Json::as_f64)
        .ok_or("missing or non-numeric 'theta'")?;
    if !(theta.is_finite() && theta > 0.0) {
        return Err(format!("theta must be positive and finite, got {theta}"));
    }
    Ok(theta)
}

fn failed_from_json(v: &Json, base: &Topology) -> Result<Vec<(String, String)>, String> {
    let arr = v
        .get("failed")
        .and_then(Json::as_arr)
        .ok_or("missing 'failed' array")?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let p = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or("each failed fibre must be a 2-element array")?;
        let (a, b) = match (p[0].as_str(), p[1].as_str()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err("fibre endpoints must be strings".into()),
        };
        for name in [a, b] {
            if base.node_by_name(name).is_none() {
                return Err(format!("unknown node '{name}' in failed fibre"));
            }
        }
        out.push(canonical_pair(a, b));
    }
    Ok(out)
}

fn ods_from_json(v: &Json, base: &Topology) -> Result<Vec<OdSpec>, String> {
    let arr = v
        .get("ods")
        .and_then(Json::as_arr)
        .ok_or("missing 'ods' array")?;
    if arr.is_empty() {
        return Err("OD set must not be empty".into());
    }
    let mut out: Vec<OdSpec> = Vec::with_capacity(arr.len());
    for od in arr {
        let field = |key: &str| {
            od.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("OD entry missing string '{key}'"))
        };
        let name = field("name")?;
        let src = field("src")?;
        let dst = field("dst")?;
        let size = od
            .get("size")
            .and_then(Json::as_f64)
            .ok_or("OD entry missing numeric 'size'")?;
        if !(size.is_finite() && size > 1.0) {
            return Err(format!("OD '{name}' size must exceed 1 packet, got {size}"));
        }
        for node in [&src, &dst] {
            if base.node_by_name(node).is_none() {
                return Err(format!("unknown node '{node}' in OD '{name}'"));
            }
        }
        if out.iter().any(|o| o.name == name) {
            return Err(format!("duplicate OD name '{name}'"));
        }
        out.push(OdSpec {
            name,
            src,
            dst,
            size,
        });
    }
    Ok(out)
}

fn installed_from_json(v: &Json, num_links: usize) -> Result<Option<Installed>, String> {
    let inst = match v.get("installed") {
        None => return Err("missing 'installed' field".into()),
        Some(Json::Null) => return Ok(None),
        Some(inst) => inst,
    };
    let rates = inst
        .get("rates")
        .and_then(Json::as_arr)
        .ok_or("installed configuration missing 'rates' array")?;
    if rates.len() != num_links {
        return Err(format!(
            "installed rate vector has {} entries, topology has {num_links} links",
            rates.len()
        ));
    }
    let mut rates_base = Vec::with_capacity(rates.len());
    for r in rates {
        let r = r.as_f64().ok_or("non-numeric sampling rate")?;
        if !(r.is_finite() && (0.0..=1.0).contains(&r)) {
            return Err(format!("sampling rate {r} outside [0, 1]"));
        }
        rates_base.push(r);
    }
    let num = |key: &str| {
        inst.get(key)
            .and_then(Json::as_f64)
            .filter(|x| x.is_finite())
            .ok_or(format!("installed configuration missing finite '{key}'"))
    };
    Ok(Some(Installed {
        rates_base,
        objective: num("objective")?,
        lambda: num("lambda")?,
        active_monitors: inst
            .get("active_monitors")
            .and_then(Json::as_u64)
            .ok_or("installed configuration missing integer 'active_monitors'")?
            as usize,
        kkt: inst
            .get("kkt")
            .and_then(Json::as_bool)
            .ok_or("installed configuration missing boolean 'kkt'")?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nws_core::scenarios::janet_task;

    fn fresh() -> ServiceState {
        let mut s = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        s.resolve(false).unwrap();
        s
    }

    #[test]
    fn from_task_extracts_spec() {
        let task = janet_task();
        let s = ServiceState::from_task(&task, PlacementConfig::default());
        assert_eq!(s.ods().len(), 20);
        assert_eq!(s.theta(), task.theta());
        assert_eq!(s.ods()[0].name, "JANET-NL");
        assert_eq!(s.ods()[0].src, "JANET");
        assert!(s.installed().is_none());
        // The rebuilt task matches the original.
        let (rebuilt, _) = s.rebuild().unwrap();
        assert_eq!(rebuilt.ods().len(), task.ods().len());
        for (a, b) in rebuilt.link_loads().iter().zip(task.link_loads()) {
            assert!((a - b).abs() < 1e-6 * b.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn first_resolve_is_cold_then_warm() {
        let mut s = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        let first = s.resolve(false).unwrap();
        assert!(!first.warm_started);
        assert!(first.kkt);
        assert!(first.objective_delta.is_none());
        let again = s.resolve(true).unwrap();
        assert!(again.warm_started);
        assert!(again.kkt);
        // Re-solving an unchanged spec from its own optimum is near-free.
        let cold = again.cold.expect("shadow requested");
        assert!(again.iterations <= cold.iterations);
        assert!((again.objective - cold.objective).abs() < 1e-8);
    }

    #[test]
    fn demand_update_triggers_warm_resolve() {
        let mut s = fresh();
        let before = s.installed().unwrap().objective;
        let report = s
            .apply_event(
                &Request::UpdateDemand {
                    od: "JANET-NL".into(),
                    size: 30_000.0 * 300.0 * 1.2,
                },
                true,
            )
            .unwrap();
        assert!(report.warm_started);
        assert!(report.kkt);
        assert!(report.objective_delta.unwrap().abs() > 0.0);
        assert_ne!(s.installed().unwrap().objective, before);
        let cold = report.cold.unwrap();
        assert!((report.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn batched_demand_update_is_one_rebuild_and_one_warm_resolve() {
        // Regression for the per-event rebuild audit: N queued
        // `update_demand` lines cost N epoch rebuilds (one per re-solve),
        // while one `update_demands` batch of N entries must cost exactly
        // one. Counted through the obs recorder the daemon installs.
        let updates: Vec<(String, f64)> = (1..=5)
            .map(|i| {
                (
                    format!("JANET-{}", ["NL", "DE", "FR", "IT", "ES"][i - 1]),
                    1e6 * i as f64,
                )
            })
            .collect();

        let rebuilds_during = |f: &dyn Fn(&mut ServiceState)| {
            let recorder = Recorder::enabled();
            let mut s = fresh();
            s.set_recorder(recorder.clone());
            let count = |r: &Recorder| {
                r.snapshot()
                    .counter("state_epoch_rebuilds_total")
                    .unwrap_or(0)
            };
            let before = count(&recorder);
            f(&mut s);
            (count(&recorder) - before, s)
        };

        let (batched_rebuilds, s_batched) = rebuilds_during(&|s| {
            let report = s
                .apply_event(
                    &Request::UpdateDemands {
                        updates: updates.clone(),
                    },
                    false,
                )
                .unwrap();
            assert!(report.warm_started);
            assert!(report.kkt);
        });
        assert_eq!(batched_rebuilds, 1, "one batch = one epoch rebuild");

        let (sequential_rebuilds, s_seq) = rebuilds_during(&|s| {
            for (od, size) in &updates {
                s.apply_event(
                    &Request::UpdateDemand {
                        od: od.clone(),
                        size: *size,
                    },
                    false,
                )
                .unwrap();
            }
        });
        assert_eq!(sequential_rebuilds, updates.len() as u64);

        // Both roads end at the same spec and (near-)identical optimum.
        assert_eq!(s_batched.ods(), s_seq.ods());
        let (ob, os) = (
            s_batched.installed().unwrap().objective,
            s_seq.installed().unwrap().objective,
        );
        assert!((ob - os).abs() < 1e-6 * os.abs().max(1.0), "{ob} vs {os}");
    }

    #[test]
    fn mixed_demand_batch_rejected_atomically() {
        let mut s = fresh();
        let size_before: Vec<f64> = s.ods().iter().map(|o| o.size).collect();
        let obj_before = s.installed().unwrap().objective;
        for updates in [
            // Unknown OD after a valid entry.
            vec![("JANET-NL".to_string(), 2e6), ("NOPE".to_string(), 2e6)],
            // Invalid size after a valid entry.
            vec![("JANET-NL".to_string(), 2e6), ("JANET-DE".to_string(), 0.5)],
            // Duplicate within the batch.
            vec![("JANET-NL".to_string(), 2e6), ("JANET-NL".to_string(), 3e6)],
            // Empty batch.
            vec![],
        ] {
            assert!(
                s.apply_event(
                    &Request::UpdateDemands {
                        updates: updates.clone()
                    },
                    false
                )
                .is_err(),
                "accepted {updates:?}"
            );
            let now: Vec<f64> = s.ods().iter().map(|o| o.size).collect();
            assert_eq!(now, size_before, "partial batch applied");
            assert_eq!(s.installed().unwrap().objective, obj_before);
        }
    }

    #[test]
    fn mutate_spec_defers_the_resolve() {
        let mut s = fresh();
        let obj = s.installed().unwrap().objective;
        s.mutate_spec(&Request::UpdateDemands {
            updates: vec![("JANET-NL".into(), 3e6)],
        })
        .unwrap();
        // Spec moved, installed configuration untouched…
        assert_eq!(s.ods()[0].size, 3e6);
        assert_eq!(s.installed().unwrap().objective, obj);
        // …and the delivered objective is now evaluated against the *new*
        // task, so it no longer matches the stale installing solve.
        let (delivered, utilities) = s.evaluate_installed().unwrap();
        assert_eq!(utilities.len(), s.ods().len());
        assert!((delivered - obj).abs() > 1e-9);
        // An explicit resolve catches the spec up again.
        let report = s.resolve(false).unwrap();
        assert!(report.warm_started && report.kkt);
        let (delivered, _) = s.evaluate_installed().unwrap();
        assert!((delivered - report.objective).abs() < 1e-9);
    }

    #[test]
    fn fail_and_restore_roundtrip() {
        let mut s = fresh();
        let base_obj = s.installed().unwrap().objective;
        let fail = Request::FailLink {
            a: "FR".into(),
            b: "LU".into(),
        };
        let report = s.apply_event(&fail, false).unwrap();
        assert!(report.kkt);
        assert_eq!(s.failed_fibres().len(), 1);
        // Double-failure rejected, state untouched.
        assert!(s.apply_event(&fail, false).is_err());
        assert_eq!(s.failed_fibres().len(), 1);
        let restore = Request::RestoreLink {
            a: "LU".into(), // endpoint order must not matter
            b: "FR".into(),
        };
        let report = s.apply_event(&restore, false).unwrap();
        assert!(report.kkt);
        assert!(s.failed_fibres().is_empty());
        assert!((s.installed().unwrap().objective - base_obj).abs() < 1e-6);
    }

    #[test]
    fn failed_event_leaves_state_intact() {
        let mut s = fresh();
        let obj = s.installed().unwrap().objective;
        // Unknown OD.
        assert!(s
            .apply_event(
                &Request::UpdateDemand {
                    od: "NOPE".into(),
                    size: 1e6
                },
                false
            )
            .is_err());
        // θ infeasible (beyond total candidate load): solver rejects, the
        // transaction rolls back.
        assert!(s
            .apply_event(&Request::SetTheta { theta: 1e18 }, false)
            .is_err());
        assert_eq!(s.installed().unwrap().objective, obj);
        assert_eq!(s.theta(), janet_task().theta());
    }

    #[test]
    fn add_remove_od() {
        let mut s = fresh();
        let add = Request::AddOd {
            name: "UK-DE".into(),
            src: "UK".into(),
            dst: "DE".into(),
            size: 5_000.0,
        };
        let report = s.apply_event(&add, false).unwrap();
        assert!(report.kkt);
        assert_eq!(s.ods().len(), 21);
        // Duplicate name rejected.
        assert!(s.apply_event(&add, false).is_err());
        let report = s
            .apply_event(
                &Request::RemoveOd {
                    name: "UK-DE".into(),
                },
                false,
            )
            .unwrap();
        assert!(report.kkt);
        assert_eq!(s.ods().len(), 20);
    }

    #[test]
    fn snapshot_rollback_restores_spec_and_solution() {
        let mut s = fresh();
        let obj0 = s.installed().unwrap().objective;
        assert_eq!(s.snapshot(), 1);
        s.apply_event(&Request::SetTheta { theta: 50_000.0 }, false)
            .unwrap();
        s.apply_event(
            &Request::FailLink {
                a: "FR".into(),
                b: "LU".into(),
            },
            false,
        )
        .unwrap();
        assert_ne!(s.installed().unwrap().objective, obj0);
        let (depth, restored) = s.rollback().unwrap();
        assert_eq!(depth, 0);
        assert_eq!(restored, Some(obj0));
        assert_eq!(s.theta(), janet_task().theta());
        assert!(s.failed_fibres().is_empty());
        assert!(s.rollback().is_err());
    }

    #[test]
    fn queries_report_installed_configuration() {
        let s = fresh();
        let rates = s.active_rates().unwrap();
        assert!(!rates.is_empty());
        assert!(rates.iter().all(|&(_, p)| p > 0.0 && p <= 1.0));
        let (mean, worst, best) = s.accuracy(5, 1).unwrap();
        assert!(worst <= mean && mean <= best);
        assert!(best <= 1.0 + 1e-9);
    }

    #[test]
    fn non_mutating_command_rejected_as_event() {
        let mut s = fresh();
        assert!(s.apply_event(&Request::Ping, false).is_err());
    }

    #[test]
    fn exhausted_budget_keeps_last_good_rates_but_lands_the_mutation() {
        let mut s = fresh();
        let rates_before = s.installed().unwrap().rates_base.clone();
        let obj_before = s.installed().unwrap().objective;
        // A zero-iteration cap degrades both the warm attempt and the cold
        // escalation deterministically.
        s.set_chaos(SolverChaos::new().with_max_iters(0));
        let report = s
            .apply_event(&Request::SetTheta { theta: 50_000.0 }, false)
            .unwrap();
        assert!(report.degraded);
        assert!(!report.kkt);
        assert_eq!(report.fallback, Some("last_good"));
        // The spec mutation landed; the served rates did not move.
        assert_eq!(s.theta(), 50_000.0);
        let inst = s.installed().unwrap();
        assert!(inst.kkt, "last-good configuration stays certified");
        assert_eq!(inst.objective, obj_before);
        for (a, b) in inst.rates_base.iter().zip(&rates_before) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Lifting the cap re-certifies on the next event.
        s.set_chaos(SolverChaos::new());
        let report = s
            .apply_event(&Request::SetTheta { theta: 60_000.0 }, false)
            .unwrap();
        assert!(!report.degraded);
        assert!(report.kkt);
        assert_eq!(report.fallback, None);
        assert!(s.installed().unwrap().kkt);
    }

    #[test]
    fn degraded_startup_installs_best_effort_rates() {
        // With nothing installed there is no last-good to fall back on:
        // the feasible-but-uncertified point is served rather than nothing.
        let mut s = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        s.set_chaos(SolverChaos::new().with_max_iters(0));
        let report = s.resolve(false).unwrap();
        assert!(report.degraded);
        assert_eq!(report.fallback, None);
        let inst = s.installed().expect("best-effort rates installed");
        assert!(!inst.kkt);
        assert!(inst.rates_base.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn chaos_panic_fires_exactly_once_across_clones() {
        let mut s = fresh();
        s.set_chaos(SolverChaos::new().with_panic_on_resolve(0));
        // The first resolve after arming panics…
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.resolve(false);
        }));
        assert!(panicked.is_err());
        // …and the shared counter means a clone cannot re-trigger it, so
        // the daemon's retry of the *next* event succeeds.
        let report = s
            .apply_event(&Request::SetTheta { theta: 70_000.0 }, false)
            .unwrap();
        assert!(report.kkt);
    }

    #[test]
    fn persisted_roundtrip_is_bit_exact() {
        let mut s = fresh();
        s.snapshot();
        s.apply_event(&Request::SetTheta { theta: 90_000.0 }, false)
            .unwrap();
        s.apply_event(
            &Request::FailLink {
                a: "FR".into(),
                b: "LU".into(),
            },
            false,
        )
        .unwrap();
        let doc = s.persisted();

        let mut restored = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        restored.restore_persisted(&doc).unwrap();
        // The document re-encodes identically after a restore…
        assert_eq!(restored.persisted().encode(), doc.encode());
        // …and the rate vector survives the JSON round trip bit-for-bit.
        let original = &s.installed().unwrap().rates_base;
        let recovered = &restored.installed().unwrap().rates_base;
        assert_eq!(original.len(), recovered.len());
        for (a, b) in original.iter().zip(recovered) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(restored.theta(), 90_000.0);
        assert_eq!(restored.failed_fibres().len(), 1);
        assert_eq!(restored.snapshot_depth(), 1);
        // The restored snapshot stack is live: rollback reinstates the
        // pre-mutation objective.
        let obj0 = doc.get("stack").unwrap().as_arr().unwrap()[0]
            .get("installed")
            .unwrap()
            .get("objective")
            .unwrap()
            .as_f64()
            .unwrap();
        let (_, rolled) = restored.rollback().unwrap();
        assert_eq!(rolled, Some(obj0));
    }

    #[test]
    fn restore_rejects_malformed_documents() {
        let base = fresh();
        let good = base.persisted();
        let mut s = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        type Pairs = Vec<(String, Json)>;
        let corrupt = |edit: &dyn Fn(&mut Pairs)| {
            let mut doc = good.clone();
            if let Json::Obj(pairs) = &mut doc {
                edit(pairs);
            }
            doc
        };
        let cases: Vec<Json> =
            vec![
                corrupt(&|p| p.retain(|(k, _)| k != "version")),
                corrupt(&|p| p[0].1 = Json::UInt(2)), // version 2
                corrupt(&|p| p.iter_mut().find(|(k, _)| k == "theta").unwrap().1 = Json::Num(-1.0)),
                corrupt(&|p| p.iter_mut().find(|(k, _)| k == "ods").unwrap().1 = Json::Arr(vec![])),
                corrupt(&|p| {
                    p.iter_mut().find(|(k, _)| k == "failed").unwrap().1 = Json::Arr(vec![
                        Json::Arr(vec![Json::Str("NOPE".into()), Json::Str("UK".into())]),
                    ])
                }),
                corrupt(&|p| {
                    // Rate vector of the wrong length.
                    p.iter_mut().find(|(k, _)| k == "installed").unwrap().1 = obj(vec![
                        ("rates", Json::Arr(vec![Json::Num(0.5)])),
                        ("objective", Json::Num(1.0)),
                        ("lambda", Json::Num(1.0)),
                        ("active_monitors", Json::UInt(1)),
                        ("kkt", Json::Bool(true)),
                    ])
                }),
            ];
        for doc in cases {
            assert!(
                s.restore_persisted(&doc).is_err(),
                "accepted {}",
                doc.encode()
            );
            // A failed restore leaves the state untouched.
            assert!(s.installed().is_none());
        }
        // The pristine document still restores.
        assert!(s.restore_persisted(&good).is_ok());
    }

    #[test]
    fn disconnecting_an_untracked_node_degrades_gracefully() {
        // IE is single-homed to UK in GEANT and no janet OD targets it:
        // failing UK–IE must re-solve fine on the survivor graph…
        let mut s = fresh();
        let fail_ie = Request::FailLink {
            a: "UK".into(),
            b: "IE".into(),
        };
        let report = s.apply_event(&fail_ie, false).unwrap();
        assert!(report.kkt);
        // …but an OD into the disconnected island is rejected cleanly.
        let od_to_island = Request::AddOd {
            name: "JANET-IE".into(),
            src: "JANET".into(),
            dst: "IE".into(),
            size: 5_000.0,
        };
        assert!(s.apply_event(&od_to_island, false).is_err());
        assert_eq!(s.ods().len(), 20);
        assert_eq!(s.failed_fibres().len(), 1);

        // Conversely: with the OD tracked first, the failure that would
        // strand it is rejected and the state stays whole.
        s.apply_event(
            &Request::RestoreLink {
                a: "UK".into(),
                b: "IE".into(),
            },
            false,
        )
        .unwrap();
        s.apply_event(&od_to_island, false).unwrap();
        assert_eq!(s.ods().len(), 21);
        assert!(s.apply_event(&fail_ie, false).is_err());
        assert!(s.failed_fibres().is_empty());
        assert!(s.installed().is_some());
    }
}
