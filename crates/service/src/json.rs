//! Minimal hand-rolled JSON: a value type, a recursive-descent parser, and
//! a deterministic encoder.
//!
//! The workspace builds with `CARGO_NET_OFFLINE=true` and vendors no serde,
//! so the service protocol carries its own JSON layer — the write side
//! extends the emitter style of `eval_bench.rs` into a reusable encoder,
//! and the read side is a strict parser for the protocol subset: objects,
//! arrays, strings (with `\uXXXX` escapes), finite numbers, booleans, null.
//!
//! Intentional deviations from full RFC 8259, documented here so nobody
//! trips on them later: no non-finite numbers on either side (encoding a
//! NaN/∞ produces `null`), object keys keep *insertion order* (encoding is
//! deterministic, which the tests and the bench reports rely on), and
//! duplicate keys are rejected at parse time instead of last-wins.
//!
//! Numbers: unsigned integer literals parse into the exact [`Json::UInt`]
//! variant (full `u64` range — counters past 2^53 survive a round trip
//! bit-exactly), everything else into `f64` [`Json::Num`]; the two compare
//! equal when numerically equal, mirroring JSON's single number type.
//!
//! Strings: `\uXXXX` escapes decode UTF-16 surrogate *pairs* into the
//! astral-plane character they encode (RFC 8259 §7); lone surrogates are
//! rejected with an explicit error rather than smuggled through. The
//! encoder emits astral characters as raw UTF-8 (never as surrogate-pair
//! escapes), which round-trips through the parser unchanged.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order (`Vec` of pairs,
/// not a map) so encoding is deterministic.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A general number (an `f64`, as in JavaScript).
    Num(f64),
    /// An exact unsigned integer. JSON has a single number type, so this is
    /// a fidelity distinction, not a semantic one: `u64` counters encode
    /// and re-parse bit-exactly where a round trip through `f64` would
    /// silently round above 2^53. Compares numerically equal to [`Json::Num`].
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            // JSON has one number type; an integer that happens to have
            // parsed into the exact variant still equals its f64 spelling.
            (Json::Num(a), Json::UInt(b)) | (Json::UInt(b), Json::Num(a)) => *a == *b as f64,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            _ => false,
        }
    }
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one. Exact integers larger than 2^53
    /// round to the nearest representable `f64`; use [`Json::as_u64`] when
    /// exactness matters.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: any [`Json::UInt`], or a
    /// [`Json::Num`] that is a nonnegative integer small enough (≤ 2^53)
    /// for its `f64` representation to be exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact single-line JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0" — the
                    // protocol's counters read naturally that way.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an object value from key–value pairs; the ergonomic constructor
/// for response assembly.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses one JSON document, requiring it to consume the whole input.
///
/// # Errors
/// A message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

/// Deepest container nesting the parser accepts. The protocol itself uses
/// two or three levels; the cap exists so a hostile `[[[[…` line degrades
/// into a parse error instead of a recursion-driven stack overflow (which
/// would take the whole daemon down — exactly what the fault-isolation
/// layer must prevent).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err(&format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return self.err(&format!("duplicate key '{key}'"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: RFC 8259 encodes astral
                                // characters as a \uD8xx\uDCxx pair; decode
                                // the pair into one char.
                                if self.bytes.get(self.pos + 5) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 6) != Some(&b'u')
                                {
                                    return Err(format!(
                                        "lone high surrogate \\u{code:04x} at byte {} \
                                         (expected a \\uDC00-\\uDFFF low surrogate escape)",
                                        self.pos
                                    ));
                                }
                                let low = self.hex4(self.pos + 7)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{code:04x} followed by \\u{low:04x} \
                                         at byte {} (not a low surrogate)",
                                        self.pos
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                // A valid surrogate pair always combines to
                                // U+10000..=U+10FFFF, but this decoder runs on
                                // untrusted socket bytes in the daemon's reader
                                // thread (no catch_unwind above it), so a logic
                                // slip must surface as an error, not a panic.
                                let c = char::from_u32(combined).ok_or_else(|| {
                                    format!(
                                        "surrogate pair \\u{code:04x}\\u{low:04x} decodes \
                                         outside Unicode at byte {}",
                                        self.pos
                                    )
                                })?;
                                out.push(c);
                                self.pos += 10;
                            } else if (0xDC00..=0xDFFF).contains(&code) {
                                return Err(format!(
                                    "lone low surrogate \\u{code:04x} at byte {} \
                                     (low surrogates are only valid after a high surrogate)",
                                    self.pos
                                ));
                            } else {
                                // Non-surrogate BMP scalars are always valid
                                // chars; same defensive-typed-error stance as
                                // the surrogate-pair branch above.
                                let c = char::from_u32(code).ok_or_else(|| {
                                    format!("\\u{code:04x} is not a Unicode scalar")
                                })?;
                                out.push(c);
                                self.pos += 4;
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character. Infallible even on hostile
                    // input: `bytes` came from a `&str` (valid UTF-8 by
                    // construction) and `pos` only ever advances by whole
                    // `len_utf8` steps or across single-byte ASCII, so it is
                    // always on a character boundary; `peek()` returned `Some`,
                    // so the remainder is non-empty.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape starting at `at`.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let hex =
            std::str::from_utf8(hex).map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at byte {}", self.pos))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // Infallible: every byte consumed above matched an ASCII pattern
        // (digits, sign, dot, exponent), so the slice is valid UTF-8.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain unsigned integer literals keep exact u64 fidelity (counters
        // past 2^53 would silently round through f64). Anything else —
        // signs, fractions, exponents, or beyond-u64 digits — takes the
        // f64 path.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number '{text}' at byte {start}"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"cmd":"update_demand","od":"JANET-NL","size":1.5e6,"tags":["a","b"],"deep":{"ok":true,"x":null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("update_demand"));
        assert_eq!(v.get("size").unwrap().as_f64(), Some(1.5e6));
        assert_eq!(v.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("deep").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        // Encoding is deterministic and reparses to the same value.
        let encoded = v.encode();
        assert_eq!(parse(&encoded).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("line\nquote\"back\\slash\ttab\u{1}".into());
        let encoded = v.encode();
        assert_eq!(parse(&encoded).unwrap(), v);
        assert!(encoded.contains("\\u0001"));
    }

    #[test]
    fn unicode_escape_parses() {
        let v = parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn numbers_encode_compactly() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(-0.5).encode(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn surrogate_pairs_decode_and_roundtrip() {
        // U+1F600 (grinning face) escaped as its UTF-16 pair D83D/DE00.
        let v = parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // The encoder emits raw UTF-8, which reparses to the same value.
        let encoded = v.encode();
        assert_eq!(encoded, "\"\u{1F600}\"");
        assert_eq!(parse(&encoded).unwrap(), v);
        // Pairs embedded mid-string, next to other escapes; U+10000 is the
        // lowest astral codepoint (pair D800/DC00).
        let v = parse("\"x\\uD83D\\uDE00\\ty\\uD800\\uDC00\"").unwrap();
        assert_eq!(v.as_str(), Some("x\u{1F600}\ty\u{10000}"));
        assert_eq!(parse(&v.encode()).unwrap(), v);
        // Raw astral characters in the input also pass through.
        assert_eq!(parse("\"\u{1F600}\"").unwrap().as_str(), Some("\u{1F600}"));
        // Lowercase hex digits work too.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn lone_surrogates_rejected_with_clear_error() {
        let high = parse(r#""\uD83D""#).unwrap_err();
        assert!(high.contains("lone high surrogate \\ud83d"), "{high}");
        let low = parse(r#""\uDE00""#).unwrap_err();
        assert!(low.contains("lone low surrogate \\ude00"), "{low}");
        // High surrogate followed by a \u escape that isn't a low surrogate.
        let pair = parse("\"\\uD83D\\u0041\"").unwrap_err();
        assert!(pair.contains("not a low surrogate"), "{pair}");
        // High surrogate followed by plain characters (no second escape).
        let bare = parse(r#""\uD83Dxy""#).unwrap_err();
        assert!(bare.contains("lone high surrogate"), "{bare}");
        // Truncated pair at end of string.
        assert!(parse(r#""\uD83D\u00""#).is_err());
    }

    #[test]
    fn u64_counters_roundtrip_exactly() {
        let big = (1u64 << 53) + 1; // not representable as f64
        let text = format!("{{\"requests\":{big}}}");
        let v = parse(&text).unwrap();
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(big));
        assert_eq!(v.encode(), text, "exact integer survives a round trip");
        assert_eq!(Json::UInt(u64::MAX).encode(), u64::MAX.to_string());
        assert_eq!(
            parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX),
            "full u64 range parses exactly"
        );
        // Non-integers and negatives still take the f64 path.
        assert_eq!(parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn num_uint_cross_equality() {
        assert_eq!(Json::Num(42.0), Json::UInt(42));
        assert_eq!(Json::UInt(42), Json::Num(42.0));
        assert_ne!(Json::Num(42.5), Json::UInt(42));
        assert_eq!(Json::UInt(42).as_f64(), Some(42.0));
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "{\"a\":1} extra",
            "{\"a\":1,\"a\":2}",
            "1e999",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_capped_without_overflowing_the_stack() {
        let nest = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        // Comfortably deep documents still parse…
        assert!(parse(&nest(100)).is_ok());
        assert!(parse(&nest(MAX_DEPTH)).is_ok());
        // …one past the cap errors, and a pathological bomb is an error
        // too, not a stack overflow.
        let err = parse(&nest(MAX_DEPTH + 1)).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        assert!(parse(&"[".repeat(100_000)).is_err());
        let objs = format!("{}1{}", "{\"k\":".repeat(50_000), "}".repeat(50_000));
        assert!(parse(&objs).is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse(" [ ] ").unwrap().encode(), "[]");
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(Json::Null.get("x").is_none());
        assert!(Json::Arr(vec![]).get("x").is_none());
        assert!(parse("{\"a\":1}").unwrap().get("b").is_none());
    }

    #[test]
    fn obj_helper_preserves_order() {
        let v = obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.encode(), "{\"z\":1,\"a\":2}");
    }
}
