//! Minimal hand-rolled JSON: a value type, a recursive-descent parser, and
//! a deterministic encoder.
//!
//! The workspace builds with `CARGO_NET_OFFLINE=true` and vendors no serde,
//! so the service protocol carries its own JSON layer — the write side
//! extends the emitter style of `eval_bench.rs` into a reusable encoder,
//! and the read side is a strict parser for the protocol subset: objects,
//! arrays, strings (with `\uXXXX` escapes), finite numbers, booleans, null.
//!
//! Intentional deviations from full RFC 8259, documented here so nobody
//! trips on them later: no non-finite numbers on either side (encoding a
//! NaN/∞ produces `null`), object keys keep *insertion order* (encoding is
//! deterministic, which the tests and the bench reports rely on), and
//! duplicate keys are rejected at parse time instead of last-wins.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order (`Vec` of pairs,
/// not a map) so encoding is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`, as in JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact single-line JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integral values print without a trailing ".0" — the
                    // protocol's counters read naturally that way.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an object value from key–value pairs; the ergonomic constructor
/// for response assembly.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses one JSON document, requiring it to consume the whole input.
///
/// # Errors
/// A message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return self.err(&format!("duplicate key '{key}'"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u escape at {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u escape at {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at {}", self.pos))?;
                            // Surrogates are rejected (the protocol is BMP
                            // text; no pair decoding).
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint at {}", self.pos))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number '{text}' at byte {start}"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"cmd":"update_demand","od":"JANET-NL","size":1.5e6,"tags":["a","b"],"deep":{"ok":true,"x":null}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("cmd").unwrap().as_str(), Some("update_demand"));
        assert_eq!(v.get("size").unwrap().as_f64(), Some(1.5e6));
        assert_eq!(v.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("deep").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        // Encoding is deterministic and reparses to the same value.
        let encoded = v.encode();
        assert_eq!(parse(&encoded).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("line\nquote\"back\\slash\ttab\u{1}".into());
        let encoded = v.encode();
        assert_eq!(parse(&encoded).unwrap(), v);
        assert!(encoded.contains("\\u0001"));
    }

    #[test]
    fn unicode_escape_parses() {
        let v = parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn numbers_encode_compactly() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(-0.5).encode(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "{\"a\":1} extra",
            "{\"a\":1,\"a\":2}",
            "1e999",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse(" [ ] ").unwrap().encode(), "[]");
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert!(Json::Null.get("x").is_none());
        assert!(Json::Arr(vec![]).get("x").is_none());
        assert!(parse("{\"a\":1}").unwrap().get("b").is_none());
    }

    #[test]
    fn obj_helper_preserves_order() {
        let v = obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.encode(), "{\"z\":1,\"a\":2}");
    }
}
