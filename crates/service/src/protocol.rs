//! Request grammar of the control plane: one JSON object per line.
//!
//! Every request carries a `"cmd"` discriminator; the remaining fields are
//! command-specific. See `DESIGN.md` §8 for the full grammar. Responses are
//! assembled by the daemon (`crate::daemon`) as [`crate::json::Json`]
//! objects and always carry `"ok"` plus either the command's payload or an
//! `"error"` string.

use crate::json::{obj, parse, Json};

/// One decoded control-plane request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Replace the size (packets/interval) of a tracked OD pair.
    UpdateDemand {
        /// OD display name, e.g. `"JANET-NL"`.
        od: String,
        /// New ground-truth size in packets per interval.
        size: f64,
    },
    /// Replace the sizes of several tracked OD pairs in one transaction.
    ///
    /// The whole batch is one event: one epoch rebuild, one warm re-solve,
    /// one WAL record. A batch with any invalid entry (unknown OD, bad
    /// size, duplicate OD within the batch) is rejected atomically — no
    /// partial application.
    UpdateDemands {
        /// `(od name, new size)` pairs; non-empty, names unique.
        updates: Vec<(String, f64)>,
    },
    /// Fail the fibre between two PoPs (both directions).
    FailLink {
        /// One endpoint node name.
        a: String,
        /// The other endpoint node name.
        b: String,
    },
    /// Restore a previously failed fibre.
    RestoreLink {
        /// One endpoint node name.
        a: String,
        /// The other endpoint node name.
        b: String,
    },
    /// Start tracking a new OD pair.
    AddOd {
        /// Display name (must be unique).
        name: String,
        /// Origin node name.
        src: String,
        /// Destination node name.
        dst: String,
        /// Ground-truth size in packets per interval.
        size: f64,
    },
    /// Stop tracking an OD pair.
    RemoveOd {
        /// Display name of the pair to drop.
        name: String,
    },
    /// Change the network-wide sampling budget θ.
    SetTheta {
        /// New budget in sampled packets per interval.
        theta: f64,
    },
    /// Report the currently installed sampling rates (active monitors only).
    QueryRates,
    /// Monte-Carlo accuracy evaluation of the installed configuration.
    QueryAccuracy {
        /// Number of simulated measurement runs.
        runs: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Push the current state (topology events, OD set, θ, solution) onto
    /// the snapshot stack.
    Snapshot,
    /// Pop the snapshot stack and reinstall that state, without re-solving.
    Rollback,
    /// Report daemon counters (requests, re-solves, iteration savings).
    Stats,
    /// Report the observability snapshot: per-command latency histograms,
    /// solver-phase span timings, evaluation fan-out counters.
    Metrics,
    /// Health probe: serving status, persistence mode, degraded-solve and
    /// queue-pressure counters. Mutates nothing; meant for load balancers
    /// and operators, so it must answer even when the daemon is degraded.
    Health,
    /// Liveness probe; mutates nothing.
    Ping,
    /// Stop the daemon after acknowledging.
    Shutdown,
}

impl Request {
    /// The wire name of the command (matches the `"cmd"` field).
    pub fn name(&self) -> &'static str {
        match self {
            Request::UpdateDemand { .. } => "update_demand",
            Request::UpdateDemands { .. } => "update_demands",
            Request::FailLink { .. } => "fail_link",
            Request::RestoreLink { .. } => "restore_link",
            Request::AddOd { .. } => "add_od",
            Request::RemoveOd { .. } => "remove_od",
            Request::SetTheta { .. } => "set_theta",
            Request::QueryRates => "query_rates",
            Request::QueryAccuracy { .. } => "query_accuracy",
            Request::Snapshot => "snapshot",
            Request::Rollback => "rollback",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Health => "health",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    /// Whether the request mutates network state (and therefore triggers a
    /// re-solve on success).
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Request::UpdateDemand { .. }
                | Request::UpdateDemands { .. }
                | Request::FailLink { .. }
                | Request::RestoreLink { .. }
                | Request::AddOd { .. }
                | Request::RemoveOd { .. }
                | Request::SetTheta { .. }
        )
    }

    /// Whether the request changes recoverable daemon state: the mutating
    /// commands plus `snapshot`/`rollback`, which move the snapshot stack.
    /// Exactly these are journaled into the write-ahead log.
    pub fn is_state_changing(&self) -> bool {
        self.is_mutating() || matches!(self, Request::Snapshot | Request::Rollback)
    }

    /// Whether the request is answerable from the published read snapshot
    /// (the lock-free read path): no state change, no expensive rebuild.
    /// `query_accuracy` is deliberately excluded — read-only but costly
    /// (Monte-Carlo runs), so it stays on the bounded queue.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            Request::QueryRates
                | Request::Stats
                | Request::Health
                | Request::Metrics
                | Request::Ping
        )
    }

    /// Re-encodes the request as its wire JSON object — the inverse of
    /// [`parse_request`] up to field order. This is what the write-ahead
    /// log stores, so replaying a journal goes through the same protocol
    /// boundary (and the same validation) as the original traffic.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("cmd", Json::Str(self.name().into()))];
        match self {
            Request::UpdateDemand { od, size } => {
                pairs.push(("od", Json::Str(od.clone())));
                pairs.push(("size", Json::Num(*size)));
            }
            Request::UpdateDemands { updates } => {
                pairs.push((
                    "updates",
                    Json::Arr(
                        updates
                            .iter()
                            .map(|(od, size)| {
                                Json::Arr(vec![Json::Str(od.clone()), Json::Num(*size)])
                            })
                            .collect(),
                    ),
                ));
            }
            Request::FailLink { a, b } | Request::RestoreLink { a, b } => {
                pairs.push(("a", Json::Str(a.clone())));
                pairs.push(("b", Json::Str(b.clone())));
            }
            Request::AddOd {
                name,
                src,
                dst,
                size,
            } => {
                pairs.push(("name", Json::Str(name.clone())));
                pairs.push(("src", Json::Str(src.clone())));
                pairs.push(("dst", Json::Str(dst.clone())));
                pairs.push(("size", Json::Num(*size)));
            }
            Request::RemoveOd { name } => {
                pairs.push(("name", Json::Str(name.clone())));
            }
            Request::SetTheta { theta } => {
                pairs.push(("theta", Json::Num(*theta)));
            }
            Request::QueryAccuracy { runs, seed } => {
                pairs.push(("runs", Json::UInt(*runs as u64)));
                pairs.push(("seed", Json::UInt(*seed)));
            }
            Request::QueryRates
            | Request::Snapshot
            | Request::Rollback
            | Request::Stats
            | Request::Metrics
            | Request::Health
            | Request::Ping
            | Request::Shutdown => {}
        }
        obj(pairs)
    }
}

/// Upper bound on a client-supplied `request_id`, in bytes. Generous for
/// any sane key scheme (`<client>-<counter>` is ~25 bytes) while keeping a
/// hostile line from parking kilobytes per entry in the dedup window.
pub const MAX_REQUEST_ID_BYTES: usize = 128;

/// One decoded request line *with its envelope*: the command itself plus
/// the optional client-generated `request_id` idempotency key (see
/// FORMATS.md). The daemon dedups state-changing requests on the key and
/// replays the original acknowledgement for duplicates, which is what
/// makes client retries across reconnects exactly-once.
#[derive(Debug, Clone, PartialEq)]
pub struct Incoming {
    /// The decoded command.
    pub req: Request,
    /// Client-generated idempotency key, echoed on the response.
    pub request_id: Option<String>,
}

impl Incoming {
    /// Wraps a request with no idempotency key (internal traffic, tests).
    pub fn bare(req: Request) -> Self {
        Incoming {
            req,
            request_id: None,
        }
    }

    /// The dedup key, present only when this request both carries a
    /// `request_id` *and* changes state — reads are naturally idempotent,
    /// so deduping them would only burn window entries.
    pub fn dedup_key(&self) -> Option<&str> {
        if self.req.is_state_changing() {
            self.request_id.as_deref()
        } else {
            None
        }
    }
}

/// Validates the optional `request_id` envelope field: when present it
/// must be a non-empty string of at most [`MAX_REQUEST_ID_BYTES`] bytes.
fn request_id_field(v: &Json) -> Result<Option<String>, String> {
    match v.get("request_id") {
        None => Ok(None),
        Some(Json::Str(id)) => {
            if id.is_empty() {
                return Err("'request_id' must be a non-empty string".into());
            }
            if id.len() > MAX_REQUEST_ID_BYTES {
                return Err(format!(
                    "'request_id' exceeds {MAX_REQUEST_ID_BYTES} bytes (got {})",
                    id.len()
                ));
            }
            Ok(Some(id.clone()))
        }
        Some(_) => Err("'request_id' must be a string".into()),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn num_field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

/// An OD mean flow size, validated at the protocol boundary: the utility
/// model requires `E[1/S] = 1/size ∈ (0, 1)`, i.e. a finite size > 1
/// packet. Without this check a hostile `add_od`/`update_demand` payload
/// reaches `SreUtility`'s assertions and panics the event loop.
fn size_field(v: &Json, key: &str) -> Result<f64, String> {
    let size = num_field(v, key)?;
    if !size.is_finite() || size <= 1.0 {
        return Err(format!(
            "'{key}' must be a finite mean flow size > 1 packet, got {size}"
        ));
    }
    Ok(size)
}

/// Upper bound on `update_demands` batch length; far above any real OD set
/// but low enough that a hostile line cannot make the event loop chew
/// through an unbounded batch.
const MAX_BATCH: usize = 100_000;

/// The `updates` array of a batched demand update: a non-empty list of
/// `[od, size]` pairs. Sizes pass the same `size_field` bound as single
/// updates; duplicate OD names are rejected here so a mixed batch never
/// reaches the state layer half-valid.
fn updates_field(v: &Json) -> Result<Vec<(String, f64)>, String> {
    let arr = v
        .get("updates")
        .and_then(Json::as_arr)
        .ok_or("missing or non-array field 'updates'")?;
    if arr.is_empty() {
        return Err("'updates' must be a non-empty array".into());
    }
    if arr.len() > MAX_BATCH {
        return Err(format!("'updates' batch exceeds {MAX_BATCH} entries"));
    }
    let mut out: Vec<(String, f64)> = Vec::with_capacity(arr.len());
    for (i, entry) in arr.iter().enumerate() {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or(format!("updates[{i}] must be a 2-element [od, size] array"))?;
        let od = pair[0]
            .as_str()
            .ok_or(format!("updates[{i}] OD name must be a string"))?;
        let size = pair[1]
            .as_f64()
            .ok_or(format!("updates[{i}] size must be numeric"))?;
        if !size.is_finite() || size <= 1.0 {
            return Err(format!(
                "updates[{i}] must be a finite mean flow size > 1 packet, got {size}"
            ));
        }
        if out.iter().any(|(seen, _)| seen == od) {
            return Err(format!("updates[{i}] duplicates OD '{od}' in the batch"));
        }
        out.push((od.to_string(), size));
    }
    Ok(out)
}

fn opt_num_field(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_f64()
            .ok_or_else(|| format!("non-numeric field '{key}'")),
    }
}

/// Parses one request line, dropping the envelope. Prefer
/// [`parse_incoming`] anywhere the `request_id` idempotency key matters
/// (the daemon's transports and WAL replay); this stays as the
/// command-only view for embedders and tests.
///
/// # Errors
/// A human-readable message for JSON syntax errors, missing/ill-typed
/// fields, or unknown commands.
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_incoming(line).map(|inc| inc.req)
}

/// Parses one request line *with* its envelope (`request_id`).
///
/// # Errors
/// Same grammar errors as [`parse_request`], plus an invalid
/// `request_id` field (non-string, empty, or oversized).
pub fn parse_incoming(line: &str) -> Result<Incoming, String> {
    let v = parse(line)?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let request_id = request_id_field(&v)?;
    let req = parse_command(&v)?;
    Ok(Incoming { req, request_id })
}

pub(crate) fn parse_command(v: &Json) -> Result<Request, String> {
    let cmd = str_field(v, "cmd")?;
    match cmd.as_str() {
        "update_demand" => Ok(Request::UpdateDemand {
            od: str_field(v, "od")?,
            size: size_field(v, "size")?,
        }),
        "update_demands" => Ok(Request::UpdateDemands {
            updates: updates_field(v)?,
        }),
        "fail_link" => Ok(Request::FailLink {
            a: str_field(v, "a")?,
            b: str_field(v, "b")?,
        }),
        "restore_link" => Ok(Request::RestoreLink {
            a: str_field(v, "a")?,
            b: str_field(v, "b")?,
        }),
        "add_od" => Ok(Request::AddOd {
            name: str_field(v, "name")?,
            src: str_field(v, "src")?,
            dst: str_field(v, "dst")?,
            size: size_field(v, "size")?,
        }),
        "remove_od" => Ok(Request::RemoveOd {
            name: str_field(v, "name")?,
        }),
        "set_theta" => {
            let theta = num_field(v, "theta")?;
            if !theta.is_finite() || theta <= 0.0 {
                return Err(format!("'theta' must be a finite budget > 0, got {theta}"));
            }
            Ok(Request::SetTheta { theta })
        }
        "query_rates" => Ok(Request::QueryRates),
        "query_accuracy" => {
            let runs = opt_num_field(v, "runs", 20.0)?;
            let seed = opt_num_field(v, "seed", 1.0)?;
            if runs < 1.0 || runs.fract() != 0.0 || runs > 1e6 {
                return Err("'runs' must be a positive integer ≤ 1e6".into());
            }
            if seed < 0.0 || seed.fract() != 0.0 {
                return Err("'seed' must be a non-negative integer".into());
            }
            Ok(Request::QueryAccuracy {
                runs: runs as usize,
                seed: seed as u64,
            })
        }
        "snapshot" => Ok(Request::Snapshot),
        "rollback" => Ok(Request::Rollback),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases = [
            (
                r#"{"cmd":"update_demand","od":"JANET-NL","size":1e6}"#,
                Request::UpdateDemand {
                    od: "JANET-NL".into(),
                    size: 1e6,
                },
            ),
            (
                r#"{"cmd":"update_demands","updates":[["JANET-NL",1e6],["JANET-DE",2e6]]}"#,
                Request::UpdateDemands {
                    updates: vec![("JANET-NL".into(), 1e6), ("JANET-DE".into(), 2e6)],
                },
            ),
            (
                r#"{"cmd":"fail_link","a":"FR","b":"LU"}"#,
                Request::FailLink {
                    a: "FR".into(),
                    b: "LU".into(),
                },
            ),
            (
                r#"{"cmd":"restore_link","a":"FR","b":"LU"}"#,
                Request::RestoreLink {
                    a: "FR".into(),
                    b: "LU".into(),
                },
            ),
            (
                r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":500}"#,
                Request::AddOd {
                    name: "X".into(),
                    src: "UK".into(),
                    dst: "DE".into(),
                    size: 500.0,
                },
            ),
            (
                r#"{"cmd":"remove_od","name":"X"}"#,
                Request::RemoveOd { name: "X".into() },
            ),
            (
                r#"{"cmd":"set_theta","theta":80000}"#,
                Request::SetTheta { theta: 80_000.0 },
            ),
            (r#"{"cmd":"query_rates"}"#, Request::QueryRates),
            (
                r#"{"cmd":"query_accuracy","runs":5,"seed":9}"#,
                Request::QueryAccuracy { runs: 5, seed: 9 },
            ),
            (r#"{"cmd":"snapshot"}"#, Request::Snapshot),
            (r#"{"cmd":"rollback"}"#, Request::Rollback),
            (r#"{"cmd":"stats"}"#, Request::Stats),
            (r#"{"cmd":"metrics"}"#, Request::Metrics),
            (r#"{"cmd":"health"}"#, Request::Health),
            (r#"{"cmd":"ping"}"#, Request::Ping),
            (r#"{"cmd":"shutdown"}"#, Request::Shutdown),
        ];
        for (line, want) in cases {
            let got = parse_request(line).unwrap();
            assert_eq!(got, want, "line {line}");
            assert!(line.contains(got.name()));
        }
    }

    #[test]
    fn to_json_roundtrips_through_the_parser() {
        for line in [
            r#"{"cmd":"update_demand","od":"JANET-NL","size":10800000}"#,
            r#"{"cmd":"update_demand","od":"JANET-NL","size":12345.678}"#,
            r#"{"cmd":"update_demands","updates":[["JANET-NL",10800000],["NL-DE",12345.678]]}"#,
            r#"{"cmd":"fail_link","a":"FR","b":"LU"}"#,
            r#"{"cmd":"restore_link","a":"FR","b":"LU"}"#,
            r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":500.25}"#,
            r#"{"cmd":"remove_od","name":"X"}"#,
            r#"{"cmd":"set_theta","theta":90000}"#,
            r#"{"cmd":"query_rates"}"#,
            r#"{"cmd":"query_accuracy","runs":5,"seed":9}"#,
            r#"{"cmd":"snapshot"}"#,
            r#"{"cmd":"rollback"}"#,
            r#"{"cmd":"stats"}"#,
            r#"{"cmd":"metrics"}"#,
            r#"{"cmd":"health"}"#,
            r#"{"cmd":"ping"}"#,
            r#"{"cmd":"shutdown"}"#,
        ] {
            let req = parse_request(line).unwrap();
            let encoded = req.to_json().encode();
            assert_eq!(
                parse_request(&encoded).unwrap(),
                req,
                "{line} re-encoded as {encoded}"
            );
            assert!(!encoded.contains('\n'), "WAL payloads are single-line");
        }
    }

    #[test]
    fn state_changing_classification() {
        let state_changing = |line: &str| parse_request(line).unwrap().is_state_changing();
        assert!(state_changing(r#"{"cmd":"set_theta","theta":1}"#));
        assert!(state_changing(r#"{"cmd":"snapshot"}"#));
        assert!(state_changing(r#"{"cmd":"rollback"}"#));
        assert!(!state_changing(r#"{"cmd":"query_rates"}"#));
        assert!(!state_changing(r#"{"cmd":"health"}"#));
        assert!(!state_changing(r#"{"cmd":"ping"}"#));
        assert!(!state_changing(r#"{"cmd":"shutdown"}"#));
    }

    #[test]
    fn accuracy_defaults_apply() {
        let r = parse_request(r#"{"cmd":"query_accuracy"}"#).unwrap();
        assert_eq!(r, Request::QueryAccuracy { runs: 20, seed: 1 });
    }

    #[test]
    fn mutating_classification() {
        assert!(parse_request(r#"{"cmd":"set_theta","theta":1}"#)
            .unwrap()
            .is_mutating());
        assert!(
            parse_request(r#"{"cmd":"update_demands","updates":[["X",5]]}"#)
                .unwrap()
                .is_mutating()
        );
        assert!(!parse_request(r#"{"cmd":"query_rates"}"#)
            .unwrap()
            .is_mutating());
        assert!(!parse_request(r#"{"cmd":"snapshot"}"#)
            .unwrap()
            .is_mutating());
    }

    #[test]
    fn bad_requests_rejected() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"cmd":"warp"}"#,
            r#"{"od":"X","size":1}"#,
            r#"{"cmd":"update_demand","od":"X"}"#,
            r#"{"cmd":"update_demand","od":7,"size":1}"#,
            r#"{"cmd":"fail_link","a":"FR"}"#,
            r#"{"cmd":"query_accuracy","runs":0}"#,
            r#"{"cmd":"query_accuracy","runs":2.5}"#,
            r#"{"cmd":"query_accuracy","seed":-1}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn hostile_sizes_and_theta_rejected_at_boundary() {
        // Regression: these payloads used to parse cleanly and then trip
        // `SreUtility`'s assertions inside the event loop. The boundary
        // must reject them with an error the daemon can answer.
        for bad in [
            r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":0.5}"#,
            r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":1}"#,
            r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":-3}"#,
            r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":1e999}"#,
            r#"{"cmd":"update_demand","od":"X","size":0}"#,
            r#"{"cmd":"update_demand","od":"X","size":0.9999}"#,
            r#"{"cmd":"set_theta","theta":0}"#,
            r#"{"cmd":"set_theta","theta":-5}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(
                err.contains("must be a finite") || err.contains("non-finite"),
                "{bad:?} -> {err}"
            );
        }
        // The legitimate edge just above the threshold still parses.
        assert!(
            parse_request(r#"{"cmd":"add_od","name":"X","src":"UK","dst":"DE","size":1.001}"#)
                .is_ok()
        );
    }

    #[test]
    fn request_id_envelope_parses_and_validates() {
        let inc =
            parse_incoming(r#"{"cmd":"set_theta","theta":80000,"request_id":"c1-7"}"#).unwrap();
        assert_eq!(inc.req, Request::SetTheta { theta: 80_000.0 });
        assert_eq!(inc.request_id.as_deref(), Some("c1-7"));
        assert_eq!(inc.dedup_key(), Some("c1-7"));

        // Reads carry the id (echoed for correlation) but never dedup.
        let read = parse_incoming(r#"{"cmd":"query_rates","request_id":"c1-8"}"#).unwrap();
        assert_eq!(read.request_id.as_deref(), Some("c1-8"));
        assert_eq!(read.dedup_key(), None);

        // Absent id: plain request, no dedup.
        let bare = parse_incoming(r#"{"cmd":"snapshot"}"#).unwrap();
        assert_eq!(bare.request_id, None);
        assert_eq!(bare.dedup_key(), None);

        // parse_request tolerates (and drops) the envelope, so WAL records
        // carrying ids replay through the same boundary.
        let req = parse_request(r#"{"cmd":"rollback","request_id":"x"}"#).unwrap();
        assert_eq!(req, Request::Rollback);

        let long = "x".repeat(MAX_REQUEST_ID_BYTES + 1);
        for bad in [
            r#"{"cmd":"ping","request_id":""}"#.to_string(),
            r#"{"cmd":"ping","request_id":7}"#.to_string(),
            format!(r#"{{"cmd":"ping","request_id":"{long}"}}"#),
        ] {
            assert!(parse_incoming(&bad).is_err(), "accepted {bad:?}");
        }
        // The cap itself is accepted.
        let max = "x".repeat(MAX_REQUEST_ID_BYTES);
        assert!(parse_incoming(&format!(r#"{{"cmd":"ping","request_id":"{max}"}}"#)).is_ok());
    }

    #[test]
    fn mixed_demand_batches_rejected_atomically() {
        // One bad entry anywhere in the batch fails the whole line at the
        // protocol boundary — the state layer never sees a partial batch.
        for bad in [
            r#"{"cmd":"update_demands"}"#,
            r#"{"cmd":"update_demands","updates":[]}"#,
            r#"{"cmd":"update_demands","updates":"X"}"#,
            r#"{"cmd":"update_demands","updates":[["X",5],["Y"]]}"#,
            r#"{"cmd":"update_demands","updates":[["X",5],[7,9]]}"#,
            r#"{"cmd":"update_demands","updates":[["X",5],["Y","big"]]}"#,
            r#"{"cmd":"update_demands","updates":[["X",5],["Y",0.5]]}"#,
            r#"{"cmd":"update_demands","updates":[["X",5],["Y",1e999]]}"#,
            r#"{"cmd":"update_demands","updates":[["X",5],["X",6]]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse_request(r#"{"cmd":"update_demands","updates":[["X",1.001]]}"#).is_ok());
    }
}
