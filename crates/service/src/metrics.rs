//! Per-daemon request and re-solve counters, surfaced by the `stats`
//! command.

use crate::json::{obj, Json};
use crate::state::SolveReport;

/// Monotone counters accumulated over a daemon's lifetime.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Requests received (well-formed or not).
    pub requests: u64,
    /// Requests that produced an error response.
    pub errors: u64,
    /// Event-triggered re-solves that succeeded (including the initial
    /// cold solve).
    pub resolves: u64,
    /// Of those, warm-started ones.
    pub warm_resolves: u64,
    /// Iterations spent by warm-started re-solves.
    pub warm_iterations: u64,
    /// Iterations spent by the warm halves of shadow *pairs* only (warm
    /// re-solves that also ran a shadow cold solve). Kept separately from
    /// [`Metrics::warm_iterations`] so the savings figure compares matched
    /// populations even when `--shadow-cold` covers only a subset.
    pub paired_warm_iterations: u64,
    /// Wall-milliseconds spent in warm-started re-solves.
    pub warm_ms: f64,
    /// Shadow cold solves run alongside warm ones (`--shadow-cold`).
    pub shadow_resolves: u64,
    /// Iterations the shadow cold solves needed for the same events.
    pub shadow_cold_iterations: u64,
    /// Wall-milliseconds spent in shadow cold solves.
    pub shadow_cold_ms: f64,
    /// Re-solves whose served answer was degraded: the budget ran out
    /// before KKT certification, even after escalation.
    pub degraded_solves: u64,
    /// Degraded re-solves that fell back to the previously installed
    /// (last-good) rates instead of installing an uncertified vector.
    pub last_good_fallbacks: u64,
    /// Requests rejected by the overload shedder (bounded queue full).
    pub shed: u64,
    /// Per-command request counts, in first-seen order.
    pub per_command: Vec<(String, u64)>,
}

impl Metrics {
    /// Counts one received request under `cmd` (use `"invalid"` for lines
    /// that failed to parse).
    pub fn record_request(&mut self, cmd: &str) {
        self.requests += 1;
        match self.per_command.iter_mut().find(|(k, _)| k == cmd) {
            Some((_, n)) => *n += 1,
            None => self.per_command.push((cmd.to_string(), 1)),
        }
    }

    /// Counts one error response.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Folds one successful re-solve into the counters.
    pub fn record_resolve(&mut self, report: &SolveReport) {
        self.resolves += 1;
        if report.warm_started {
            self.warm_resolves += 1;
            self.warm_iterations += report.iterations as u64;
            self.warm_ms += report.wall_ms;
        }
        if let Some(cold) = &report.cold {
            self.shadow_resolves += 1;
            self.shadow_cold_iterations += cold.iterations as u64;
            self.shadow_cold_ms += cold.wall_ms;
            if report.warm_started {
                self.paired_warm_iterations += report.iterations as u64;
            }
        }
        if report.degraded {
            self.degraded_solves += 1;
        }
        if report.fallback == Some("last_good") {
            self.last_good_fallbacks += 1;
        }
    }

    /// Counts one request rejected by the overload shedder.
    pub fn record_shed(&mut self) {
        self.shed += 1;
    }

    /// Mean iterations saved per warm re-solve versus its shadow cold
    /// solve; `None` until at least one shadow pair has run.
    ///
    /// Computed over shadow *pairs* only: each pair contributes its own
    /// cold-minus-warm difference, so warm re-solves without a shadow cold
    /// counterpart never skew the figure (they used to, when the warm mean
    /// ranged over all warm re-solves but the cold mean only over pairs).
    pub fn mean_iterations_saved(&self) -> Option<f64> {
        if self.shadow_resolves == 0 {
            return None;
        }
        let saved = self.shadow_cold_iterations as f64 - self.paired_warm_iterations as f64;
        Some(saved / self.shadow_resolves as f64)
    }

    /// The `stats` response payload. Counters are emitted as exact
    /// integers ([`Json::UInt`]) — a long-lived daemon's totals must not
    /// round through f64.
    pub fn to_json(&self) -> Json {
        let per_command = Json::Obj(
            self.per_command
                .iter()
                .map(|(k, n)| (k.clone(), Json::UInt(*n)))
                .collect(),
        );
        obj(vec![
            ("requests", Json::UInt(self.requests)),
            ("errors", Json::UInt(self.errors)),
            ("resolves", Json::UInt(self.resolves)),
            ("warm_resolves", Json::UInt(self.warm_resolves)),
            ("warm_iterations", Json::UInt(self.warm_iterations)),
            (
                "paired_warm_iterations",
                Json::UInt(self.paired_warm_iterations),
            ),
            ("warm_ms", Json::Num(self.warm_ms)),
            ("shadow_resolves", Json::UInt(self.shadow_resolves)),
            (
                "shadow_cold_iterations",
                Json::UInt(self.shadow_cold_iterations),
            ),
            ("shadow_cold_ms", Json::Num(self.shadow_cold_ms)),
            (
                "mean_iterations_saved",
                self.mean_iterations_saved().map_or(Json::Null, Json::Num),
            ),
            ("degraded_solves", Json::UInt(self.degraded_solves)),
            ("last_good_fallbacks", Json::UInt(self.last_good_fallbacks)),
            ("shed", Json::UInt(self.shed)),
            ("per_command", per_command),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ColdComparison;

    fn report(warm: bool, iters: usize, cold_iters: Option<usize>) -> SolveReport {
        SolveReport {
            warm_started: warm,
            iterations: iters,
            constraint_releases: 0,
            kkt: true,
            objective: 1.0,
            objective_delta: None,
            lambda: 0.1,
            wall_ms: 2.0,
            active_monitors: 3,
            cold: cold_iters.map(|n| ColdComparison {
                iterations: n,
                wall_ms: 5.0,
                objective: 1.0,
            }),
            degraded: false,
            fallback: None,
        }
    }

    #[test]
    fn degraded_and_fallback_counters() {
        let mut m = Metrics::default();
        let mut r = report(true, 10, None);
        r.degraded = true;
        m.record_resolve(&r);
        r.fallback = Some("last_good");
        m.record_resolve(&r);
        m.record_shed();
        assert_eq!(m.degraded_solves, 2);
        assert_eq!(m.last_good_fallbacks, 1);
        assert_eq!(m.shed, 1);
        let encoded = m.to_json().encode();
        assert!(encoded.contains("\"degraded_solves\":2"), "{encoded}");
        assert!(encoded.contains("\"last_good_fallbacks\":1"), "{encoded}");
        assert!(encoded.contains("\"shed\":1"), "{encoded}");
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.record_request("ping");
        m.record_request("set_theta");
        m.record_request("set_theta");
        m.record_request("invalid");
        m.record_error();
        m.record_resolve(&report(false, 50, None));
        m.record_resolve(&report(true, 10, Some(40)));
        m.record_resolve(&report(true, 20, Some(60)));
        assert_eq!(m.requests, 4);
        assert_eq!(m.errors, 1);
        assert_eq!(m.resolves, 3);
        assert_eq!(m.warm_resolves, 2);
        assert_eq!(m.warm_iterations, 30);
        assert_eq!(m.shadow_cold_iterations, 100);
        assert_eq!(
            m.per_command,
            vec![
                ("ping".to_string(), 1),
                ("set_theta".to_string(), 2),
                ("invalid".to_string(), 1)
            ]
        );
        // Savings: cold mean 50, warm mean 15 -> 35 saved per re-solve.
        let saved = m.mean_iterations_saved().unwrap();
        assert!((saved - 35.0).abs() < 1e-9, "saved {saved}");
    }

    #[test]
    fn savings_compare_paired_populations_only() {
        // Regression: warm re-solves WITHOUT a shadow pair must not skew
        // the savings. Here two cheap unpaired warm solves (5 iterations
        // each) ride alongside one shadow pair (warm 10 vs cold 40).
        let mut m = Metrics::default();
        m.record_resolve(&report(true, 5, None));
        m.record_resolve(&report(true, 5, None));
        m.record_resolve(&report(true, 10, Some(40)));
        assert_eq!(m.warm_resolves, 3);
        assert_eq!(m.warm_iterations, 20);
        assert_eq!(m.paired_warm_iterations, 10);
        // The pair saved 30; the old mismatched-population formula said
        // 40 − 20/3 ≈ 33.3.
        let saved = m.mean_iterations_saved().unwrap();
        assert!((saved - 30.0).abs() < 1e-12, "saved {saved}");
    }

    #[test]
    fn counters_encode_exactly_past_2_pow_53() {
        let big = (1u64 << 53) + 1;
        let m = Metrics {
            requests: big,
            ..Metrics::default()
        };
        let encoded = m.to_json().encode();
        assert!(
            encoded.contains(&format!("\"requests\":{big}")),
            "u64 counters must not round through f64: {encoded}"
        );
        let reparsed = crate::json::parse(&encoded).unwrap();
        assert_eq!(reparsed.get("requests").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn savings_unavailable_without_shadow() {
        let mut m = Metrics::default();
        m.record_resolve(&report(true, 10, None));
        assert!(m.mean_iterations_saved().is_none());
        assert!(m
            .to_json()
            .encode()
            .contains("\"mean_iterations_saved\":null"));
    }

    #[test]
    fn json_shape() {
        let mut m = Metrics::default();
        m.record_request("ping");
        let j = m.to_json();
        assert_eq!(j.get("requests").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            j.get("per_command").unwrap().get("ping").unwrap().as_f64(),
            Some(1.0)
        );
    }
}
