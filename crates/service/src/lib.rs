//! `nws-service`: a long-running control-plane daemon for network-wide
//! sampling.
//!
//! The daemon owns mutable network state — topology, tracked demand, the
//! sampling budget θ, and the currently installed rate configuration — and
//! processes a JSON-lines protocol (one request object per line, one
//! response object per line) over stdin/stdout or a Unix socket. Every
//! mutating event (demand update, link failure/restore, OD add/remove,
//! θ change) triggers an incremental re-solve warm-started from the
//! previous optimum, re-projected onto the new feasible set; responses
//! carry full solve diagnostics (iterations, KKT status, objective delta,
//! wall time).
//!
//! Module map:
//! - [`json`] — hand-rolled JSON parser/encoder (no external deps).
//! - [`protocol`] — the request grammar ([`protocol::parse_request`]).
//! - [`state`] — mutable network state with transactional events,
//!   warm-started re-solves, and snapshot/rollback.
//! - [`metrics`] — per-daemon counters behind the `stats` command.
//! - [`persist`] — durable state: journals state-changing commands into an
//!   `nws-store` write-ahead log, snapshots periodically and on exit, and
//!   recovers (snapshot + deterministic replay) on boot.
//! - [`daemon`] — the event loop ([`daemon::Daemon::run`]); also runs an
//!   always-on `nws-obs` recorder (per-command latency histograms, warm/cold
//!   re-solve latency, queue depth, solver spans) behind the `metrics`
//!   command and the `--metrics-out` exposition.
//! - [`net`] — the multi-client serving layer ([`daemon::Daemon::serve`]):
//!   TCP/Unix listeners, per-connection reader/writer threads, connection
//!   limits, idle timeouts.
//! - [`read_path`] — the lock-free read path: an atomically-swapped
//!   immutable [`read_path::ReadSnapshot`] from which connection threads
//!   answer read-only commands without touching the solve queue.
//! - [`sli`] — RFC-0019-style SLI rate windows (1s/10s/60s request, shed,
//!   and degraded-solve rates with OK/WARN/CRIT classification) behind the
//!   extended `health` payload.
//!
//! See `DESIGN.md` §8 for the protocol grammar and the state machine,
//! §9 for the observability substrate, and §14 for the serving
//! architecture (read path, coalescing, SLIs).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod daemon;
pub mod json;
pub mod metrics;
pub mod net;
pub mod persist;
pub mod protocol;
pub mod read_path;
pub mod sli;
pub mod state;

pub use daemon::{Daemon, DaemonOptions, DaemonSummary};
pub use net::fault::{NetFaultKind, NetFaultPlan};
pub use net::{NetOptions, Server};
pub use nws_store::{FaultPlan, FsyncPolicy};
pub use persist::{OpenError, PersistConfig, RecoveryReport, StateStore};
pub use protocol::{parse_incoming, parse_request, Incoming, Request};
pub use read_path::{ReadSnapshot, SnapshotCell};
pub use sli::{RateWindows, SliLevel};
pub use state::{ServiceState, SolveReport, SolverChaos};

use nws_core::CoreError;

/// Errors surfaced by the service layer.
#[derive(Debug)]
pub enum ServiceError {
    /// Invalid state transition or malformed specification (unknown node,
    /// duplicate OD, empty snapshot stack, I/O problems, …).
    State(String),
    /// A solver/task error from the core layer (infeasible θ, unroutable
    /// OD, non-convergence).
    Core(CoreError),
}

impl ServiceError {
    /// Wraps an I/O error (transport writes, bench-report output).
    pub fn io(e: std::io::Error) -> Self {
        ServiceError::State(format!("i/o error: {e}"))
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::State(msg) => write!(f, "{msg}"),
            ServiceError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::State(_) => None,
            ServiceError::Core(e) => Some(e),
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}
