//! Deterministic fault injection behind the serving sockets — the
//! network-side sibling of `nws_store::FaultPlan` (DESIGN.md §15).
//!
//! A [`NetFaultPlan`] is a *seeded, counter-keyed* schedule: every socket
//! operation the daemon performs on an accepted connection gets an index
//! (read ops, write ops, and accepts each count on their own lane), and a
//! splitmix64 hash of `(seed, lane, index)` decides whether that operation
//! is perturbed and how. Two runs with the same seed and the same
//! operation sequence are perturbed identically — the property the
//! chaos-net harness builds its byte-for-byte determinism gate on. Faults
//! are bounded per connection by [`NetFaultPlan::max_faults`], so every
//! schedule eventually goes quiet and the system under test must converge
//! back to fault-free behaviour.
//!
//! The injected faults model what a hostile network actually does:
//! - **short reads / partial writes** — the kernel hands back fewer bytes
//!   than asked; exercises every resume loop above the socket;
//! - **per-op delays** — scheduling jitter and cross-continent RTTs;
//! - **connection resets** — the op fails with `ECONNRESET`, tearing the
//!   connection mid-request or mid-response;
//! - **accept-time failures** — the connection dies during the handshake,
//!   before the daemon ever greets it.
//!
//! Each accepted connection derives its own schedule from
//! `(plan seed, accept index)`, so the fault pattern a connection sees
//! does not depend on how many neighbours were accepted around it.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an injected network fault does to the operation it lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The read is truncated: only a prefix of the caller's buffer may be
    /// filled this call (the kernel's prerogative; never an error).
    ShortRead,
    /// The write accepts only a prefix of the buffer (`write` returns a
    /// short count; callers' `write_all` loops must resume).
    ShortWrite,
    /// The operation is delayed by [`NetFaultPlan::delay_ms`] first.
    Delay,
    /// The operation fails with `ECONNRESET`, killing the connection.
    Reset,
}

/// A seeded, counter-keyed schedule of injected socket faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Schedule seed; same seed + same operation sequence = same faults.
    pub seed: u64,
    /// Injection probability per socket operation, in 1/256ths
    /// (48 ≈ 19 %). Clamped to 255.
    pub rate: u8,
    /// Faults one connection's schedule may inject before going
    /// permanently quiet. Bounding this is what lets the chaos harness
    /// assert convergence *after* the fault storm.
    pub max_faults: u64,
    /// How long a [`NetFaultKind::Delay`] stalls the operation.
    pub delay_ms: u64,
}

impl NetFaultPlan {
    /// A plan with the default storm shape: ~19 % of socket operations
    /// perturbed until 6 faults have fired per connection, 1 ms delays.
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            rate: 48,
            max_faults: 6,
            delay_ms: 1,
        }
    }

    /// The schedule for the `conn_index`-th accepted connection. Distinct
    /// connections get independent (but individually deterministic)
    /// fault sequences.
    pub(crate) fn conn_state(&self, conn_index: u64) -> NetFaultState {
        NetFaultState {
            plan: *self,
            lane_salt: splitmix64(self.seed ^ conn_index.wrapping_mul(0x9e6c_63d0_876a_9a7d)),
            read_ops: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The accept-lane schedule for one listener. Accept faults draw from
    /// their own bounded budget so a storm at the door cannot exhaust the
    /// per-connection budgets (and vice versa).
    pub(crate) fn accept_state(&self) -> NetFaultState {
        self.conn_state(u64::MAX)
    }

    /// The injected delay as a [`Duration`].
    pub(crate) fn delay(&self) -> Duration {
        Duration::from_millis(self.delay_ms)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Distinguishes the three operation lanes in the hash input, so the
/// reader's and writer's schedules advance independently of each other's
/// progress (a reader op never shifts which write op gets faulted).
#[derive(Debug, Clone, Copy)]
enum Lane {
    Read,
    Write,
    Accept,
}

impl Lane {
    fn salt(self) -> u64 {
        match self {
            Lane::Read => 0x52_45_41_44,   // "READ"
            Lane::Write => 0x57_52_49_54,  // "WRIT"
            Lane::Accept => 0x41_43_43_50, // "ACCP"
        }
    }
}

/// One connection's (or listener's) position in its fault schedule,
/// shared by the read half and the write half of the stream pair.
#[derive(Debug)]
pub(crate) struct NetFaultState {
    plan: NetFaultPlan,
    lane_salt: u64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    injected: AtomicU64,
}

impl NetFaultState {
    fn next_fault(&self, lane: Lane, counter: &AtomicU64) -> Option<NetFaultKind> {
        let idx = counter.fetch_add(1, Ordering::Relaxed);
        if self.injected.load(Ordering::Relaxed) >= self.plan.max_faults {
            return None;
        }
        let h = splitmix64(self.lane_salt ^ lane.salt() ^ idx.wrapping_mul(0xa076_1d64_78bd_642f));
        if (h & 0xff) as u8 >= self.plan.rate {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(match (h >> 8) % 4 {
            0 => NetFaultKind::ShortRead,
            1 => NetFaultKind::ShortWrite,
            2 => NetFaultKind::Delay,
            _ => NetFaultKind::Reset,
        })
    }

    /// Consumes one read-op slot.
    pub(crate) fn next_read_fault(&self) -> Option<NetFaultKind> {
        self.next_fault(Lane::Read, &self.read_ops)
    }

    /// Consumes one write-op slot.
    pub(crate) fn next_write_fault(&self) -> Option<NetFaultKind> {
        self.next_fault(Lane::Write, &self.write_ops)
    }

    /// Consumes one accept slot; `true` when this accept must fail.
    /// (Every non-quiet fault kind collapses to "the handshake died" at
    /// the accept boundary — there is no byte stream to perturb yet.)
    pub(crate) fn next_accept_fault(&self) -> bool {
        self.next_fault(Lane::Accept, &self.read_ops).is_some()
    }

    /// The configured per-op delay.
    pub(crate) fn delay(&self) -> Duration {
        self.plan.delay()
    }

    /// Faults injected so far on this schedule.
    #[cfg(test)]
    pub(crate) fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// The error an injected [`NetFaultKind::Reset`] surfaces.
pub(crate) fn reset_err(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionReset,
        format!("injected fault: connection reset ({what})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(state: &NetFaultState, lane: Lane, n: usize) -> Vec<Option<NetFaultKind>> {
        let counter = match lane {
            Lane::Write => &state.write_ops,
            _ => &state.read_ops,
        };
        (0..n).map(|_| state.next_fault(lane, counter)).collect()
    }

    /// Same seed, same connection, same lane → the identical fault
    /// sequence; this is the determinism the chaos-net harness's
    /// double-run `cmp` gate rests on.
    #[test]
    fn schedules_are_deterministic_per_seed() {
        let plan = NetFaultPlan::new(42);
        let a = schedule(&plan.conn_state(3), Lane::Read, 256);
        let b = schedule(&plan.conn_state(3), Lane::Read, 256);
        assert_eq!(a, b);
        assert!(
            a.iter().any(Option::is_some),
            "a 19% rate over 256 ops must fire at least once"
        );
    }

    /// Different seeds (or different connections under one seed) see
    /// different schedules — the sweep genuinely explores distinct storms.
    #[test]
    fn schedules_vary_across_seeds_and_connections() {
        let a = schedule(&NetFaultPlan::new(1).conn_state(0), Lane::Read, 256);
        let b = schedule(&NetFaultPlan::new(2).conn_state(0), Lane::Read, 256);
        let c = schedule(&NetFaultPlan::new(1).conn_state(1), Lane::Read, 256);
        assert_ne!(a, b, "seeds must decorrelate");
        assert_ne!(a, c, "connections must decorrelate");
    }

    /// The read and write lanes advance independently: consuming read ops
    /// never shifts which write ops get faulted. (Budget set high enough
    /// that only the lane counters matter.)
    #[test]
    fn lanes_are_independent() {
        let plan = NetFaultPlan {
            seed: 7,
            rate: 128,
            max_faults: u64::MAX,
            delay_ms: 0,
        };
        let only_writes = schedule(&plan.conn_state(0), Lane::Write, 64);
        let state = plan.conn_state(0);
        let _ = schedule(&state, Lane::Read, 17); // consume read ops first
        let writes_after_reads = schedule(&state, Lane::Write, 64);
        assert_eq!(only_writes, writes_after_reads);
    }

    /// Every schedule goes permanently quiet after `max_faults`: the storm
    /// is bounded, so harnesses can assert post-storm convergence.
    #[test]
    fn budget_bounds_the_storm() {
        let plan = NetFaultPlan {
            seed: 9,
            rate: 255, // every op faults until the budget is gone
            max_faults: 4,
            delay_ms: 0,
        };
        let state = plan.conn_state(0);
        let seq = schedule(&state, Lane::Read, 1000);
        assert_eq!(seq.iter().filter(|f| f.is_some()).count(), 4);
        assert_eq!(state.injected(), 4);
        assert!(seq[4..].iter().all(Option::is_none), "quiet after budget");
    }
}
