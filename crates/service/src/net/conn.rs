//! Per-connection reader/writer thread pair.
//!
//! The reader parses JSON lines off the socket. Read-only commands are
//! answered immediately from the published snapshot ([`ReadHandle`]) and
//! handed to the writer as a resolved slot; everything else is enqueued on
//! the daemon's bounded job queue with a per-request reply channel, handed
//! to the writer as a *pending* slot. The writer drains slots strictly in
//! order, blocking on pending replies — per-connection FIFO holds, while a
//! pure-read connection never waits on another connection's solve.

use crate::json::{obj, Json};
use crate::net::{Job, NetOptions, Registry, Stream};
use crate::read_path::ReadHandle;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// How many responses a connection's writer may fall behind its reader
/// before the reader stops pulling new lines off the socket (per-connection
/// backpressure; keeps one fast writer-client from buffering unboundedly).
const SLOT_BACKLOG: usize = 256;

/// One response slot, queued in request order.
enum Slot {
    /// Answered inline (snapshot read, shed, parse error, greeting).
    Ready(Json),
    /// Will be answered by the event loop via this channel.
    Pending(mpsc::Receiver<Json>),
}

/// The connection's registry slot, held (via `Arc`) by BOTH threads of
/// the pair: the last one out — usually the writer, which may still be
/// draining replies after the reader saw EOF — frees the slot. This way
/// the connection cap bounds live sockets/threads (not just live
/// readers), the active gauge never undercounts, and the registered
/// shutdown handle's fd is closed the moment the connection is truly
/// gone.
struct SlotGuard {
    registry: Arc<Registry>,
    read: ReadHandle,
    id: u64,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.registry.release(self.id);
        self.read
            .recorder
            .gauge_set("daemon_connections_active", self.registry.active() as f64);
    }
}

/// Spawns the reader and writer threads for one accepted connection.
pub(crate) fn spawn_connection<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    stream: Stream,
    opts: &NetOptions,
    jobs: mpsc::SyncSender<Job>,
    read: ReadHandle,
    registry: Arc<Registry>,
) {
    let _ = stream.set_read_timeout(opts.idle_timeout());
    let read_half = match stream.try_clone() {
        Ok(h) => h,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let shutdown_handle = match stream.try_clone() {
        Ok(h) => h,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let id = registry.register(shutdown_handle);
    read.recorder
        .counter_add("daemon_connections_opened_total", 1);
    read.recorder
        .gauge_set("daemon_connections_active", registry.active() as f64);
    let guard = Arc::new(SlotGuard {
        registry,
        read: read.clone(),
        id,
    });

    let (slot_tx, slot_rx) = mpsc::sync_channel::<Slot>(SLOT_BACKLOG);
    // Greet before the first request, like the single-stream transports.
    let _ = slot_tx.send(Slot::Ready(read.hello()));
    let writer_guard = Arc::clone(&guard);
    scope.spawn(move || {
        run_writer(stream, slot_rx);
        drop(writer_guard);
    });
    scope.spawn(move || {
        run_reader(read_half, &read, &jobs, &slot_tx);
        drop(slot_tx); // writer drains the backlog, then closes the socket
        drop(guard);
    });
}

/// Reads lines until EOF, idle timeout, socket error, or daemon shutdown.
fn run_reader(
    read_half: Stream,
    read: &ReadHandle,
    jobs: &mpsc::SyncSender<Job>,
    slots: &mpsc::SyncSender<Slot>,
) {
    let mut lines = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) => break, // EOF (client closed, or shutdown closed our read side)
            Ok(_) => {}
            // Idle timeout (SO_RCVTIMEO reports WouldBlock or TimedOut
            // depending on platform) or any hard socket error: drop the
            // connection. A line split across the timeout boundary is
            // abandoned — idle clients are expected to be between lines.
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let item = crate::protocol::parse_request(trimmed);
        if let Ok(req) = &item {
            let t0 = Instant::now();
            if let Some(response) = read.try_answer(req) {
                read.recorder.observe_labeled(
                    "daemon_command_latency_ms",
                    "cmd",
                    req.name(),
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                if slots.send(Slot::Ready(response)).is_err() {
                    break; // writer gone (socket died)
                }
                continue;
            }
        }
        // Queue path: mirrors the single-stream reader's shed accounting —
        // depth is incremented optimistically, rolled back on a full queue.
        let depth = read.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        read.recorder.gauge_set("daemon_queue_depth", depth as f64);
        let (reply_tx, reply_rx) = mpsc::channel::<Json>();
        match jobs.try_send(Job {
            item,
            reply: reply_tx,
        }) {
            Ok(()) => {
                if slots.send(Slot::Pending(reply_rx)).is_err() {
                    break;
                }
            }
            Err(mpsc::TrySendError::Full(_)) => {
                let depth = read.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                read.recorder.gauge_set("daemon_queue_depth", depth as f64);
                if slots.send(Slot::Ready(read.overloaded())).is_err() {
                    break;
                }
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                let depth = read.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                read.recorder.gauge_set("daemon_queue_depth", depth as f64);
                let _ = slots.send(Slot::Ready(obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str("daemon is shutting down".into())),
                ])));
                break;
            }
        }
    }
}

/// Writes responses in request order; blocks on pending event-loop replies.
fn run_writer(mut stream: Stream, slots: mpsc::Receiver<Slot>) {
    for slot in slots {
        let response = match slot {
            Slot::Ready(json) => json,
            Slot::Pending(reply) => reply.recv().unwrap_or_else(|_| {
                obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str("daemon exited before answering".into())),
                ])
            }),
        };
        if writeln!(stream, "{}", response.encode())
            .and_then(|()| stream.flush())
            .is_err()
        {
            break; // peer gone; reader will notice via the closed slot channel
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}
