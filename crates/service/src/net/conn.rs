//! Per-connection reader/writer thread pair.
//!
//! The reader parses JSON lines off the socket. Read-only commands are
//! answered immediately from the published snapshot ([`ReadHandle`]) and
//! handed to the writer as a resolved slot; everything else is enqueued on
//! the daemon's bounded job queue with a per-request reply channel, handed
//! to the writer as a *pending* slot. The writer drains slots strictly in
//! order, blocking on pending replies — per-connection FIFO holds, while a
//! pure-read connection never waits on another connection's solve.
//!
//! Hostile-peer bounds (DESIGN.md §15): request lines are capped at
//! [`MAX_LINE_BYTES`] (a client streaming bytes with no `\n` gets a typed
//! error and the door), and response writes run under `SO_SNDTIMEO` — a
//! peer that stops reading long enough to stall one write is *evicted*
//! (`daemon_slow_client_evictions_total`), freeing the thread pair, the
//! fd, and the `--max-conns` slot.

use crate::json::{obj, Json};
use crate::net::{Job, NetOptions, Registry, Stream};
use crate::read_path::ReadHandle;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::Shutdown;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// How many responses a connection's writer may fall behind its reader
/// before the reader stops pulling new lines off the socket (per-connection
/// backpressure; keeps one fast writer-client from buffering unboundedly).
const SLOT_BACKLOG: usize = 256;

/// Hard cap on one request line. Far above any real command (the largest
/// legal `update_demands` batch encodes well under this), but a client
/// streaming bytes with no `\n` must not grow the line buffer without
/// bound: past the cap it gets a typed `line too long` error and the
/// connection is closed.
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// One response slot, queued in request order.
enum Slot {
    /// Answered inline (snapshot read, shed, parse error, greeting).
    Ready(Json),
    /// Will be answered by the event loop via this channel.
    Pending(mpsc::Receiver<Json>),
}

/// The connection's registry slot, held (via `Arc`) by BOTH threads of
/// the pair: the last one out — usually the writer, which may still be
/// draining replies after the reader saw EOF — frees the slot. This way
/// the connection cap bounds live sockets/threads (not just live
/// readers), the active gauge never undercounts, and the registered
/// shutdown handle's fd is closed the moment the connection is truly
/// gone.
struct SlotGuard {
    registry: Arc<Registry>,
    read: ReadHandle,
    id: u64,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.registry.release(self.id);
        self.read
            .recorder
            .gauge_set("daemon_connections_active", self.registry.active() as f64);
    }
}

/// Spawns the reader and writer threads for one accepted connection.
pub(crate) fn spawn_connection<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    stream: Stream,
    opts: &NetOptions,
    jobs: mpsc::SyncSender<Job>,
    read: ReadHandle,
    registry: Arc<Registry>,
) {
    let _ = stream.set_read_timeout(opts.idle_timeout());
    // Slow-client protection: one response write may stall at most this
    // long before the writer gives up and evicts the connection.
    let _ = stream.set_write_timeout(Some(opts.write_timeout()));
    let read_half = match stream.try_clone() {
        Ok(h) => h,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let shutdown_handle = match stream.try_clone() {
        Ok(h) => h,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let id = registry.register(shutdown_handle);
    read.recorder
        .counter_add("daemon_connections_opened_total", 1);
    read.recorder
        .gauge_set("daemon_connections_active", registry.active() as f64);
    let guard = Arc::new(SlotGuard {
        registry,
        read: read.clone(),
        id,
    });

    let (slot_tx, slot_rx) = mpsc::sync_channel::<Slot>(SLOT_BACKLOG);
    // Greet before the first request, like the single-stream transports.
    let _ = slot_tx.send(Slot::Ready(read.hello()));
    let writer_guard = Arc::clone(&guard);
    let writer_recorder = read.recorder.clone();
    scope.spawn(move || {
        run_writer(stream, slot_rx, &writer_recorder);
        drop(writer_guard);
    });
    scope.spawn(move || {
        run_reader(read_half, &read, &jobs, &slot_tx);
        drop(slot_tx); // writer drains the backlog, then closes the socket
        drop(guard);
    });
}

/// Why the bounded line reader stopped producing a line.
enum LineOutcome {
    /// A complete line (possibly empty) is in the buffer.
    Line,
    /// Clean EOF before any byte of a next line.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`] before its `\n`.
    TooLong,
    /// A socket error (idle timeout or hard fault).
    Err(std::io::Error),
}

/// Reads one `\n`-terminated line into `line` (without the terminator),
/// never buffering more than [`MAX_LINE_BYTES`] of it. Non-UTF-8 bytes
/// are replaced lossily — the JSON parser rejects the garbage with a
/// proper error response instead of the connection dying silently.
fn read_bounded_line(lines: &mut BufReader<Stream>, line: &mut String) -> LineOutcome {
    line.clear();
    let mut raw: Vec<u8> = Vec::new();
    loop {
        let buf = match lines.fill_buf() {
            // Clean EOF — or a torn final fragment (peer died mid-line),
            // which is the same thing: no complete request to answer.
            Ok([]) => return LineOutcome::Eof,
            Ok(buf) => buf,
            Err(e) => return LineOutcome::Err(e),
        };
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => (&buf[..nl], true),
            None => (buf, false),
        };
        if raw.len() + chunk.len() > MAX_LINE_BYTES {
            // Consume what we inspected so the error answer isn't followed
            // by re-reading the same bytes; the connection closes anyway.
            let used = chunk.len() + usize::from(done);
            lines.consume(used);
            return LineOutcome::TooLong;
        }
        raw.extend_from_slice(chunk);
        let used = chunk.len() + usize::from(done);
        lines.consume(used);
        if done {
            line.push_str(&String::from_utf8_lossy(&raw));
            return LineOutcome::Line;
        }
    }
}

/// Appends the echoed `request_id` to a response assembled outside the
/// event loop (the daemon echoes it itself for queued requests).
fn echo_request_id(mut response: Json, request_id: Option<&str>) -> Json {
    if let (Json::Obj(pairs), Some(id)) = (&mut response, request_id) {
        pairs.push(("request_id".to_string(), Json::Str(id.to_string())));
    }
    response
}

/// Reads lines until EOF, idle timeout, socket error, line-cap breach, or
/// daemon shutdown. Idle timeouts and hard socket errors are counted
/// separately (`daemon_conn_idle_timeouts_total` vs
/// `daemon_conn_io_errors_total`) so operators can tell churn from faults.
fn run_reader(
    read_half: Stream,
    read: &ReadHandle,
    jobs: &mpsc::SyncSender<Job>,
    slots: &mpsc::SyncSender<Slot>,
) {
    let mut lines = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut lines, &mut line) {
            LineOutcome::Line => {}
            // EOF: client closed, or shutdown closed our read side.
            LineOutcome::Eof => break,
            LineOutcome::TooLong => {
                read.recorder.counter_add("daemon_line_too_long_total", 1);
                let _ = slots.send(Slot::Ready(obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str("line too long".into())),
                    ("max_line_bytes", Json::UInt(MAX_LINE_BYTES as u64)),
                ])));
                break;
            }
            // Idle timeout (SO_RCVTIMEO reports WouldBlock or TimedOut
            // depending on platform) or any hard socket error: drop the
            // connection. A line split across the timeout boundary is
            // abandoned — idle clients are expected to be between lines.
            LineOutcome::Err(e) => {
                let counter = if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    "daemon_conn_idle_timeouts_total"
                } else {
                    "daemon_conn_io_errors_total"
                };
                read.recorder.counter_add(counter, 1);
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let item = crate::protocol::parse_incoming(trimmed);
        if let Ok(inc) = &item {
            let t0 = Instant::now();
            if let Some(response) = read.try_answer(&inc.req) {
                read.recorder.observe_labeled(
                    "daemon_command_latency_ms",
                    "cmd",
                    inc.req.name(),
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                let response = echo_request_id(response, inc.request_id.as_deref());
                if slots.send(Slot::Ready(response)).is_err() {
                    break; // writer gone (socket died or evicted)
                }
                continue;
            }
        }
        let request_id = item.as_ref().ok().and_then(|inc| inc.request_id.clone());
        // Queue path: mirrors the single-stream reader's shed accounting —
        // depth is incremented optimistically, rolled back on a full queue.
        let depth = read.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        read.recorder.gauge_set("daemon_queue_depth", depth as f64);
        let (reply_tx, reply_rx) = mpsc::channel::<Json>();
        match jobs.try_send(Job {
            item,
            reply: reply_tx,
        }) {
            Ok(()) => {
                if slots.send(Slot::Pending(reply_rx)).is_err() {
                    break;
                }
            }
            Err(mpsc::TrySendError::Full(_)) => {
                let depth = read.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                read.recorder.gauge_set("daemon_queue_depth", depth as f64);
                let response = echo_request_id(read.overloaded(), request_id.as_deref());
                if slots.send(Slot::Ready(response)).is_err() {
                    break;
                }
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                let depth = read.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                read.recorder.gauge_set("daemon_queue_depth", depth as f64);
                let _ = slots.send(Slot::Ready(echo_request_id(
                    obj(vec![
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str("daemon is shutting down".into())),
                    ]),
                    request_id.as_deref(),
                )));
                break;
            }
        }
    }
}

/// Writes responses in request order; blocks on pending event-loop
/// replies. A write that stalls past the stream's `SO_SNDTIMEO` is a
/// slow-client eviction: the connection is torn down (both directions, so
/// the reader also wakes), the slot channel collapses, and the `SlotGuard`
/// frees the `--max-conns` slot — one stalled reader can never pin the
/// pair forever.
fn run_writer(mut stream: Stream, slots: mpsc::Receiver<Slot>, recorder: &nws_obs::Recorder) {
    for slot in slots {
        let response = match slot {
            Slot::Ready(json) => json,
            Slot::Pending(reply) => reply.recv().unwrap_or_else(|_| {
                obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str("daemon exited before answering".into())),
                ])
            }),
        };
        if let Err(e) = writeln!(stream, "{}", response.encode()).and_then(|()| stream.flush()) {
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                recorder.counter_add("daemon_slow_client_evictions_total", 1);
            }
            break; // peer gone or evicted; reader notices via the closed slot channel
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}
