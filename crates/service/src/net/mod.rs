//! Multi-client serving transports: a TCP and/or Unix-socket listener in
//! front of the daemon's event loop ([`crate::Daemon::serve`]).
//!
//! Architecture (DESIGN.md §14): one acceptor thread per listener, two
//! threads per connection (reader + writer, see [`conn`]). Connection
//! readers answer read-only commands directly from the published
//! [`crate::read_path::ReadSnapshot`] and funnel everything else into the
//! bounded job queue the event loop drains; the writer preserves strict
//! per-connection FIFO response order via a slot channel, so a pure-read
//! connection never waits on a solve while a mixed connection only waits
//! behind its *own* mutations.
//!
//! Shutdown: the event loop sets the shared flag and closes every
//! registered connection's read side ([`Registry::close_read_sides`]);
//! acceptors stop, readers see EOF and drop their queue senders, the loop
//! drains what was already queued (every accepted request still gets its
//! answer), writers flush and close. The final durable snapshot is then
//! written exactly once by the loop's shared teardown.
//!
//! Accept loops poll non-blockingly (5 ms naps) instead of parking in
//! `accept`: with `#![forbid(unsafe_code)]` there is no portable way to
//! interrupt a blocked accept, and a bounded poll keeps shutdown prompt
//! without busy-spinning.

use crate::ServiceError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

pub(crate) mod conn;
pub mod fault;

use fault::{NetFaultKind, NetFaultPlan, NetFaultState};

/// How long an acceptor naps between non-blocking accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Default write timeout (`SO_SNDTIMEO`) on accepted streams, applied
/// when [`NetOptions::write_timeout_ms`] is 0: long enough that no
/// healthy client on any sane network ever trips it, short enough that a
/// stalled reader cannot pin a writer thread, its fd, and a `--max-conns`
/// slot forever (DESIGN.md §15).
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// How many consecutive hard accept failures between stderr log lines
/// (~5 s of solid failure at the poll cadence): a permanently broken
/// listener or fd exhaustion must not degrade into an invisible retry
/// loop while the daemon looks healthy.
const ACCEPT_ERROR_LOG_EVERY: u64 = 1000;

/// Serving-transport tunables (`nws serve --tcp/--socket/...`).
#[derive(Debug, Clone, Default)]
pub struct NetOptions {
    /// TCP listen address (`--tcp`), e.g. `127.0.0.1:7070`. Port 0 binds
    /// an ephemeral port; [`Server::tcp_addr`] reports the actual one.
    pub tcp: Option<String>,
    /// Unix-socket path (`--socket`). A stale socket file is replaced.
    pub unix: Option<String>,
    /// Maximum concurrent connections (`--max-conns`); 0 means the
    /// default (1024). Excess connections get one
    /// `too_many_connections` error line and are closed immediately.
    pub max_conns: usize,
    /// Per-connection idle timeout in ms (`--idle-timeout-ms`); a
    /// connection idle past it is closed. 0 disables the timeout.
    pub idle_timeout_ms: u64,
    /// Per-connection write timeout in ms (`--write-timeout-ms`), the
    /// `SO_SNDTIMEO` behind slow-client eviction: a peer that stops
    /// reading long enough for one response write to stall past this is
    /// evicted (`daemon_slow_client_evictions_total`). 0 means the 30 s
    /// default — the protection is always on.
    pub write_timeout_ms: u64,
    /// Deterministic socket-fault schedule (chaos harness only; `None`
    /// in production). Every accepted connection gets its own seeded
    /// sub-schedule; see [`fault::NetFaultPlan`].
    pub chaos: Option<NetFaultPlan>,
}

impl NetOptions {
    /// Resolved connection cap.
    pub(crate) fn max_conns(&self) -> u64 {
        if self.max_conns == 0 {
            1024
        } else {
            self.max_conns as u64
        }
    }

    /// Resolved idle timeout.
    pub(crate) fn idle_timeout(&self) -> Option<Duration> {
        (self.idle_timeout_ms > 0).then(|| Duration::from_millis(self.idle_timeout_ms))
    }

    /// Resolved write timeout (never disabled; see `write_timeout_ms`).
    pub(crate) fn write_timeout(&self) -> Duration {
        if self.write_timeout_ms == 0 {
            DEFAULT_WRITE_TIMEOUT
        } else {
            Duration::from_millis(self.write_timeout_ms)
        }
    }
}

/// The raw transport of one accepted connection.
#[derive(Debug)]
enum Transport {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Transport {
    fn try_clone(&self) -> std::io::Result<Transport> {
        match self {
            Transport::Tcp(s) => s.try_clone().map(Transport::Tcp),
            #[cfg(unix)]
            Transport::Unix(s) => s.try_clone().map(Transport::Unix),
        }
    }
}

/// One accepted connection's stream, over either transport, optionally
/// behind a deterministic fault schedule (chaos harness). Cloned halves
/// of one connection share the schedule position, so the whole
/// connection sees a single coherent fault sequence.
#[derive(Debug)]
pub(crate) struct Stream {
    inner: Transport,
    chaos: Option<Arc<NetFaultState>>,
}

impl Stream {
    fn tcp(s: TcpStream) -> Stream {
        Stream {
            inner: Transport::Tcp(s),
            chaos: None,
        }
    }

    #[cfg(unix)]
    fn unix(s: UnixStream) -> Stream {
        Stream {
            inner: Transport::Unix(s),
            chaos: None,
        }
    }

    /// Puts this connection behind one seeded fault schedule.
    fn with_chaos(mut self, state: Arc<NetFaultState>) -> Stream {
        self.chaos = Some(state);
        self
    }

    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(Stream {
            inner: self.inner.try_clone()?,
            chaos: self.chaos.as_ref().map(Arc::clone),
        })
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match &self.inner {
            Transport::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// `SO_SNDTIMEO`: a blocked response write past `dur` fails with a
    /// timeout instead of pinning the writer thread forever.
    pub(crate) fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match &self.inner {
            Transport::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Transport::Unix(s) => s.set_write_timeout(dur),
        }
    }

    pub(crate) fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        match &self.inner {
            Transport::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Transport::Unix(s) => s.shutdown(how),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut len = buf.len();
        if let Some(chaos) = &self.chaos {
            match chaos.next_read_fault() {
                Some(NetFaultKind::Reset) => return Err(fault::reset_err("read")),
                Some(NetFaultKind::Delay) => std::thread::sleep(chaos.delay()),
                // A short read hands back at most a quarter of the asked
                // bytes (at least 1): the resume loops above must cope
                // with arbitrarily fragmented arrivals.
                Some(NetFaultKind::ShortRead | NetFaultKind::ShortWrite) => {
                    len = (buf.len() / 4).max(1).min(buf.len());
                }
                None => {}
            }
        }
        let buf = &mut buf[..len];
        match &mut self.inner {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut len = buf.len();
        if let Some(chaos) = &self.chaos {
            match chaos.next_write_fault() {
                Some(NetFaultKind::Reset) => return Err(fault::reset_err("write")),
                Some(NetFaultKind::Delay) => std::thread::sleep(chaos.delay()),
                // A partial write lands a real prefix on the wire and
                // reports the short count — `write_all` callers resume,
                // exactly like a full kernel send buffer.
                Some(NetFaultKind::ShortWrite | NetFaultKind::ShortRead) => {
                    len = (buf.len() / 2).max(1).min(buf.len());
                }
                None => {}
            }
        }
        let buf = &buf[..len];
        match &mut self.inner {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.inner {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener; the Unix variant owns its socket file and removes it
/// when the acceptor drops the listener.
#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // One response line per request: Nagle + delayed ACK would
                // add ~40 ms to every round trip, so flush eagerly.
                let _ = s.set_nodelay(true);
                Stream::tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::unix(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Bound-but-not-yet-serving listeners. Bind first, read
/// [`Server::tcp_addr`] (ephemeral ports), then hand the server to
/// [`crate::Daemon::serve`].
#[derive(Debug)]
pub struct Server {
    listeners: Vec<Listener>,
    tcp_addr: Option<SocketAddr>,
    opts: NetOptions,
}

impl Server {
    /// Binds every configured listener.
    ///
    /// # Errors
    /// [`ServiceError::State`] when no transport is configured, an
    /// address cannot be bound, or the platform lacks Unix sockets.
    pub fn bind(opts: &NetOptions) -> Result<Server, ServiceError> {
        let mut listeners = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &opts.tcp {
            let listener = TcpListener::bind(addr)
                .map_err(|e| ServiceError::State(format!("cannot bind tcp '{addr}': {e}")))?;
            tcp_addr = Some(
                listener
                    .local_addr()
                    .map_err(|e| ServiceError::State(format!("tcp local_addr: {e}")))?,
            );
            listeners.push(Listener::Tcp(listener));
        }
        if let Some(path) = &opts.unix {
            listeners.push(Self::bind_unix(path)?);
        }
        if listeners.is_empty() {
            return Err(ServiceError::State(
                "no serving transport: configure --tcp and/or --socket".into(),
            ));
        }
        Ok(Server {
            listeners,
            tcp_addr,
            opts: opts.clone(),
        })
    }

    #[cfg(unix)]
    fn bind_unix(path: &str) -> Result<Listener, ServiceError> {
        // Replace a stale socket file (a previous daemon that died without
        // cleanup); a *live* daemon would still be serving on it, but the
        // state-dir lockfile is the real single-instance guard.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)
            .map_err(|e| ServiceError::State(format!("cannot bind socket '{path}': {e}")))?;
        Ok(Listener::Unix(listener, PathBuf::from(path)))
    }

    #[cfg(not(unix))]
    fn bind_unix(path: &str) -> Result<Listener, ServiceError> {
        Err(ServiceError::State(format!(
            "unix sockets are not supported on this platform ('{path}')"
        )))
    }

    /// The bound TCP address, when a TCP listener is configured — the way
    /// to learn the real port after binding `:0`.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The transport options this server was bound with.
    pub fn options(&self) -> &NetOptions {
        &self.opts
    }
}

/// One queued request from a connection: the parsed item plus the
/// per-request reply channel its writer blocks on (in FIFO order).
#[derive(Debug)]
pub(crate) struct Job {
    pub item: Result<crate::protocol::Incoming, String>,
    pub reply: mpsc::Sender<crate::json::Json>,
}

/// Live-connection registry: counts for the connection cap and gauges,
/// plus a read-side handle per connection so shutdown can wake every
/// blocked reader. Handles are keyed by a connection id so
/// [`Registry::release`] can drop the duplicated stream (and close its
/// fd) as soon as the connection's last thread exits — a long-running
/// daemon must not accumulate one dead fd per connection ever served.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    streams: Mutex<HashMap<u64, Stream>>,
    active: AtomicU64,
    opened: AtomicU64,
    next_id: AtomicU64,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    fn streams(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Stream>> {
        match self.streams.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Registers an accepted connection (a cloned handle for shutdown);
    /// returns the id to pass to [`Registry::release`].
    fn register(&self, handle: Stream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::SeqCst);
        self.opened.fetch_add(1, Ordering::Relaxed);
        self.streams().insert(id, handle);
        id
    }

    /// Frees one connection's slot: removes (and thereby closes) its
    /// registered handle and decrements the live count. Idempotent.
    fn release(&self, id: u64) {
        if self.streams().remove(&id).is_some() {
            self.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    pub(crate) fn active(&self) -> u64 {
        self.active.load(Ordering::SeqCst)
    }

    /// Connections accepted over the server's lifetime.
    pub(crate) fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Shuts down the read side of every live registered connection:
    /// blocked readers observe EOF, stop enqueueing, and drop their queue
    /// senders, which lets the event loop drain to completion. Write
    /// sides stay open so in-flight responses (including the `bye`) still
    /// reach their peers.
    pub(crate) fn close_read_sides(&self) {
        for s in self.streams().values() {
            let _ = s.shutdown(Shutdown::Read);
        }
    }
}

/// Spawns one acceptor thread per bound listener inside `scope`. Each
/// accepted connection gets its own reader/writer thread pair (also in
/// `scope`); `jobs` is dropped with the last acceptor/reader, which is
/// what ends the event loop's drain after shutdown.
pub(crate) fn spawn_acceptors<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    server: Server,
    jobs: mpsc::SyncSender<Job>,
    read: crate::read_path::ReadHandle,
    registry: Arc<Registry>,
    shutting_down: Arc<AtomicBool>,
) {
    let Server {
        listeners, opts, ..
    } = server;
    for listener in listeners {
        let jobs = jobs.clone();
        let read = read.clone();
        let registry = Arc::clone(&registry);
        let shutting_down = Arc::clone(&shutting_down);
        let opts = opts.clone();
        scope.spawn(move || {
            accept_loop(scope, listener, &opts, jobs, read, registry, shutting_down);
        });
    }
}

fn accept_loop<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    listener: Listener,
    opts: &NetOptions,
    jobs: mpsc::SyncSender<Job>,
    read: crate::read_path::ReadHandle,
    registry: Arc<Registry>,
    shutting_down: Arc<AtomicBool>,
) {
    if listener.set_nonblocking().is_err() {
        return;
    }
    let max_conns = opts.max_conns();
    let mut accept_errors: u64 = 0;
    // Chaos wiring (None in production): the accept lane has its own
    // schedule; each accepted connection derives one from its listener-
    // local accept index, so per-connection fault sequences don't depend
    // on neighbours.
    let accept_chaos = opts.chaos.as_ref().map(NetFaultPlan::accept_state);
    let mut accepted: u64 = 0;
    while !shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(mut stream) => {
                accept_errors = 0;
                if shutting_down.load(Ordering::SeqCst) {
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
                if let Some(chaos) = &accept_chaos {
                    if chaos.next_accept_fault() {
                        // Accept-time failure: the handshake dies before
                        // the daemon greets — the peer sees a reset and
                        // must reconnect.
                        read.recorder
                            .counter_add("daemon_chaos_accept_faults_total", 1);
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                }
                if let Some(plan) = &opts.chaos {
                    stream = stream.with_chaos(Arc::new(plan.conn_state(accepted)));
                }
                accepted += 1;
                if registry.active() >= max_conns {
                    // One explicit error line, then the door: silently
                    // dropping would look like a network fault to the
                    // peer and provoke blind retries.
                    read.recorder
                        .counter_add("daemon_connections_rejected_total", 1);
                    let line = crate::json::obj(vec![
                        ("ok", crate::json::Json::Bool(false)),
                        (
                            "error",
                            crate::json::Json::Str("too_many_connections".into()),
                        ),
                    ]);
                    let _ = writeln!(stream, "{}", line.encode());
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                conn::spawn_connection(
                    scope,
                    stream,
                    opts,
                    jobs.clone(),
                    read.clone(),
                    Arc::clone(&registry),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                // Hard accept failure (EMFILE, aborted handshake, broken
                // listener): back off briefly and keep listening, but
                // count it and log sustained failure — a listener that
                // accepts nothing must not look healthy.
                read.recorder.counter_add("daemon_accept_errors_total", 1);
                accept_errors = accept_errors.saturating_add(1);
                if accept_errors % ACCEPT_ERROR_LOG_EVERY == 0 {
                    eprintln!(
                        "nws serve: accept has failed {accept_errors} times \
                         since the last accepted connection (latest: {e}); retrying"
                    );
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pair() -> (Stream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (Stream::tcp(server), client)
    }

    /// A released slot removes (and thereby drops/closes) the registered
    /// stream instead of leaking one duplicated fd per connection served;
    /// release is idempotent so a double-release cannot underflow the cap.
    #[test]
    fn registry_release_removes_and_closes_the_entry() {
        let registry = Registry::new();
        let (a, mut client_a) = tcp_pair();
        let (b, _client_b) = tcp_pair();
        let id_a = registry.register(a);
        let id_b = registry.register(b);
        assert_eq!(registry.active(), 2);
        assert_eq!(registry.opened(), 2);
        assert_eq!(registry.streams().len(), 2);

        registry.release(id_a);
        assert_eq!(registry.active(), 1);
        assert_eq!(
            registry.streams().len(),
            1,
            "released entry must be dropped"
        );
        // The registry held the only server-side handle here, so dropping
        // it closes the socket: the peer observes EOF.
        client_a
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut buf = [0u8; 1];
        assert_eq!(client_a.read(&mut buf).expect("read"), 0, "fd closed");

        registry.release(id_a); // idempotent
        assert_eq!(registry.active(), 1);
        registry.release(id_b);
        assert_eq!(registry.active(), 0);
        assert!(registry.streams().is_empty());
        assert_eq!(registry.opened(), 2, "lifetime count is unaffected");
    }
}
