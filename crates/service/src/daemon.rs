//! The daemon event loop: a bounded request queue fed by a reader thread,
//! one JSON response line per request, graceful shutdown, and an optional
//! per-event latency report (`BENCH_serve.json` format).
//!
//! Transport-agnostic: [`Daemon::run`] takes any `BufRead` + `Write` pair,
//! so the same loop serves stdin/stdout pipes, Unix-socket connections
//! (see `nws serve --socket`), and in-memory test harnesses.

use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::persist::{PersistConfig, RecoveryReport, StateStore};
use crate::protocol::{parse_request, Request};
use crate::state::{ServiceState, SolveReport};
use crate::ServiceError;
use nws_obs::{Recorder, Snapshot};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Daemon tunables.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Bounded request-queue capacity; 0 means the default (64). The reader
    /// thread blocks once the queue is full, which back-pressures the peer.
    pub queue_capacity: usize,
    /// Run a from-scratch cold solve next to every warm re-solve and report
    /// both (iteration savings + latency comparison). Doubles solve cost;
    /// meant for benchmarking and acceptance runs.
    pub shadow_cold: bool,
    /// Write a `BENCH_serve.json`-style per-event latency report here when
    /// the daemon exits.
    pub bench_out: Option<String>,
    /// Write a Prometheus-style text exposition of the observability
    /// snapshot here when the daemon exits (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Append the aggregated span tree to the exposition (`--trace`).
    pub trace: bool,
    /// Persist state to a durable store (`--state-dir`): journal every
    /// state-changing command to a write-ahead log, snapshot periodically
    /// and on exit, and recover on boot.
    pub persist: Option<PersistConfig>,
}

/// One re-solve-triggering event, for the latency report.
#[derive(Debug, Clone)]
struct EventRecord {
    seq: u64,
    cmd: &'static str,
    warm: bool,
    iterations: usize,
    wall_ms: f64,
    cold_iterations: Option<usize>,
    cold_ms: Option<f64>,
    objective: f64,
}

/// What a completed [`Daemon::run`] reports back to the embedder.
#[derive(Debug, Clone)]
pub struct DaemonSummary {
    /// Requests processed (including malformed lines).
    pub requests: u64,
    /// Successful event re-solves (including the startup solve).
    pub resolves: u64,
    /// True when the loop ended on an explicit `shutdown`, false on EOF.
    pub clean_shutdown: bool,
}

/// The long-running control-plane daemon.
#[derive(Debug)]
pub struct Daemon {
    state: ServiceState,
    opts: DaemonOptions,
    metrics: Metrics,
    recorder: Recorder,
    queue_depth: Arc<AtomicU64>,
    events: Vec<EventRecord>,
    seq: u64,
    store: Option<StateStore>,
    recovery: Option<RecoveryReport>,
}

impl Daemon {
    /// Wraps a state (typically [`ServiceState::from_task`]) for serving.
    ///
    /// The daemon always runs with an enabled [`Recorder`]: the same sink
    /// receives solver phase spans and evaluation counters (via the state's
    /// re-solves), per-command latency histograms, and the queue-depth
    /// gauge. Answering `metrics` or writing `--metrics-out` is then a
    /// snapshot, never a restart.
    pub fn new(mut state: ServiceState, opts: DaemonOptions) -> Self {
        let recorder = Recorder::enabled();
        state.set_recorder(recorder.clone());
        Daemon {
            state,
            opts,
            metrics: Metrics::default(),
            recorder,
            queue_depth: Arc::new(AtomicU64::new(0)),
            events: Vec::new(),
            seq: 0,
            store: None,
            recovery: None,
        }
    }

    /// A point-in-time copy of the daemon's observability instruments.
    pub fn observability(&self) -> Snapshot {
        self.recorder.snapshot()
    }

    /// Serves requests from `input` until `shutdown` or EOF, writing one
    /// response line per request (plus a leading `hello` line carrying the
    /// startup solve) to `output`.
    ///
    /// A spawned reader thread feeds a bounded queue; the caller should
    /// close `input` after sending `shutdown` (scripts and sockets do this
    /// naturally), since the reader can only observe the closed queue after
    /// its next line.
    ///
    /// # Errors
    /// I/O errors from `output`, and [`ServiceError`] if the *initial*
    /// solve fails (an unservable scenario). Per-event solve failures are
    /// reported to the peer as error responses, not returned.
    pub fn run<R, W>(&mut self, input: R, output: &mut W) -> Result<DaemonSummary, ServiceError>
    where
        R: BufRead + Send,
        W: Write,
    {
        // Durable store first: recovery may restore an installed
        // configuration (skipping the startup solve) or replay a journal.
        if self.store.is_none() {
            if let Some(cfg) = self.opts.persist.clone() {
                let (store, report) =
                    StateStore::open(&cfg, &mut self.state, &self.recorder)?;
                self.store = Some(store);
                self.recovery = Some(report);
            }
        }
        // Startup solve: every later event warm-starts from this.
        let hello = if self.state.installed().is_none() {
            let report = self.state.resolve(false)?;
            self.metrics.record_resolve(&report);
            self.record_event("hello", &report);
            Some(report)
        } else {
            None
        };
        let mut line = obj(vec![
            ("ok", Json::Bool(true)),
            ("cmd", Json::Str("hello".into())),
            ("ods", Json::Num(self.state.ods().len() as f64)),
            ("theta", Json::Num(self.state.theta())),
        ]);
        if let (Json::Obj(pairs), Some(report)) = (&mut line, &hello) {
            pairs.push(("resolve".to_string(), resolve_json(report)));
        }
        if let (Json::Obj(pairs), Some(report)) = (&mut line, &self.recovery) {
            pairs.push(("recovered".to_string(), report.to_json()));
        }
        writeln!(output, "{}", line.encode()).map_err(ServiceError::io)?;
        output.flush().map_err(ServiceError::io)?;

        let capacity = if self.opts.queue_capacity == 0 {
            64
        } else {
            self.opts.queue_capacity
        };
        let (tx, rx) = mpsc::sync_channel::<Result<Request, String>>(capacity);

        let mut clean_shutdown = false;
        let depth = Arc::clone(&self.queue_depth);
        let reader_recorder = self.recorder.clone();
        std::thread::scope(|scope| -> Result<(), ServiceError> {
            scope.spawn(move || {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    // Increment before the send: the consumer decrements
                    // after recv, and recv happens-after send, so the
                    // counter can never underflow.
                    let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
                    reader_recorder.gauge_set("daemon_queue_depth", d as f64);
                    if tx.send(parse_request(trimmed)).is_err() {
                        break; // queue closed: daemon is shutting down
                    }
                }
            });
            while let Ok(item) = rx.recv() {
                let d = self.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                self.recorder.gauge_set("daemon_queue_depth", d as f64);
                self.seq += 1;
                let cmd: &'static str = match &item {
                    Ok(req) => req.name(),
                    Err(_) => "invalid",
                };
                let t0 = Instant::now();
                let (response, is_shutdown) = self.handle(item);
                self.recorder.observe_labeled(
                    "daemon_command_latency_ms",
                    "cmd",
                    cmd,
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                writeln!(output, "{}", response.encode()).map_err(ServiceError::io)?;
                output.flush().map_err(ServiceError::io)?;
                if is_shutdown {
                    clean_shutdown = true;
                    break;
                }
            }
            Ok(())
        })?;

        // Final snapshot on *every* clean exit path (explicit `shutdown`
        // and input EOF both land here): a clean-stop recovery then loads
        // one snapshot and replays nothing.
        if let Some(store) = &mut self.store {
            store.write_snapshot(&self.state)?;
        }

        if let Some(path) = self.opts.bench_out.clone() {
            std::fs::write(&path, self.bench_report())
                .map_err(|e| ServiceError::State(format!("cannot write '{path}': {e}")))?;
        }
        if let Some(path) = self.opts.metrics_out.clone() {
            let text = self.recorder.snapshot().exposition(self.opts.trace);
            std::fs::write(&path, text)
                .map_err(|e| ServiceError::State(format!("cannot write '{path}': {e}")))?;
        }
        Ok(DaemonSummary {
            requests: self.metrics.requests,
            resolves: self.metrics.resolves,
            clean_shutdown,
        })
    }

    /// Journals a successfully applied state-changing request into the
    /// durable store, when one is configured.
    fn journal(&mut self, req: &Request) -> Result<(), ServiceError> {
        match &mut self.store {
            Some(store) => store.record_applied(req, &self.state),
            None => Ok(()),
        }
    }

    fn record_event(&mut self, cmd: &'static str, report: &SolveReport) {
        self.events.push(EventRecord {
            seq: self.seq,
            cmd,
            warm: report.warm_started,
            iterations: report.iterations,
            wall_ms: report.wall_ms,
            cold_iterations: report.cold.as_ref().map(|c| c.iterations),
            cold_ms: report.cold.as_ref().map(|c| c.wall_ms),
            objective: report.objective,
        });
    }

    /// Processes one queue item; returns the response and whether to stop.
    fn handle(&mut self, item: Result<Request, String>) -> (Json, bool) {
        let req = match item {
            Ok(req) => req,
            Err(msg) => {
                self.metrics.record_request("invalid");
                self.metrics.record_error();
                return (self.error_response(None, &msg), false);
            }
        };
        self.metrics.record_request(req.name());
        if req.is_mutating() {
            let outcome = self.state.apply_event(&req, self.opts.shadow_cold);
            return match outcome {
                Ok(report) => {
                    // Journal before acknowledging: an `ok` response means
                    // the event is durable (to the fsync policy's limit).
                    if let Err(e) = self.journal(&req) {
                        self.metrics.record_error();
                        return (self.error_response(Some(&req), &e.to_string()), false);
                    }
                    self.metrics.record_resolve(&report);
                    self.record_event(req.name(), &report);
                    (
                        self.ok_response(&req, vec![("resolve", resolve_json(&report))]),
                        false,
                    )
                }
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            };
        }
        match &req {
            Request::Ping => (
                self.ok_response(&req, vec![("pong", Json::Bool(true))]),
                false,
            ),
            Request::QueryRates => match self.state.active_rates() {
                Ok(rates) => {
                    let monitors = Json::Arr(
                        rates
                            .iter()
                            .map(|(label, p)| {
                                obj(vec![
                                    ("link", Json::Str(label.clone())),
                                    ("rate", Json::Num(*p)),
                                ])
                            })
                            .collect(),
                    );
                    let objective = self
                        .state
                        .installed()
                        .map_or(Json::Null, |i| Json::Num(i.objective));
                    (
                        self.ok_response(
                            &req,
                            vec![
                                ("theta", Json::Num(self.state.theta())),
                                ("objective", objective),
                                ("monitors", monitors),
                            ],
                        ),
                        false,
                    )
                }
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            },
            Request::QueryAccuracy { runs, seed } => match self.state.accuracy(*runs, *seed) {
                Ok((mean, worst, best)) => (
                    self.ok_response(
                        &req,
                        vec![
                            ("mean", Json::Num(mean)),
                            ("worst", Json::Num(worst)),
                            ("best", Json::Num(best)),
                        ],
                    ),
                    false,
                ),
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            },
            Request::Snapshot => {
                let depth = self.state.snapshot();
                if let Err(e) = self.journal(&req) {
                    self.metrics.record_error();
                    return (self.error_response(Some(&req), &e.to_string()), false);
                }
                (
                    self.ok_response(&req, vec![("depth", Json::Num(depth as f64))]),
                    false,
                )
            }
            Request::Rollback => match self.state.rollback() {
                Ok((depth, objective)) => {
                    if let Err(e) = self.journal(&req) {
                        self.metrics.record_error();
                        return (self.error_response(Some(&req), &e.to_string()), false);
                    }
                    (
                        self.ok_response(
                            &req,
                            vec![
                                ("depth", Json::Num(depth as f64)),
                                ("objective", objective.map_or(Json::Null, Json::Num)),
                            ],
                        ),
                        false,
                    )
                }
                Err(e) => {
                    self.metrics.record_error();
                    (self.error_response(Some(&req), &e.to_string()), false)
                }
            },
            Request::Stats => (
                self.ok_response(&req, vec![("stats", self.metrics.to_json())]),
                false,
            ),
            Request::Metrics => {
                let mut metrics = metrics_json(&self.recorder.snapshot());
                if let Json::Obj(pairs) = &mut metrics {
                    let wal = self
                        .store
                        .as_ref()
                        .map_or(Json::Null, StateStore::wal_stats_json);
                    pairs.push(("wal_stats".to_string(), wal));
                }
                (self.ok_response(&req, vec![("metrics", metrics)]), false)
            }
            Request::Shutdown => (
                self.ok_response(
                    &req,
                    vec![
                        ("bye", Json::Bool(true)),
                        ("resolves", Json::Num(self.metrics.resolves as f64)),
                    ],
                ),
                true,
            ),
            // Mutating variants were dispatched above.
            _ => unreachable!("mutating request in query path"),
        }
    }

    fn ok_response(&self, req: &Request, payload: Vec<(&str, Json)>) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("seq", Json::Num(self.seq as f64)),
            ("cmd", Json::Str(req.name().into())),
        ];
        pairs.extend(payload);
        obj(pairs)
    }

    fn error_response(&self, req: Option<&Request>, msg: &str) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(false)),
            ("seq", Json::Num(self.seq as f64)),
        ];
        if let Some(req) = req {
            pairs.push(("cmd", Json::Str(req.name().into())));
        }
        pairs.push(("error", Json::Str(msg.into())));
        obj(pairs)
    }

    /// The `BENCH_serve.json` document: per-event latency plus warm/cold
    /// totals.
    fn bench_report(&self) -> String {
        let events = Json::Arr(
            self.events
                .iter()
                .map(|e| {
                    obj(vec![
                        ("seq", Json::Num(e.seq as f64)),
                        ("cmd", Json::Str(e.cmd.into())),
                        ("warm", Json::Bool(e.warm)),
                        ("iterations", Json::Num(e.iterations as f64)),
                        ("wall_ms", Json::Num(e.wall_ms)),
                        (
                            "cold_iterations",
                            e.cold_iterations
                                .map_or(Json::Null, |n| Json::Num(n as f64)),
                        ),
                        ("cold_ms", e.cold_ms.map_or(Json::Null, Json::Num)),
                        ("objective", Json::Num(e.objective)),
                    ])
                })
                .collect(),
        );
        let warm_events: Vec<&EventRecord> = self.events.iter().filter(|e| e.warm).collect();
        let warm_ms: f64 = warm_events.iter().map(|e| e.wall_ms).sum();
        let warm_iters: usize = warm_events.iter().map(|e| e.iterations).sum();
        let cold_ms: f64 = warm_events.iter().filter_map(|e| e.cold_ms).sum();
        let cold_iters: usize = warm_events.iter().filter_map(|e| e.cold_iterations).sum();
        let report = obj(vec![
            ("bench", Json::Str("serve".into())),
            (
                "recovery",
                self.recovery
                    .as_ref()
                    .map_or(Json::Null, RecoveryReport::to_json),
            ),
            ("events", events),
            (
                "totals",
                obj(vec![
                    ("warm_resolves", Json::Num(warm_events.len() as f64)),
                    ("warm_iterations", Json::Num(warm_iters as f64)),
                    ("warm_ms", Json::Num(warm_ms)),
                    ("cold_iterations", Json::Num(cold_iters as f64)),
                    ("cold_ms", Json::Num(cold_ms)),
                ]),
            ),
        ]);
        let mut text = report.encode();
        text.push('\n');
        text
    }
}

/// The `metrics` response payload: the observability snapshot as
/// structured JSON. Counters and bucket counts are exact integers
/// ([`Json::UInt`]); histograms keep per-bucket (non-cumulative) counts in
/// [`nws_obs::LATENCY_BUCKETS_MS`] order plus the `+Inf` slot; spans come
/// preorder over the phase tree with their nesting depth.
fn metrics_json(snap: &Snapshot) -> Json {
    fn key(name: &str, label: Option<(&str, &str)>) -> String {
        match label {
            Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
            None => name.to_string(),
        }
    }
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|c| (key(c.name, c.label), Json::UInt(c.value)))
            .collect(),
    );
    let gauges = Json::Obj(
        snap.gauges
            .iter()
            .map(|g| (key(g.name, g.label), Json::Num(g.value)))
            .collect(),
    );
    let histograms = Json::Arr(
        snap.histograms
            .iter()
            .map(|h| {
                obj(vec![
                    ("name", Json::Str(key(h.name, h.label))),
                    ("count", Json::UInt(h.count)),
                    ("sum", Json::Num(h.sum)),
                    (
                        "buckets",
                        Json::Arr(h.bucket_counts.iter().map(|&c| Json::UInt(c)).collect()),
                    ),
                ])
            })
            .collect(),
    );
    let spans = Json::Arr(
        snap.spans
            .iter()
            .map(|s| {
                obj(vec![
                    ("name", Json::Str(s.name.into())),
                    ("depth", Json::UInt(s.depth as u64)),
                    ("count", Json::UInt(s.count)),
                    ("total_ms", Json::Num(s.total_ms)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("spans", spans),
    ])
}

/// The `"resolve"` payload of a mutating command's response.
fn resolve_json(report: &SolveReport) -> Json {
    let mut pairs = vec![
        ("warm", Json::Bool(report.warm_started)),
        ("iterations", Json::Num(report.iterations as f64)),
        (
            "constraint_releases",
            Json::Num(report.constraint_releases as f64),
        ),
        ("kkt", Json::Bool(report.kkt)),
        ("objective", Json::Num(report.objective)),
        (
            "objective_delta",
            report.objective_delta.map_or(Json::Null, Json::Num),
        ),
        ("lambda", Json::Num(report.lambda)),
        ("wall_ms", Json::Num(report.wall_ms)),
        ("active_monitors", Json::Num(report.active_monitors as f64)),
    ];
    if let Some(cold) = &report.cold {
        pairs.push((
            "cold",
            obj(vec![
                ("iterations", Json::Num(cold.iterations as f64)),
                ("wall_ms", Json::Num(cold.wall_ms)),
                ("objective", Json::Num(cold.objective)),
            ]),
        ));
    }
    obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use nws_core::scenarios::janet_task;
    use nws_core::PlacementConfig;
    use std::io::Cursor;

    fn run_script(script: &str, opts: DaemonOptions) -> (Vec<Json>, DaemonSummary) {
        let state = ServiceState::from_task(&janet_task(), PlacementConfig::default());
        let mut daemon = Daemon::new(state, opts);
        let mut out = Vec::new();
        let summary = daemon
            .run(Cursor::new(script.to_string()), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines = text
            .lines()
            .map(|l| parse(l).expect("daemon emits valid JSON"))
            .collect();
        (lines, summary)
    }

    #[test]
    fn hello_then_ping_then_shutdown() {
        let script = "{\"cmd\":\"ping\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(script, DaemonOptions::default());
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("cmd").unwrap().as_str(), Some("hello"));
        assert_eq!(
            lines[0]
                .get("resolve")
                .unwrap()
                .get("kkt")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(lines[1].get("pong").unwrap().as_bool(), Some(true));
        assert_eq!(lines[2].get("bye").unwrap().as_bool(), Some(true));
        assert!(summary.clean_shutdown);
        assert_eq!(summary.requests, 2);
    }

    #[test]
    fn eof_without_shutdown_is_unclean_but_graceful() {
        let (lines, summary) = run_script("{\"cmd\":\"ping\"}\n", DaemonOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(!summary.clean_shutdown);
    }

    #[test]
    fn malformed_lines_get_error_responses() {
        let script = "this is not json\n{\"cmd\":\"warp\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(script, DaemonOptions::default());
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(lines[2].get("ok").unwrap().as_bool(), Some(false));
        assert!(lines[2]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown command"));
        assert!(summary.clean_shutdown);
    }

    #[test]
    fn mutating_event_reports_resolve_payload() {
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(
            script,
            DaemonOptions {
                shadow_cold: true,
                ..DaemonOptions::default()
            },
        );
        let resolve = lines[1].get("resolve").unwrap();
        assert_eq!(resolve.get("warm").unwrap().as_bool(), Some(true));
        assert_eq!(resolve.get("kkt").unwrap().as_bool(), Some(true));
        assert!(resolve.get("cold").unwrap().get("iterations").is_some());
        assert!(resolve.get("objective_delta").unwrap().as_f64().is_some());
    }

    #[test]
    fn bench_report_written() {
        let dir = std::env::temp_dir().join("nws_service_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_serve.json");
        let script = "{\"cmd\":\"set_theta\",\"theta\":90000}\n\
                      {\"cmd\":\"fail_link\",\"a\":\"FR\",\"b\":\"LU\"}\n\
                      {\"cmd\":\"shutdown\"}\n";
        let (_, summary) = run_script(
            script,
            DaemonOptions {
                shadow_cold: true,
                bench_out: Some(path.to_string_lossy().into_owned()),
                ..DaemonOptions::default()
            },
        );
        assert_eq!(summary.resolves, 3); // hello + 2 events
        let report = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.get("bench").unwrap().as_str(), Some("serve"));
        let events = report.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
        let totals = report.get("totals").unwrap();
        assert_eq!(totals.get("warm_resolves").unwrap().as_f64(), Some(2.0));
        // Shadow cold data present for warm events.
        assert!(totals.get("cold_iterations").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn hostile_add_od_answers_error_and_loop_survives() {
        // Regression: a size ≤ 1 used to sail through the protocol layer
        // and panic the event loop inside `SreUtility::new`. It must now
        // come back as an error response, with the daemon still serving.
        let script =
            "{\"cmd\":\"add_od\",\"name\":\"EVIL\",\"src\":\"UK\",\"dst\":\"DE\",\"size\":0.5}\n\
                      {\"cmd\":\"update_demand\",\"od\":\"JANET-NL\",\"size\":1}\n\
                      {\"cmd\":\"set_theta\",\"theta\":-5}\n\
                      {\"cmd\":\"ping\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, summary) = run_script(script, DaemonOptions::default());
        assert_eq!(lines.len(), 6);
        for hostile in &lines[1..4] {
            assert_eq!(hostile.get("ok").unwrap().as_bool(), Some(false));
            assert!(hostile
                .get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("must be a finite"));
        }
        assert_eq!(lines[4].get("pong").unwrap().as_bool(), Some(true));
        assert!(summary.clean_shutdown);
        assert_eq!(summary.resolves, 1); // only the startup solve ran
    }

    #[test]
    fn metrics_command_reports_histograms_and_spans() {
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n\
                      {\"cmd\":\"ping\"}\n{\"cmd\":\"metrics\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(script, DaemonOptions::default());
        let metrics = lines[3].get("metrics").unwrap();
        // Solver counters from the startup + set_theta solves.
        assert!(
            metrics
                .get("counters")
                .unwrap()
                .get("solver_iterations_total")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        // Per-command latency histograms, one per observed command label.
        let histograms = metrics.get("histograms").unwrap().as_arr().unwrap();
        let names: Vec<&str> = histograms
            .iter()
            .map(|h| h.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"daemon_resolve_latency_ms{mode=\"cold\"}"));
        assert!(names.contains(&"daemon_resolve_latency_ms{mode=\"warm\"}"));
        assert!(names.contains(&"daemon_command_latency_ms{cmd=\"ping\"}"));
        assert!(names.contains(&"daemon_command_latency_ms{cmd=\"set_theta\"}"));
        for h in histograms {
            let buckets = h.get("buckets").unwrap().as_arr().unwrap();
            assert_eq!(buckets.len(), nws_obs::LATENCY_BUCKETS_MS.len() + 1);
        }
        // Solver phase spans: "solve" roots with nested phases.
        let spans = metrics.get("spans").unwrap().as_arr().unwrap();
        let solve = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("solve"))
            .expect("solve span present");
        assert_eq!(solve.get("depth").unwrap().as_u64(), Some(0));
        assert_eq!(solve.get("count").unwrap().as_u64(), Some(2));
        assert!(spans
            .iter()
            .any(|s| s.get("name").unwrap().as_str() == Some("line_search")
                && s.get("depth").unwrap().as_u64() == Some(1)));
    }

    #[test]
    fn metrics_out_writes_exposition() {
        let dir = std::env::temp_dir().join("nws_service_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics_serve.prom");
        let script = "{\"cmd\":\"set_theta\",\"theta\":80000}\n{\"cmd\":\"shutdown\"}\n";
        let (_, _) = run_script(
            script,
            DaemonOptions {
                metrics_out: Some(path.to_string_lossy().into_owned()),
                trace: true,
                ..DaemonOptions::default()
            },
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("# TYPE solver_iterations_total counter"));
        assert!(text.contains("# TYPE daemon_command_latency_ms histogram"));
        assert!(text.contains("daemon_command_latency_ms_bucket{cmd=\"set_theta\",le=\"+Inf\"}"));
        assert!(text.contains("daemon_resolve_latency_ms_bucket{mode=\"warm\",le=\"+Inf\"}"));
        assert!(text.contains("# span solve"), "trace appends span tree");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "bad sample line: {line}");
        }
    }

    #[test]
    fn stats_reflect_traffic() {
        let script = "{\"cmd\":\"ping\"}\n{\"cmd\":\"set_theta\",\"theta\":70000}\n\
                      {\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n";
        let (lines, _) = run_script(script, DaemonOptions::default());
        let stats = lines[3].get("stats").unwrap();
        // ping + set_theta + stats itself, counted before the response.
        assert_eq!(stats.get("requests").unwrap().as_f64(), Some(3.0));
        assert_eq!(stats.get("resolves").unwrap().as_f64(), Some(2.0)); // hello + set_theta
        assert_eq!(stats.get("warm_resolves").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            stats
                .get("per_command")
                .unwrap()
                .get("set_theta")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
